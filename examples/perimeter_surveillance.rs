//! Perimeter surveillance: localized intrusion detection while the
//! network decays under an ongoing compromise campaign.
//!
//! The paper's military motivation: "sense any movement within a
//! cordoned-off area". 100 motion sensors watch a 100×100 field. An
//! adversary compromises 5% of them, then 5% more every 50 intrusions
//! (the paper's Experiment-3 schedule). Compromised sensors report
//! garbage locations and drop packets.
//!
//! The demo tracks windowed detection accuracy for TIBFIT vs the
//! baseline as the compromise spreads, printing the Figure-8-style decay
//! curve as the campaign progresses.
//!
//! Run with:
//! ```text
//! cargo run --release --example perimeter_surveillance
//! ```

use tibfit_experiments::exp1::EngineKind;
use tibfit_experiments::exp3::{run_exp3, Exp3Config};

fn main() {
    println!("Perimeter surveillance under progressive compromise");
    println!("(100 sensors; +5% compromised every 50 intrusions, to 75%)\n");

    let seed = 7;
    let tibfit = run_exp3(&Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit), seed);
    let baseline = run_exp3(&Exp3Config::paper(1.6, 4.25, EngineKind::Baseline), seed);

    println!("intrusions  compromised  TIBFIT    baseline");
    for (t, b) in tibfit.iter().zip(&baseline) {
        let bar = |acc: f64| "#".repeat((acc * 20.0).round() as usize);
        println!(
            "{:>9}   {:>10.0}%  {:>5.1}%  {:<20}  {:>5.1}%  {}",
            t.start_event,
            t.compromised_fraction * 100.0,
            t.accuracy * 100.0,
            bar(t.accuracy),
            b.accuracy * 100.0,
            bar(b.accuracy),
        );
    }

    // Aggregate the endgame: everything at >= 50% compromised.
    let late = |windows: &[tibfit_experiments::exp3::DecayWindow]| -> f64 {
        let late: Vec<f64> = windows
            .iter()
            .filter(|w| w.compromised_fraction >= 0.5)
            .map(|w| w.accuracy)
            .collect();
        late.iter().sum::<f64>() / late.len() as f64
    };
    let t_late = late(&tibfit);
    let b_late = late(&baseline);
    println!("\nMean accuracy once the majority of the perimeter is compromised:");
    println!("  TIBFIT   : {:.1}%", t_late * 100.0);
    println!("  Baseline : {:.1}%", b_late * 100.0);
    println!(
        "\nSensors compromised early have already lost their trust by the\n\
         time the faulty set becomes a majority — the perimeter holds."
    );
    assert!(t_late > b_late);
}
