//! Cluster-head rotation, shadow monitoring, and multi-hop uplink — the
//! full §2/§3.4 management plane.
//!
//! A 25-node cluster elects rotating heads LEACH-style (only nodes above
//! the trust threshold may lead), two shadow cluster heads mirror every
//! head, and the head's conclusions ride a greedy multi-hop route to a
//! distant base station. Midway, the adversary starts compromising
//! whichever node currently leads; the shadows detect each corrupted
//! conclusion, the base station overrules it, demotes the head, and
//! re-elects — detection never stops.
//!
//! Run with:
//! ```text
//! cargo run --example cluster_rotation
//! ```

use tibfit_core::lifecycle::{ClusterLifecycle, LifecycleConfig};
use tibfit_core::location::LocatedReport;
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::multihop::{MultihopConfig, MultihopNetwork};
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

const ROUNDS: usize = 60;
const COMPROMISE_FROM: usize = 20;

fn main() {
    println!("Cluster lifecycle: rotation + shadow CHs + multi-hop uplink\n");

    let topo = Topology::uniform_grid(25, 50.0, 50.0);
    let mut cluster = ClusterLifecycle::new(LifecycleConfig::paper(), topo.clone());
    let mut rng = SimRng::seed_from(5);
    let mut event_rng = SimRng::seed_from(6);

    // The base station sits far outside the cluster; conclusions travel
    // over a lossy multi-hop network with per-hop retransmission.
    let uplink = MultihopNetwork::new(MultihopConfig::default_paper_scale(), &topo);
    let base_station = Point::new(49.0, 49.0);
    let channel = BernoulliLoss::new(0.1);

    let mut detected = 0usize;
    let mut overruled = 0usize;
    let mut uplink_tx = 0u32;
    println!("round  head  shadows      compromised  outcome");
    for round in 0..ROUNDS {
        let event = Point::new(
            event_rng.uniform_range(5.0, 45.0),
            event_rng.uniform_range(5.0, 45.0),
        );
        let reports: Vec<LocatedReport> = cluster
            .topology()
            .event_neighbors(event, 20.0)
            .into_iter()
            .map(|n| LocatedReport::new(n, event))
            .collect();

        let head = cluster.current_head(&mut rng);
        let compromised = round >= COMPROMISE_FROM;
        let result = cluster.process_event_round(&reports, compromised, &mut rng);

        // The accepted conclusion rides the multi-hop uplink from the
        // head to the base station.
        let delivery = uplink.deliver(result.head, base_station, &channel, &mut rng);
        uplink_tx += delivery.transmissions;

        let ok = result.ruling.final_conclusion.declares_event()
            && result
                .ruling
                .final_conclusion
                .location()
                .is_some_and(|l| l.distance_to(event) <= 5.0);
        detected += usize::from(ok);
        overruled += usize::from(result.ruling.ch_overruled);

        if round % 6 == 0 {
            println!(
                "{round:>5}  n{:<3} {:<12} {:<11}  {}",
                head.index(),
                format!("{:?}", cluster.current_shadows().iter().map(|s| s.index()).collect::<Vec<_>>()),
                if compromised { "HEAD" } else { "no" },
                if result.ruling.ch_overruled {
                    "head overruled by shadows, re-elected"
                } else if ok {
                    "event confirmed"
                } else {
                    "event missed"
                },
            );
        }
    }

    println!("\nSummary over {ROUNDS} rounds (head compromised from round {COMPROMISE_FROM}):");
    println!("  events detected within r_error : {detected}/{ROUNDS}");
    println!("  compromised conclusions caught : {overruled}/{}", ROUNDS - COMPROMISE_FROM);
    println!("  hand-off messages to base      : {}", cluster.handoffs().len());
    println!("  uplink transmissions (lossy)   : {uplink_tx}");
    assert_eq!(overruled, ROUNDS - COMPROMISE_FROM, "every corruption caught");
    assert!(detected as f64 / ROUNDS as f64 > 0.9);
    println!("\nEvery corrupted conclusion was caught by the shadow cluster heads;");
    println!("the base station's majority vote kept the event stream intact.");
}
