//! Multi-cluster field monitoring: the Table-2 "100 sensing nodes, 5 CH"
//! deployment, for real.
//!
//! The paper's simulation folds the five cluster heads into one logical
//! cluster. This example runs the genuine arrangement: nodes affiliate
//! with the nearest of five heads, each head keeps its own trust table
//! and decides events from its members' reports alone, and the base
//! station merges the per-cluster conclusions. Events near cluster
//! boundaries — where every head only sees a fragment of the
//! neighborhood — are the stress case.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_cluster_field
//! ```

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_experiments::multicluster::{five_ch_sites, MultiClusterConfig, MultiClusterSim};
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;

const N_NODES: usize = 100;
const N_FAULTY: usize = 35;
const EVENTS: usize = 400;

fn main() {
    println!("Five-cluster deployment, {N_FAULTY}% level-0 faulty, {EVENTS} events\n");

    let topo = Topology::uniform_grid(N_NODES, 100.0, 100.0);
    let mut seed_rng = SimRng::seed_from(414);
    let faulty = seed_rng.choose_indices(N_NODES, N_FAULTY);
    let behaviors: Vec<Box<dyn NodeBehavior + Send>> = (0..N_NODES)
        .map(|i| -> Box<dyn NodeBehavior + Send> {
            if faulty.contains(&i) {
                Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
            } else {
                Box::new(CorrectNode::new(0.0, 1.6))
            }
        })
        .collect();
    let mut sim = MultiClusterSim::new(
        MultiClusterConfig::paper(),
        topo,
        five_ch_sites(100.0),
        behaviors,
        |_| Box::new(BernoulliLoss::new(0.005)),
        414,
    );

    // Cluster census.
    let mut census = vec![0usize; sim.cluster_count()];
    for i in 0..N_NODES {
        census[sim.cluster_of(NodeId(i))] += 1;
    }
    println!("cluster census: {census:?} (center + four quadrants)\n");

    let mut event_rng = SimRng::seed_from(515);
    let mut interior_hits = 0usize;
    let mut interior_total = 0usize;
    let mut boundary_hits = 0usize;
    let mut boundary_total = 0usize;
    for _ in 0..EVENTS {
        let event = Point::new(
            event_rng.uniform_range(0.0, 100.0),
            event_rng.uniform_range(0.0, 100.0),
        );
        // "Boundary" = within 6 units of a quadrant seam (x=50 or y=50).
        let boundary = (event.x - 50.0).abs() < 6.0 || (event.y - 50.0).abs() < 6.0;
        let detected = sim.run_event(event).detected_within(5.0);
        if boundary {
            boundary_total += 1;
            boundary_hits += usize::from(detected);
        } else {
            interior_total += 1;
            interior_hits += usize::from(detected);
        }
    }

    println!("detection accuracy:");
    println!(
        "  interior events : {interior_hits}/{interior_total} ({:.1}%)",
        100.0 * interior_hits as f64 / interior_total as f64
    );
    println!(
        "  boundary events : {boundary_hits}/{boundary_total} ({:.1}%)",
        100.0 * boundary_hits as f64 / boundary_total as f64
    );

    // Per-cluster diagnosis: each head's local trust table separates its
    // own liars from its honest members.
    let mut per_cluster = vec![(0.0f64, 0usize, 0.0f64, 0usize); sim.cluster_count()];
    for i in 0..N_NODES {
        let ci = sim.cluster_of(NodeId(i));
        let t = sim.trust_of(NodeId(i));
        if faulty.contains(&i) {
            per_cluster[ci].0 += t;
            per_cluster[ci].1 += 1;
        } else {
            per_cluster[ci].2 += t;
            per_cluster[ci].3 += 1;
        }
    }
    println!("\nper-cluster mean trust (faulty vs honest members):");
    for (ci, (fs, fc, hs, hc)) in per_cluster.iter().enumerate() {
        println!(
            "  cluster {ci}: faulty {:.3} ({fc} nodes)   honest {:.3} ({hc} nodes)",
            if *fc > 0 { fs / *fc as f64 } else { f64::NAN },
            if *hc > 0 { hs / *hc as f64 } else { f64::NAN },
        );
    }
    let total = interior_hits + boundary_hits;
    println!(
        "\noverall: {total}/{EVENTS} events localized within r_error — partitioned \
         trust state still masks a 35% compromise."
    );
    assert!(total as f64 / EVENTS as f64 > 0.8);
}
