//! Mobile-target tracking: localizing a moving emitter with faulty
//! sensors, including concurrent contacts.
//!
//! The paper's §3.2 motivation: "a network attempting to track a mobile
//! sensor node that is transmitting a signal as it moves throughout the
//! network". A target walks a diagonal patrol route across the field;
//! every time it transmits, nearby sensors report a noisy `(r, θ)` fix
//! and the cluster head fuses them with the §3.2 clustering + trust
//! vote. Halfway through, a *second* target enters (concurrent events,
//! §3.3).
//!
//! A third of the sensors are colluding (level 2): on each contact they
//! all report the same fabricated position or all stay silent.
//!
//! Run with:
//! ```text
//! cargo run --release --example target_tracking
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CollusionCoordinator, CorrectNode, Level2Node};
use tibfit_core::engine::TibfitEngine;
use tibfit_core::trust::TrustParams;
use tibfit_experiments::network::{ClusterSim, ClusterSimConfig};
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

const N_NODES: usize = 100;
const N_COLLUDERS: usize = 33;
const CONTACTS: usize = 40;

fn main() {
    println!("Mobile-target tracking with {N_COLLUDERS} colluding sensors\n");

    let params = TrustParams::experiment2();
    let mut rng = SimRng::seed_from(99);
    let colluders = rng.choose_indices(N_NODES, N_COLLUDERS);
    let coordinator = Rc::new(RefCell::new(CollusionCoordinator::with_paper_thresholds(
        0xBAD, 6.0, params,
    )));
    let mut first = true;
    let behaviors: Vec<Box<dyn NodeBehavior>> = (0..N_NODES)
        .map(|i| -> Box<dyn NodeBehavior> {
            if colluders.contains(&i) {
                let representative = first;
                first = false;
                Box::new(Level2Node::new(Rc::clone(&coordinator), 1.6, representative))
            } else {
                Box::new(CorrectNode::new(0.0, 1.6))
            }
        })
        .collect();

    let topo = Topology::uniform_grid(N_NODES, 100.0, 100.0);
    let mut sim = ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            ch_position: Point::new(50.0, 50.0),
        },
        topo,
        behaviors,
        Box::new(BernoulliLoss::new(0.005)),
        Box::new(TibfitEngine::new(params, N_NODES)),
        rng,
    );

    println!("contact  target(s)                   estimate(s)                 error");
    let mut tracked = 0usize;
    let mut total = 0usize;
    for step in 0..CONTACTS {
        let t = step as f64 / (CONTACTS - 1) as f64;
        // Target A patrols the main diagonal; target B (second half of
        // the run) sweeps the anti-diagonal.
        let target_a = Point::new(10.0 + 80.0 * t, 10.0 + 80.0 * t);
        let mut targets = vec![target_a];
        if step >= CONTACTS / 2 {
            targets.push(Point::new(90.0 - 80.0 * t, 10.0 + 80.0 * t));
        }

        let result = sim.run_located_round(&targets);
        total += targets.len();
        tracked += result.detected_within(5.0);

        if step % 5 == 0 {
            let fmt_pts = |pts: &[Point]| -> String {
                pts.iter()
                    .map(|p| format!("({:5.1},{:5.1})", p.x, p.y))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let err = targets
                .iter()
                .map(|t| {
                    result
                        .declared
                        .iter()
                        .map(|d| d.distance_to(*t))
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(0.0f64, f64::max);
            println!(
                "{step:>7}  {:<27} {:<27} {}",
                fmt_pts(&targets),
                fmt_pts(&result.declared),
                if err.is_finite() {
                    format!("{err:.2}")
                } else {
                    "lost".to_string()
                },
            );
        }
    }

    println!(
        "\nTrack quality: {tracked}/{total} contacts localized within r_error = 5 units \
         ({:.0}%).",
        100.0 * tracked as f64 / total as f64
    );
    println!(
        "The colluders' shared fake fixes form their own report cluster, which\n\
         loses the trust-weighted vote once their trust indices decay."
    );
    assert!(tracked as f64 / total as f64 > 0.6);
}
