//! Quickstart: the TIBFIT protocol in ~60 lines.
//!
//! Builds the paper's Figure-1 scenario — a cluster of sensing nodes
//! around a cluster head — lets a third of them turn malicious, and shows
//! trust-weighted voting masking the faults while plain majority voting
//! fails.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use tibfit_core::engine::{Aggregator, BaselineEngine, TibfitEngine};
use tibfit_core::trust::TrustParams;
use tibfit_net::topology::{NodeId, Topology};

fn main() {
    // A ten-node cluster, every node an event neighbor of every event
    // (the paper's Experiment-1 layout).
    let topo = Topology::single_cluster(10, 5.0);
    println!("Cluster topology ({} nodes, CH at center):", topo.len());
    print_topology(&topo);

    let neighbors: Vec<NodeId> = topo.node_ids().collect();
    let mut tibfit = TibfitEngine::new(TrustParams::new(0.25, 0.0), topo.len());
    let mut baseline = BaselineEngine::new();

    // The adversary compromises the cluster two nodes at a time (the
    // paper's gradual-decay scenario): each captured pair has lost its
    // trust by the time the next pair falls, so even a 60% faulty
    // *majority* cannot outvote the four honest survivors.
    println!("\nround  faulty  TIBFIT  baseline  trust(n0)  trust(n9)");
    let mut tibfit_hits = 0;
    let mut baseline_hits = 0;
    for round in 0..60u32 {
        let n_faulty: usize = match round {
            0..=19 => 0,
            20..=29 => 2,
            30..=39 => 4,
            _ => 6, // a 60% faulty majority
        };
        // A real event: faulty nodes stay silent, honest nodes report.
        let reporters: Vec<NodeId> = neighbors
            .iter()
            .copied()
            .filter(|n| n.index() >= n_faulty)
            .collect();
        let t = tibfit.binary_round(&neighbors, &reporters);
        let b = baseline.binary_round(&neighbors, &reporters);
        tibfit_hits += u32::from(t.outcome.event_declared);
        baseline_hits += u32::from(b.outcome.event_declared);
        if round % 10 == 9 {
            println!(
                "{round:>5}  {n_faulty:>6}  {:>6}  {:>8}  {:>9.3}  {:>9.3}",
                if t.outcome.event_declared { "hit" } else { "MISS" },
                if b.outcome.event_declared { "hit" } else { "MISS" },
                tibfit.trust_of(NodeId(0)).unwrap(),
                tibfit.trust_of(NodeId(9)).unwrap(),
            );
        }
    }

    println!("\nDetection over 60 events (last 20 with a 60% faulty majority):");
    println!("  TIBFIT   : {tibfit_hits}/60");
    println!("  Baseline : {baseline_hits}/60");
    assert!(tibfit_hits > baseline_hits);
    println!("\nTrust-weighted voting keeps detecting once the liars'");
    println!("trust indices have decayed — the paper's core result.");
}

/// Prints a coarse ASCII map of the cluster (Figure-1 style).
fn print_topology(topo: &Topology) {
    let cells = 21usize;
    let mut grid = vec![vec!['.'; cells]; cells];
    for (id, p) in topo.iter() {
        let cx = (p.x / topo.width() * (cells - 1) as f64).round() as usize;
        let cy = (p.y / topo.height() * (cells - 1) as f64).round() as usize;
        grid[cy][cx] = char::from_digit(id.index() as u32 % 10, 10).unwrap_or('n');
    }
    grid[cells / 2][cells / 2] = 'C'; // the cluster head
    for row in grid.iter().rev() {
        println!("  {}", row.iter().collect::<String>());
    }
    println!("  (digits = sensing nodes, C = cluster head)");
}
