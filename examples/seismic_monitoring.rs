//! Seismic monitoring: binary event detection with natural and malicious
//! false alarms.
//!
//! The paper's motivating example: "seismic monitoring to detect and
//! locate tremors in a given area". A cluster of geophone nodes watches
//! for tremors; every node either feels a tremor or doesn't (binary
//! detection, §3.1). Sensors are cheap: even correct ones err ~1% of the
//! time, and a growing subset is compromised — missing half the real
//! tremors and raising spurious alarms designed to poison the record.
//!
//! The demo measures missed tremors AND false alarms for TIBFIT vs the
//! stateless baseline, and shows diagnosis: compromised geophones are
//! identified by their collapsed trust index.
//!
//! Run with:
//! ```text
//! cargo run --example seismic_monitoring
//! ```

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_core::engine::{Aggregator, BaselineEngine, TibfitEngine};
use tibfit_core::trust::TrustParams;
use tibfit_experiments::network::{ClusterSim, ClusterSimConfig};
use tibfit_net::channel::Perfect;
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;

const N_NODES: usize = 10;
const N_FAULTY: usize = 6; // a 60% compromised majority
const TREMORS: u64 = 150;

fn build_sim(engine: Box<dyn Aggregator>, seed: u64) -> ClusterSim {
    let topo = Topology::single_cluster(N_NODES, 5.0);
    let ch = Point::new(topo.width() / 2.0, topo.height() / 2.0);
    let behaviors: Vec<Box<dyn NodeBehavior>> = (0..N_NODES)
        .map(|i| -> Box<dyn NodeBehavior> {
            if i < N_FAULTY {
                // Compromised geophone: misses half the tremors, raises
                // spurious alarms 10% of the time.
                Box::new(Level0Node::new(Level0Config {
                    missed_alarm: 0.5,
                    false_alarm: 0.10,
                    loc_sigma: 0.0,
                    drop_prob: 0.0,
                }))
            } else {
                // Honest geophone with a 1% natural error rate.
                Box::new(CorrectNode::new(0.01, 0.0))
            }
        })
        .collect();
    ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            ch_position: ch,
        },
        topo,
        behaviors,
        Box::new(Perfect),
        engine,
        SimRng::seed_from(seed),
    )
}

struct Tally {
    detected: u64,
    false_alarms: u64,
}

fn monitor(mut sim: ClusterSim) -> (Tally, ClusterSim) {
    let mut tally = Tally {
        detected: 0,
        false_alarms: 0,
    };
    for _ in 0..TREMORS {
        // Quiet interval: spurious alarms may trigger a vote.
        let quiet = sim.run_binary_round(false);
        tally.false_alarms += u64::from(quiet.event_declared);
        // A real tremor.
        let tremor = sim.run_binary_round(true);
        tally.detected += u64::from(tremor.event_declared);
    }
    (tally, sim)
}

fn main() {
    println!("Seismic monitoring: {N_NODES} geophones, {N_FAULTY} compromised ({TREMORS} tremors)\n");

    let params = TrustParams::experiment1(0.01);
    let tibfit_engine =
        TibfitEngine::new(params, N_NODES).with_isolation_threshold(0.05);
    let (tibfit, sim) = monitor(build_sim(Box::new(tibfit_engine), 2024));
    let (baseline, _) = monitor(build_sim(Box::new(BaselineEngine::new()), 2024));

    println!("                detected       false alarms raised");
    println!(
        "  TIBFIT      {:>5}/{TREMORS}  ({:>5.1}%)   {:>4}",
        tibfit.detected,
        100.0 * tibfit.detected as f64 / TREMORS as f64,
        tibfit.false_alarms,
    );
    println!(
        "  Baseline    {:>5}/{TREMORS}  ({:>5.1}%)   {:>4}",
        baseline.detected,
        100.0 * baseline.detected as f64 / TREMORS as f64,
        baseline.false_alarms,
    );

    println!("\nDiagnosis — final trust index per geophone (TIBFIT):");
    for i in 0..N_NODES {
        let node = NodeId(i);
        let trust = sim.trust_of(node).expect("TIBFIT keeps trust");
        let role = if i < N_FAULTY { "compromised" } else { "honest" };
        let isolated = if sim.isolated_nodes().contains(&node) {
            "  [ISOLATED]"
        } else {
            ""
        };
        println!("  geophone {i}: TI = {trust:.4}  ({role}){isolated}");
    }
    let isolated = sim.isolated_nodes();
    println!(
        "\n{} of {} compromised geophones were diagnosed and expelled.",
        isolated.iter().filter(|n| n.index() < N_FAULTY).count(),
        N_FAULTY,
    );
    assert!(tibfit.detected >= baseline.detected);
}
