//! Chaos run: deterministic infrastructure faults against a live cluster.
//!
//! A 25-node cluster runs 300 event rounds while a seed-reproducible
//! [`FaultPlan`] crashes nodes (some reboot flaky), kills the acting
//! cluster head mid-round, forces the Gilbert–Elliott channel into loss
//! bursts, delays reports past `T_out`, and wipes the trust table at a
//! handoff. Every fault is paired with its recovery path: shadow-CH
//! failover, bounded report retransmission, trust re-sync from the last
//! handoff snapshot, and quarantine-then-probation reintegration.
//!
//! The same plan is run twice — recovery on, recovery off — so the
//! printed gap is the measured value of the recovery machinery.
//!
//! Run with:
//! ```text
//! cargo run --example chaos
//! ```

use tibfit_experiments::exp5_chaos::{run_exp5, Exp5Config};
use tibfit_faults::{FaultKind, FaultPlan};

const SEED: u64 = 42;
const INTENSITY: f64 = 0.8;

fn main() {
    println!("Chaos: infrastructure faults vs the TIBFIT recovery paths\n");

    let config_on = Exp5Config::default_scale(true);
    let config_off = Exp5Config::default_scale(false);
    let plan = FaultPlan::random(INTENSITY, SEED, config_on.horizon(), config_on.n_nodes)
        .expect("valid intensity");

    println!(
        "fault plan: {} faults over {} rounds (intensity {INTENSITY}, seed {SEED}, fingerprint {:016x})",
        plan.len(),
        config_on.events,
        plan.fingerprint()
    );
    let mut by_kind = std::collections::BTreeMap::new();
    for fault in plan.faults() {
        *by_kind.entry(fault.kind.label()).or_insert(0u32) += 1;
    }
    for (kind, count) in &by_kind {
        println!("  {kind:<18} x{count}");
    }
    println!();

    let with = run_exp5(&config_on, &plan, SEED);
    let without = run_exp5(&config_off, &plan, SEED);

    println!("                        recovery ON   recovery OFF");
    println!(
        "accuracy                {:>11.3}   {:>12.3}",
        with.outcome.accuracy, without.outcome.accuracy
    );
    println!(
        "mean rounds to recover  {:>11.2}   {:>12.2}",
        with.outcome.mean_recovery_rounds, without.outcome.mean_recovery_rounds
    );
    println!(
        "shadow-CH failovers     {:>11}   {:>12}",
        with.outcome.failovers, without.outcome.failovers
    );
    println!(
        "report retries          {:>11}   {:>12}",
        with.outcome.retries, without.outcome.retries
    );
    println!(
        "nodes reintegrated      {:>11}   {:>12}",
        with.outcome.reintegrated, without.outcome.reintegrated
    );

    println!("\ntrace counters (recovery ON):");
    for (name, value) in with.trace.counters() {
        println!("  {name:<24} {value}");
    }

    // Show the first few trace lines — the same seed and plan always
    // renders these byte-for-byte identically.
    println!("\nfirst fault events in the trace:");
    for event in with.trace.events_in("fault").iter().take(6) {
        println!("  [t={}] {}", event.time.ticks(), event.message);
    }

    // A hand-built plan works too: one CH crash, nothing else.
    let surgical = FaultPlan::from_faults(vec![tibfit_faults::ScheduledFault {
        at: tibfit_sim::SimTime::from_ticks(5_000),
        kind: FaultKind::ChCrash,
    }])
    .expect("valid plan");
    let run = run_exp5(&config_on, &surgical, SEED);
    println!(
        "\nsingle CH crash with failover: accuracy {:.3}, {} failover(s)",
        run.outcome.accuracy, run.outcome.failovers
    );
}
