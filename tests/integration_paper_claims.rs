//! One test per headline claim of the paper, cross-referencing the
//! analysis crate against the simulation — the "does the reproduction
//! hold together" suite.

use tibfit_analysis::{
    corruption_interval_root, k_max_final, recurrence_tolerates, success_probability,
};
use tibfit_core::binary::{decide_binary, judge_binary};
use tibfit_core::trust::{TrustParams, TrustTable};
use tibfit_core::vote::Weighting;
use tibfit_experiments::exp1::{run_exp1, EngineKind, Exp1Config};
use tibfit_net::topology::NodeId;

#[test]
fn abstract_claim_detection_with_majority_compromised() {
    // Abstract: "accurate event detection is possible even if more than
    // 50% of the network nodes are compromised" — once state has built.
    let params = TrustParams::new(0.25, 0.0);
    let mut table = TrustTable::new(params, 9);
    let neighbors: Vec<NodeId> = (0..9).map(NodeId).collect();
    // Nodes fall one at a time, every 10 events, up to 6 of 9 (67%).
    let mut n_faulty = 0usize;
    for round in 0..70 {
        if round % 10 == 0 && n_faulty < 6 {
            n_faulty += 1;
        }
        let reporters: Vec<NodeId> = (n_faulty..9).map(NodeId).collect();
        let out = decide_binary(&neighbors, &reporters, &Weighting::Trust(&table));
        assert!(out.event_declared, "round {round} with {n_faulty} faulty");
        table.apply_judgements(&judge_binary(&out));
    }
    assert_eq!(n_faulty, 6, "a 67% majority was tolerated");
}

#[test]
fn section5_baseline_fall_off_matches_simulation() {
    // The analytic baseline curve (Fig 10) and the simulated baseline
    // (Exp 1) must agree on where majority voting degrades. The analysis
    // has p = P(correct node reports | event); the simulated baseline
    // with NER 1% maps to p = 0.99, faulty MA 50% to q = 0.5.
    let trials = 8;
    for &(pct, m) in &[(40.0, 4u64), (60.0, 6), (80.0, 8)] {
        let analytic = success_probability(10, m, 0.99, 0.5);
        let mut simulated = 0.0;
        for seed in tibfit_experiments::harness::trial_seeds(77, trials) {
            let config = Exp1Config {
                engine: EngineKind::Baseline,
                ..Exp1Config::paper_fig2(0.01)
            };
            simulated += run_exp1(&config, pct, seed).accuracy;
        }
        simulated /= trials as f64;
        assert!(
            (analytic - simulated).abs() < 0.08,
            "m={m}: analysis {analytic} vs simulation {simulated}"
        );
    }
}

#[test]
fn section5_tolerable_corruption_interval_validated_by_recurrence() {
    // Figure 11's root: corrupting one node every k* events is the
    // boundary of 100% accuracy. The direct CTI recurrence should agree
    // within the analysis' safety margin.
    for &lambda in &[0.1, 0.25, 0.5] {
        let root = corruption_interval_root(lambda, 11);
        assert!(
            recurrence_tolerates((root * 1.5).ceil() as u64, lambda, 11),
            "λ={lambda}: 1.5× root must be tolerated"
        );
    }
    // And the end-game bound is exactly ln(3)/λ.
    assert!((k_max_final(0.25) - 4.394449154672439).abs() < 1e-12);
}

#[test]
fn lambda_choice_justification() {
    // §5: "as λ increases, the frequency of nodes failing that can be
    // tolerated increases" — roots decrease with λ.
    let r1 = corruption_interval_root(0.1, 11);
    let r2 = corruption_interval_root(0.25, 11);
    let r3 = corruption_interval_root(0.5, 11);
    assert!(r1 > r2 && r2 > r3);
}

#[test]
fn intro_claim_stateless_voting_fails_at_majority() {
    // Introduction: "the simple voting approach falls apart when more
    // than 50% of the nodes within detection range of the event are
    // corrupted" — with always-silent faulty nodes, majority voting has
    // zero accuracy past 50%, while TIBFIT (with built state) does not.
    let neighbors: Vec<NodeId> = (0..10).map(NodeId).collect();
    let reporters: Vec<NodeId> = (6..10).map(NodeId).collect(); // 4 honest
    let out = decide_binary(&neighbors, &reporters, &Weighting::Uniform);
    assert!(!out.event_declared, "baseline must fail at 60% silent faulty");

    let params = TrustParams::new(0.25, 0.0);
    let mut table = TrustTable::new(params, 10);
    // History: the 6 faulty nodes have lied for 15 rounds.
    for _ in 0..15 {
        for liar in 0..6 {
            table.record_faulty(NodeId(liar));
        }
    }
    let out = decide_binary(&neighbors, &reporters, &Weighting::Trust(&table));
    assert!(out.event_declared, "TIBFIT must succeed with built state");
}

#[test]
fn trust_index_expected_drift_is_zero_at_calibrated_rate() {
    // §3: E[Δv] = (1 − f_r)·f_r − f_r·(1 − f_r) = 0 — a node erring at
    // exactly f_r accumulates no *systematic* distrust. Its counter is a
    // reflected zero-drift walk (O(√n) excursions), while any error rate
    // above f_r drifts linearly in n; verify that separation.
    use tibfit_sim::rng::SimRng;
    let params = TrustParams::new(0.25, 0.1);
    let node = NodeId(0);
    let n = 20_000;
    let run = |error_rate: f64| -> f64 {
        let mut rng = SimRng::seed_from(7);
        let mut table = TrustTable::new(params, 1);
        for _ in 0..n {
            if rng.chance(error_rate) {
                table.record_faulty(node);
            } else {
                table.record_correct(node);
            }
        }
        table.counter_of(node)
    };
    let calibrated = run(0.1);
    let doubled = run(0.2);
    // Zero drift: far below the counter a linear drift would build
    // (even a tenth of the doubled rate's drift ≈ 200).
    assert!(
        calibrated < 200.0,
        "calibrated node's counter grew linearly: {calibrated}"
    );
    // Positive drift at 2·f_r: ≈ n·f_r·(1−2·f_r)… ≈ 0.1·n.
    assert!(
        doubled > 1_000.0,
        "miscalibrated node's counter failed to drift: {doubled}"
    );
}

#[test]
fn conclusion_claim_level_ordering() {
    // Conclusions: level-1 "successfully tolerated"; level-2 "not as
    // high though it outperforms the baseline". Together with the Fig-5/6
    // integration tests, assert the cross-level ordering under TIBFIT.
    use tibfit_experiments::exp2::{run_exp2, Exp2Config, FaultLevel};
    let trials = 3;
    let acc = |level: FaultLevel| -> f64 {
        let mut config = Exp2Config::paper(1.6, 4.25, level, EngineKind::Tibfit);
        config.events = 200;
        let sum: f64 = tibfit_experiments::harness::trial_seeds(88, trials)
            .into_iter()
            .map(|s| run_exp2(&config, 58.0, s).accuracy)
            .sum();
        sum / trials as f64
    };
    let l1 = acc(FaultLevel::Level1);
    let l2 = acc(FaultLevel::Level2);
    assert!(
        l1 > l2,
        "level-1 should be tolerated better than colluding level-2: {l1} vs {l2}"
    );
}
