//! Integration tests for the management plane: LEACH rotation with trust
//! thresholds (paper §2), shadow-CH adjudication (§3.4), trust hand-off,
//! multi-hop dissemination, and the Experiment-3 decay scenario.

use tibfit_core::lifecycle::{ClusterLifecycle, LifecycleConfig};
use tibfit_core::location::LocatedReport;
use tibfit_experiments::exp1::EngineKind;
use tibfit_experiments::exp3::{run_exp3, Exp3Config};
use tibfit_net::channel::{BernoulliLoss, Perfect};
use tibfit_net::geometry::Point;
use tibfit_net::multihop::{DeliveryStatus, MultihopConfig, MultihopNetwork};
use tibfit_net::message::ControlMessage;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;

fn reports_for(cluster: &ClusterLifecycle, event: Point) -> Vec<LocatedReport> {
    cluster
        .topology()
        .event_neighbors(event, 20.0)
        .into_iter()
        .map(|n| LocatedReport::new(n, event))
        .collect()
}

#[test]
fn compromised_heads_never_corrupt_the_event_stream() {
    // §3.4: a single faulty CH per round is tolerated — across many
    // rounds with *every* head compromised, every conclusion is still
    // recovered by the shadow majority.
    let topo = Topology::uniform_grid(25, 50.0, 50.0);
    let mut cluster = ClusterLifecycle::new(LifecycleConfig::paper(), topo);
    let mut rng = SimRng::seed_from(31);
    let mut event_rng = SimRng::seed_from(32);
    for round in 0..80 {
        let event = Point::new(
            event_rng.uniform_range(5.0, 45.0),
            event_rng.uniform_range(5.0, 45.0),
        );
        let reports = reports_for(&cluster, event);
        let result = cluster.process_event_round(&reports, true, &mut rng);
        assert!(result.ruling.ch_overruled, "round {round}: corruption uncaught");
        let loc = result
            .ruling
            .final_conclusion
            .location()
            .expect("event recovered");
        assert!(loc.distance_to(event) <= 5.0, "round {round}: bad location");
    }
    assert_eq!(cluster.overrule_count(), 80);
}

#[test]
fn trust_penalties_deprioritize_demoted_heads() {
    let topo = Topology::uniform_grid(25, 50.0, 50.0);
    let mut cluster = ClusterLifecycle::new(LifecycleConfig::paper(), topo);
    let mut rng = SimRng::seed_from(33);
    let event = Point::new(25.0, 25.0);
    let reports = reports_for(&cluster, event);
    // Compromise whoever leads; at the moment of demotion their trust
    // must rank below every node never caught lying. (The paper's trust
    // model deliberately lets penalised nodes redeem themselves through
    // later correct reports, so the penalty is checked at demotion
    // time, not after the full run.)
    let mut demoted = std::collections::HashSet::new();
    for _ in 0..20 {
        let head = cluster.current_head(&mut rng);
        cluster.process_event_round(&reports, true, &mut rng);
        demoted.insert(head);
        let clean_trust: f64 = cluster
            .topology()
            .node_ids()
            .filter(|n| !demoted.contains(n))
            .map(|n| cluster.trust_of(n))
            .fold(1.0, f64::min);
        assert!(
            cluster.trust_of(head) < clean_trust,
            "demoted head {head} not below clean nodes"
        );
    }
}

#[test]
fn handoff_carries_full_trust_table() {
    let topo = Topology::uniform_grid(16, 40.0, 40.0);
    let mut cluster = ClusterLifecycle::new(LifecycleConfig::paper(), topo);
    let mut rng = SimRng::seed_from(34);
    let event = Point::new(20.0, 20.0);
    let reports = reports_for(&cluster, event);
    for _ in 0..25 {
        cluster.process_event_round(&reports, false, &mut rng);
    }
    assert!(!cluster.handoffs().is_empty());
    for h in cluster.handoffs() {
        let ControlMessage::TrustHandoff { trust, from_head } = h else {
            panic!("unexpected control message");
        };
        assert_eq!(trust.len(), 16);
        assert!(from_head.index() < 16);
        for (_, ti) in trust {
            assert!((0.0..=1.0).contains(ti));
        }
    }
}

#[test]
fn multihop_report_chain_feeds_decision() {
    // A full §3.4-extension path: distant sensors deliver reports over
    // multiple hops, then the head decides. Delivery succeeds for nodes
    // with a greedy path; the decision is then made on what arrived.
    let topo = Topology::uniform_grid(100, 100.0, 100.0);
    let net = MultihopNetwork::new(MultihopConfig::default_paper_scale(), &topo);
    let channel = BernoulliLoss::new(0.05);
    let mut rng = SimRng::seed_from(35);
    let sink = Point::new(50.0, 50.0);
    let event = Point::new(15.0, 85.0);

    let neighbors = topo.event_neighbors(event, 20.0);
    let mut delivered = Vec::new();
    for &n in &neighbors {
        let result = net.deliver(n, sink, &channel, &mut rng);
        if result.delivered() {
            delivered.push(LocatedReport::new(n, event));
        }
    }
    assert!(
        delivered.len() >= neighbors.len() / 2,
        "too few multi-hop deliveries: {}/{}",
        delivered.len(),
        neighbors.len()
    );
    use tibfit_core::engine::Aggregator;
    let mut engine = tibfit_core::engine::TibfitEngine::new(
        tibfit_core::trust::TrustParams::experiment2(),
        100,
    );
    let round = engine.located_round(&topo, 20.0, 5.0, &delivered);
    assert_eq!(round.declared_locations().len(), 1);
    assert!(round.declared_locations()[0].distance_to(event) <= 5.0);
}

#[test]
fn multihop_statuses_cover_failure_modes() {
    let topo = Topology::uniform_grid(100, 100.0, 100.0);
    let mut rng = SimRng::seed_from(36);
    // Healthy network: delivered.
    let healthy = MultihopNetwork::new(MultihopConfig::default_paper_scale(), &topo);
    assert_eq!(
        healthy
            .deliver(NodeId(0), Point::new(95.0, 95.0), &Perfect, &mut rng)
            .status,
        DeliveryStatus::Delivered
    );
    // Radio range too short to reach anyone: routing void.
    let deaf = MultihopNetwork::new(
        MultihopConfig {
            radio_range: 1.0,
            max_retries: 0,
            max_hops: 8,
        },
        &topo,
    );
    assert_eq!(
        deaf.deliver(NodeId(0), Point::new(95.0, 95.0), &Perfect, &mut rng)
            .status,
        DeliveryStatus::RoutingVoid
    );
}

#[test]
fn decay_experiment_windows_align_with_schedule() {
    let config = Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit);
    let windows = run_exp3(&config, 41);
    // 14 schedule steps × 50 events + 50 tail = 750 events → 15 windows.
    assert_eq!(windows.len(), 15);
    assert!((windows[0].compromised_fraction - 0.05).abs() < 1e-9);
    assert!((windows.last().unwrap().compromised_fraction - 0.75).abs() < 1e-9);
}

#[test]
fn paper_claim_tibfit_near_80pct_at_60pct_compromised_decay() {
    // §4.3: "the TIBFIT network maintains nearly 80% accuracy even with
    // 60% of the network compromised."
    let trials = 3;
    let mut acc = 0.0;
    let mut count = 0.0;
    for seed in tibfit_experiments::harness::trial_seeds(42, trials) {
        for w in run_exp3(&Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit), seed) {
            if (w.compromised_fraction - 0.60).abs() < 0.02 {
                acc += w.accuracy;
                count += 1.0;
            }
        }
    }
    acc /= count;
    assert!(acc > 0.75, "accuracy at 60% compromised: {acc}");
}

#[test]
fn decay_tibfit_beats_baseline_in_every_late_window() {
    let seed = 43;
    let t = run_exp3(&Exp3Config::paper(2.0, 6.0, EngineKind::Tibfit), seed);
    let b = run_exp3(&Exp3Config::paper(2.0, 6.0, EngineKind::Baseline), seed);
    let t_late: f64 = t
        .iter()
        .filter(|w| w.compromised_fraction >= 0.5)
        .map(|w| w.accuracy)
        .sum();
    let b_late: f64 = b
        .iter()
        .filter(|w| w.compromised_fraction >= 0.5)
        .map(|w| w.accuracy)
        .sum();
    assert!(t_late > b_late, "TIBFIT {t_late} vs baseline {b_late}");
}
