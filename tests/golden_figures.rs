//! Golden-snapshot regression tests: the figure-generation pipeline is
//! fully deterministic (seeded RNG, order-preserving parallel sweeps), so
//! regenerating a figure with a fixed seed must reproduce the checked-in
//! CSV byte-for-byte. Any intentional change to protocol defaults or
//! experiment parameters shows up here first; regenerate the snapshots
//! with the instructions below when the change is deliberate.
//!
//! Regenerate: run each `figure*` with `(trials = 2, seed = 42)` and
//! `write_csv(Path::new("results/golden"))` (see the commented recipe at
//! the bottom of this file).

use std::path::Path;

use tibfit_experiments::report::FigureData;
use tibfit_experiments::{exp1, exp2, exp3, exp4_shadow, exp5_chaos};
use tibfit_sim::stats::Series;

const TRIALS: usize = 2;
const SEED: u64 = 42;

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/golden"))
}

fn assert_matches_golden(fig: &FigureData) {
    let path = golden_dir().join(format!("{}.csv", fig.id));
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    let fresh = fig.to_csv();
    assert_eq!(
        fresh,
        golden,
        "figure {} no longer matches its golden snapshot; if the change \
         is intentional, regenerate results/golden/{}.csv",
        fig.id,
        fig.id
    );
}

#[test]
fn fig2_matches_golden() {
    assert_matches_golden(&exp1::figure2(TRIALS, SEED));
}

#[test]
fn fig3_matches_golden() {
    assert_matches_golden(&exp1::figure3(TRIALS, SEED));
}

#[test]
fn fig4_matches_golden() {
    assert_matches_golden(&exp2::figure4(TRIALS, SEED));
}

#[test]
fn fig5_matches_golden() {
    assert_matches_golden(&exp2::figure5(TRIALS, SEED));
}

#[test]
fn fig6_matches_golden() {
    assert_matches_golden(&exp2::figure6(TRIALS, SEED));
}

#[test]
fn fig7_matches_golden() {
    assert_matches_golden(&exp2::figure7(TRIALS, SEED));
}

#[test]
fn fig8_matches_golden() {
    assert_matches_golden(&exp3::figure8(TRIALS, SEED));
}

#[test]
fn fig9_matches_golden() {
    assert_matches_golden(&exp3::figure9(TRIALS, SEED));
}

#[test]
fn exp4_shadow_matches_golden() {
    assert_matches_golden(&exp4_shadow::figure_shadow(TRIALS, SEED));
}

#[test]
fn exp5_chaos_matches_golden() {
    // Drives the full DES path (timer-wheel queue, pooled collector
    // buffers, interned counters) — the snapshot was generated before
    // the fast-path scheduler landed, so byte-identity here proves the
    // optimized kernel replays the exact event order.
    assert_matches_golden(&exp5_chaos::figure_chaos(TRIALS, SEED));
}

#[test]
fn exp5_recovery_matches_golden() {
    assert_matches_golden(&exp5_chaos::figure_recovery_time(TRIALS, SEED));
}

#[test]
fn fig10_matches_golden() {
    let mut fig = FigureData::new("fig10", "t", "% faulty nodes", "P(success)");
    for line in tibfit_analysis::fig10::generate() {
        let mut s = Series::new(format!("p={}", line.p));
        for (x, y) in line.points {
            s.record(x, y);
        }
        fig.series.push(s);
    }
    assert_matches_golden(&fig);
}

#[test]
fn fig11_matches_golden() {
    let mut fig = FigureData::new("fig11", "t", "k", "f(k)");
    for line in tibfit_analysis::fig11::generate(60.0, 61) {
        let mut s = Series::new(format!("lambda={}", line.lambda));
        for (x, y) in line.points {
            s.record(x, y);
        }
        fig.series.push(s);
    }
    assert_matches_golden(&fig);
}

// Regeneration recipe (run from the workspace root):
//
// ```rust,ignore
// let dir = std::path::Path::new("results/golden");
// exp1::figure2(2, 42).write_csv(dir)?;
// exp1::figure3(2, 42).write_csv(dir)?;
// exp2::figure4(2, 42).write_csv(dir)?;   // likewise figure5..figure7
// exp3::figure8(2, 42).write_csv(dir)?;   // likewise figure9
// exp4_shadow::figure_shadow(2, 42).write_csv(dir)?;
// /* fig10/fig11 as constructed above */
// ```
