//! Golden checkpoint blobs: little-endian snapshot containers checked
//! into `tests/golden/`, one per arithmetic backend, captured from a
//! fixed warmed-up deployment. Three pins per backend:
//!
//! 1. Re-capturing the same deployment reproduces the checked-in blob
//!    byte-for-byte (the container layout and every encoder are frozen —
//!    a layout change must come with a version bump and regenerated
//!    goldens).
//! 2. Restoring the blob and extending the run stays in bit-exact
//!    lockstep with an uninterrupted simulation of the same scenario.
//! 3. The f64 restore and the Q16.16 restore extend **decision-
//!    identically**: same `MultiRoundResult` every round, even though
//!    their trust bits differ.
//!
//! Regenerate after a deliberate format change with
//! `cargo test -p tibfit-experiments --test golden_snapshots -- --ignored`.

use std::path::PathBuf;

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_experiments::checkpoint::{restore_sequential, save_sequential, CheckpointError};
use tibfit_experiments::multicluster::{grid_sites, MultiClusterConfig, MultiClusterSim};
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;
use tibfit_sim::snapshot::{SnapshotError, MAGIC, VERSION};

const NODES: usize = 16;
const CLUSTERS: usize = 2;
const FIELD: f64 = 40.0;
const FAULTY: usize = 4;
const SEED: u64 = 2026;
const WARMUP_ROUNDS: usize = 6;
const EXTENSION_ROUNDS: usize = 6;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")).join(name)
}

fn blob_name(fixed: bool) -> &'static str {
    if fixed {
        "checkpoint_v2_q16.bin"
    } else {
        "checkpoint_v2_f64.bin"
    }
}

fn build(fixed: bool) -> MultiClusterSim {
    let mut config = MultiClusterConfig::paper().mobile(0.6, 3);
    if fixed {
        config.trust = config.trust.with_fixed_point().expect("paper calibration survives Q16.16");
    }
    let faulty = SimRng::seed_from(SEED ^ 0xFA).choose_indices(NODES, FAULTY);
    let behaviors: Vec<Box<dyn NodeBehavior + Send>> = (0..NODES)
        .map(|i| -> Box<dyn NodeBehavior + Send> {
            if faulty.contains(&i) {
                Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
            } else {
                Box::new(CorrectNode::new(0.0, 1.6))
            }
        })
        .collect();
    MultiClusterSim::try_new(
        config,
        Topology::uniform_grid(NODES, FIELD, FIELD),
        grid_sites(CLUSTERS, FIELD),
        behaviors,
        |_| Box::new(BernoulliLoss::new(0.005)),
        SEED,
    )
    .expect("golden scenario is valid")
}

fn events(n: usize, salt: u64) -> Vec<Point> {
    let mut rng = SimRng::seed_from(SEED ^ salt);
    (0..n)
        .map(|_| Point::new(rng.uniform_range(0.0, FIELD), rng.uniform_range(0.0, FIELD)))
        .collect()
}

/// The warmed-up deployment every golden blob is captured from.
fn warmed(fixed: bool) -> MultiClusterSim {
    let mut sim = build(fixed);
    for &event in &events(WARMUP_ROUNDS, 0xE7) {
        sim.run_event(event);
    }
    sim
}

#[test]
fn golden_blobs_match_fresh_capture_bytewise() {
    for fixed in [false, true] {
        let blob = save_sequential(&warmed(fixed)).expect("capture succeeds");
        let path = golden_path(blob_name(fixed));
        let golden = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden blob {}: {e}", path.display()));
        assert_eq!(
            blob,
            golden,
            "{} no longer matches a fresh capture; if the format change is \
             intentional, bump snapshot::VERSION and regenerate with \
             `cargo test --test golden_snapshots -- --ignored`",
            blob_name(fixed)
        );
    }
}

#[test]
fn golden_blobs_restore_and_extend_in_lockstep() {
    for fixed in [false, true] {
        let golden = std::fs::read(golden_path(blob_name(fixed))).expect("golden blob present");
        let mut restored = restore_sequential(&golden).expect("golden blob restores");
        let mut fresh = warmed(fixed);
        for (round, &event) in events(EXTENSION_ROUNDS, 0x5E).iter().enumerate() {
            assert_eq!(
                fresh.run_event(event),
                restored.run_event(event),
                "backend fixed={fixed}: restored run diverged at extension round {round}"
            );
            assert_eq!(
                fresh.trust_snapshot(),
                restored.trust_snapshot(),
                "backend fixed={fixed}: trust diverged at extension round {round}"
            );
        }
        assert_eq!(fresh.counters(), restored.counters());
    }
}

#[test]
fn both_backends_extend_decision_identically() {
    let f64_blob = std::fs::read(golden_path(blob_name(false))).expect("golden blob present");
    let q16_blob = std::fs::read(golden_path(blob_name(true))).expect("golden blob present");
    let mut f64_sim = restore_sequential(&f64_blob).expect("restores");
    let mut q16_sim = restore_sequential(&q16_blob).expect("restores");
    for (round, &event) in events(EXTENSION_ROUNDS, 0x5E).iter().enumerate() {
        assert_eq!(
            f64_sim.run_event(event),
            q16_sim.run_event(event),
            "backends disagreed on a decision at extension round {round}"
        );
    }
}

#[test]
fn golden_blobs_are_little_endian_on_disk() {
    // The container is pinned little-endian regardless of host byte
    // order, so a blob captured on x86 restores on a big-endian box and
    // vice versa. Assert the raw layout directly: magic, then the
    // version's low byte first.
    for fixed in [false, true] {
        let blob = std::fs::read(golden_path(blob_name(fixed))).expect("golden blob present");
        assert_eq!(&blob[..4], &MAGIC, "{}: magic", blob_name(fixed));
        assert_eq!(
            &blob[4..6],
            &VERSION.to_le_bytes(),
            "{}: version field is not little-endian",
            blob_name(fixed)
        );
        assert_eq!(blob[4], 2, "low byte of version 2 comes first");
        assert_eq!(blob[5], 0);
    }
}

#[test]
fn byte_swapped_version_is_rejected_with_a_typed_error() {
    // A blob written by a (hypothetical) native-endian encoder on a
    // big-endian host would carry the version bytes swapped. The reader
    // must refuse it as an unsupported version — a typed, recoverable
    // error, never a panic or a silent misparse.
    let mut blob = std::fs::read(golden_path(blob_name(false))).expect("golden blob present");
    blob.swap(4, 5);
    match restore_sequential(&blob) {
        Err(CheckpointError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, VERSION.swap_bytes(), "byte-swapped version value");
            assert_eq!(supported, VERSION);
        }
        other => panic!("byte-swapped version must be UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn byte_swapped_payload_is_rejected_by_the_checksum() {
    // Swapping bytes inside a section payload models endian-confused
    // content under a correct header: the section CRC must catch it.
    for fixed in [false, true] {
        let blob = std::fs::read(golden_path(blob_name(fixed))).expect("golden blob present");
        // First section: tag at 6, length at 7..11, payload after.
        let section_len =
            u32::from_le_bytes(blob[7..11].try_into().expect("4-byte slice")) as usize;
        let payload = 11..11 + section_len;
        let swap_at = blob[payload.clone()]
            .windows(2)
            .position(|w| w[0] != w[1])
            .map(|i| payload.start + i)
            .expect("first section has two adjacent differing bytes");
        let mut corrupt = blob.clone();
        corrupt.swap(swap_at, swap_at + 1);
        match restore_sequential(&corrupt) {
            Err(CheckpointError::Snapshot(SnapshotError::CrcMismatch { .. })) => {}
            other => panic!(
                "{}: swapped payload bytes at {swap_at} must be CrcMismatch, got {other:?}",
                blob_name(fixed)
            ),
        }
    }
}

/// Regenerates the checked-in blobs. Run explicitly after a deliberate
/// container change: `cargo test --test golden_snapshots -- --ignored`.
#[test]
#[ignore = "writes tests/golden/*.bin; run only to regenerate"]
fn regenerate_golden_blobs() {
    let dir = golden_path("");
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for fixed in [false, true] {
        let blob = save_sequential(&warmed(fixed)).expect("capture succeeds");
        std::fs::write(golden_path(blob_name(fixed)), &blob).expect("write golden blob");
    }
}
