//! Differential pinning of the Q16.16 fixed-point trust backend against
//! the f64 reference — the same contract the sharded engine carries
//! against the sequential one: the backends may disagree on trust-index
//! *bits* (that is the point of quantization), but never on *decisions*.
//!
//! Two layers of comparison, across 20 seeds:
//!
//! - **Cross-backend, decision-identical**: a sequential f64 deployment
//!   and a sequential Q16.16 deployment fed the same events must produce
//!   identical [`MultiRoundResult`]s every round — same event calls,
//!   same declared locations (count-weighted centroids of the same
//!   accepted reports), same declaring clusters.
//! - **Within-backend, bit-identical**: the Q16.16 sequential engine and
//!   the Q16.16 sharded engine must stay in exact lockstep — decisions,
//!   trust trajectories, positions, and trace counters — exactly as the
//!   f64 engines already must.

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_experiments::multicluster::{grid_sites, MultiClusterConfig, MultiClusterSim};
use tibfit_experiments::sharded::ShardedMultiCluster;
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

/// A deployment recipe every engine/backend combination is built from.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    clusters: usize,
    field: f64,
    faulty: usize,
    noise_sigma: f64,
    loss: f64,
    drift_sigma: f64,
    reelect_every: u64,
    rounds: usize,
    seed: u64,
}

impl Scenario {
    /// The same mobile deployment the shard differential suite uses:
    /// multi-cluster declarations, drift, and re-election handoffs.
    fn mobile(seed: u64) -> Self {
        Scenario {
            nodes: 64,
            clusters: 4,
            field: 80.0,
            faulty: 16,
            noise_sigma: 1.6,
            loss: 0.005,
            drift_sigma: 0.6,
            reelect_every: 3,
            rounds: 12,
            seed,
        }
    }

    fn config(&self, fixed: bool) -> MultiClusterConfig {
        let mut c = MultiClusterConfig::paper().mobile(self.drift_sigma, self.reelect_every);
        if fixed {
            c.trust = c.trust.with_fixed_point().expect("paper calibration survives Q16.16");
        }
        c
    }

    fn behaviors(&self) -> Vec<Box<dyn NodeBehavior + Send>> {
        let faulty = SimRng::seed_from(self.seed ^ 0xFA).choose_indices(self.nodes, self.faulty);
        (0..self.nodes)
            .map(|i| -> Box<dyn NodeBehavior + Send> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, self.noise_sigma))
                }
            })
            .collect()
    }

    fn sequential(&self, fixed: bool) -> MultiClusterSim {
        MultiClusterSim::try_new(
            self.config(fixed),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
        )
        .expect("scenario configs are valid")
    }

    fn sharded(&self, fixed: bool, threads: usize) -> ShardedMultiCluster {
        ShardedMultiCluster::try_new(
            self.config(fixed),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
            threads,
        )
        .expect("scenario configs are valid")
    }

    fn events(&self) -> Vec<Point> {
        let mut rng = SimRng::seed_from(self.seed ^ 0xE7);
        (0..self.rounds)
            .map(|_| {
                Point::new(
                    rng.uniform_range(0.0, self.field),
                    rng.uniform_range(0.0, self.field),
                )
            })
            .collect()
    }
}

/// Runs the scenario on the f64 sequential reference, the Q16.16
/// sequential engine, and the Q16.16 sharded engine, asserting
/// decision-identity across backends and bit-identity within the fixed
/// backend, every round.
fn assert_decision_identical(scenario: &Scenario, threads: usize) {
    let mut reference = scenario.sequential(false);
    let mut seq_fixed = scenario.sequential(true);
    let mut par_fixed = scenario.sharded(true, threads);
    let ctx = format!("scenario {scenario:?} threads={threads}");
    for (round, &event) in scenario.events().iter().enumerate() {
        let want = reference.run_event(event);
        let got_seq = seq_fixed.run_event(event);
        let got_par = par_fixed.run_event(event);
        // Cross-backend: decision-identical. The full MultiRoundResult
        // (detection, declared centroids, declaring clusters) is a pure
        // function of the per-round decisions, so equality here is
        // exactly "no decision ever flipped under quantization".
        assert_eq!(want, got_seq, "fixed-point decision diverged at round {round}: {ctx}");
        // Within the fixed backend: bit-identical, engines included.
        assert_eq!(got_seq, got_par, "sharded fixed diverged at round {round}: {ctx}");
        assert_eq!(
            seq_fixed.trust_snapshot(),
            par_fixed.trust_snapshot(),
            "fixed trust trajectory diverged at round {round}: {ctx}"
        );
    }
    assert_eq!(
        seq_fixed.counters(),
        par_fixed.counters(),
        "fixed trace counters diverged: {ctx}"
    );
}

#[test]
fn twenty_seeds_sequential_and_sharded() {
    for seed in 0..20u64 {
        let scenario = Scenario::mobile(1000 + seed);
        assert_decision_identical(&scenario, 1);
        assert_decision_identical(&scenario, 4);
    }
}

#[test]
fn static_deployment_is_decision_identical() {
    let mut scenario = Scenario::mobile(77);
    scenario.drift_sigma = 0.0;
    scenario.reelect_every = 0;
    assert_decision_identical(&scenario, 4);
}

#[test]
fn fixed_backend_counters_are_exactly_representable() {
    // Every fault counter the fixed backend reports through the f64
    // surface must be an exact Q16.16 multiple — the portability claim
    // in one line: the f64 mirror carries no platform-dependent bits.
    let scenario = Scenario::mobile(4242);
    let mut sim = scenario.sequential(true);
    for &event in &scenario.events() {
        sim.run_event(event);
        for bits in sim.trust_snapshot() {
            let v = f64::from_bits(bits);
            let q = (v * 65536.0).round();
            assert_eq!(v, q / 65536.0, "non-representable counter {v}");
        }
    }
}
