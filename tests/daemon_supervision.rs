//! Watchdog supervision: wedged and panicked workers restart from
//! snapshot + recovery buffer with byte-identical decision logs;
//! crash-loopers are quarantined without disturbing their neighbors
//! and reintegrate after probation.
//!
//! Each test runs the same stream twice — once clean, once with an
//! injected worker fault — and compares the decision logs byte for
//! byte. The watchdog runs on a fast clock (5 ms checks) so detection,
//! restart, quarantine, and reintegration all happen inside a test
//! timeout.

use std::io::{BufReader, Cursor, Read};
use std::path::PathBuf;
use std::time::Duration;

use tibfit_daemon::{Daemon, DaemonConfig, DaemonReport, WatchdogPolicy, WorkerFault};
use tibfit_experiments::replay::{tenant_seed, FieldScenario};

const TENANTS: usize = 2;

fn small_scenario(seed: u64) -> FieldScenario {
    FieldScenario {
        nodes: 16,
        clusters: 2,
        field: 40.0,
        faulty: 4,
        noise_sigma: 1.0,
        loss: 0.0,
        drift_sigma: 0.3,
        reelect_every: 4,
        seed,
    }
}

/// Replay lines for ticks `[from, to)`, `per_tick` records per tenant
/// per tick (sequence numbers continue across calls, so two ranges
/// concatenate into one coherent stream).
fn replay_range(master: u64, from: u64, to: u64, per_tick: u64) -> String {
    let total = (to * per_tick) as usize;
    let streams: Vec<Vec<_>> = (0..TENANTS)
        .map(|t| small_scenario(tenant_seed(master, t)).events(total))
        .collect();
    let mut out = String::new();
    for time in from..to {
        for (tenant, stream) in streams.iter().enumerate() {
            for k in 0..per_tick {
                let p = stream[(time * per_tick + k) as usize];
                let seq = time * per_tick + k + 1;
                out.push_str(&format!("R {tenant} {time} {tenant} {seq} {} {}\n", p.x, p.y));
            }
        }
        out.push_str("T\n");
    }
    out
}

fn fast_watchdog() -> WatchdogPolicy {
    WatchdogPolicy {
        check_interval_ms: 5,
        lambda: 0.6,
        trust_floor: 0.25,
        crash_loop_window: 10_000,
        crash_loop_limit: 2,
        probation_checks: 8,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct RunOutput {
    report: DaemonReport,
    decisions: Vec<String>,
}

fn run_with(tag: &str, master: u64, faults: Vec<(usize, WorkerFault)>, input: impl Read) -> RunOutput {
    let dir = fresh_dir(tag);
    let mut cfg = DaemonConfig::standard(TENANTS, master, dir.clone());
    cfg.scenario = small_scenario;
    cfg.snapshot_every = 2;
    cfg.watchdog = fast_watchdog();
    cfg.faults = faults;
    let mut daemon = Daemon::new(cfg).expect("daemon builds");
    let report = daemon.run(BufReader::new(input)).expect("run completes");
    let decisions = (0..TENANTS)
        .map(|t| {
            std::fs::read_to_string(dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect();
    RunOutput { report, decisions }
}

#[test]
fn panicked_worker_restarts_with_byte_identical_decisions() {
    let master = 0x5A_01;
    let stream = replay_range(master, 0, 12, 2);
    let reference = run_with("panic-ref", master, Vec::new(), Cursor::new(stream.clone()));
    let fault = WorkerFault {
        wedge_at_round: None,
        panic_at_round: Some(7),
        fail_incarnations: 1, // only incarnation 0 panics
    };
    let faulted = run_with("panic-run", master, vec![(0, fault)], Cursor::new(stream));

    assert_eq!(reference.decisions, faulted.decisions);
    assert!(faulted.report.tenants[0].restarts >= 1, "watchdog must restart");
    assert!(!faulted.report.tenants[0].quarantined);
    assert_eq!(faulted.report.tenants[1].restarts, 0, "neighbor untouched");
    assert!(
        faulted.report.min_impact_trust < 1.0,
        "a dead worker must dent watchdog trust"
    );
    assert!(
        faulted.report.tenants[0]
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("panic")),
        "panic must be captured: {:?}",
        faulted.report.tenants[0].last_error
    );
}

#[test]
fn wedged_worker_restarts_with_byte_identical_decisions() {
    let master = 0x5A_02;
    let stream = replay_range(master, 0, 12, 2);
    let reference = run_with("wedge-ref", master, Vec::new(), Cursor::new(stream.clone()));
    let fault = WorkerFault {
        wedge_at_round: Some(9), // incarnation 0 stops heartbeating here
        panic_at_round: None,
        fail_incarnations: 0,
    };
    let faulted = run_with("wedge-run", master, vec![(0, fault)], Cursor::new(stream));

    assert_eq!(reference.decisions, faulted.decisions);
    assert!(faulted.report.tenants[0].restarts >= 1);
    assert!(!faulted.report.tenants[0].quarantined);
    assert!(faulted.report.min_impact_trust < 1.0);
}

#[test]
fn crash_looper_is_quarantined_without_harming_neighbors() {
    let master = 0x5A_03;
    let stream = replay_range(master, 0, 12, 2);
    let reference = run_with("quar-ref", master, Vec::new(), Cursor::new(stream.clone()));
    let fault = WorkerFault {
        wedge_at_round: None,
        panic_at_round: Some(5),
        fail_incarnations: u64::MAX, // every incarnation dies
    };
    let dir_tag = "quar-run";
    let out = {
        let dir = fresh_dir(dir_tag);
        let mut cfg = DaemonConfig::standard(TENANTS, master, dir.clone());
        cfg.scenario = small_scenario;
        cfg.snapshot_every = 2;
        cfg.watchdog = WatchdogPolicy {
            probation_checks: 1_000_000, // never reintegrate inside the test
            ..fast_watchdog()
        };
        cfg.faults = vec![(0, fault)];
        let mut daemon = Daemon::new(cfg).expect("daemon builds");
        let report = daemon.run(Cursor::new(stream)).expect("run completes");
        let decisions: Vec<String> = (0..TENANTS)
            .map(|t| {
                std::fs::read_to_string(dir.join("decisions").join(format!("tenant{t}.log")))
                    .expect("decision log exists")
            })
            .collect();
        RunOutput { report, decisions }
    };

    let t0 = &out.report.tenants[0];
    assert!(t0.quarantined, "crash-looper must end quarantined");
    assert!(t0.restarts >= 2, "quarantine follows repeated restarts");
    assert!(
        t0.shed_quarantine > 0,
        "offers during quarantine are shed and counted"
    );
    // The healthy neighbor is byte-identical to the clean run.
    assert_eq!(reference.decisions[1], out.decisions[1]);
    assert_eq!(out.report.tenants[1].restarts, 0);
    assert!(!out.report.tenants[1].quarantined);
    assert!(out.report.min_impact_trust < 0.9);
}

/// Yields `first` immediately, then sleeps before yielding `second` —
/// an input stream with a quiet period long enough for quarantine to
/// expire and probation to pass.
struct TwoPhaseReader {
    current: Cursor<Vec<u8>>,
    second: Option<(Duration, Vec<u8>)>,
}

impl Read for TwoPhaseReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.current.read(buf)?;
        if n > 0 {
            return Ok(n);
        }
        match self.second.take() {
            Some((delay, bytes)) => {
                std::thread::sleep(delay);
                self.current = Cursor::new(bytes);
                self.current.read(buf)
            }
            None => Ok(0),
        }
    }
}

#[test]
fn quarantined_tenant_reintegrates_after_probation() {
    let master = 0x5A_04;
    // Phase 1 ends exactly at the faulting tick, so nothing is offered
    // to the tenant while it sits in quarantine (nothing shed, nothing
    // lost); phase 2 arrives after reintegration.
    let phase1 = replay_range(master, 0, 3, 2);
    let phase2 = replay_range(master, 3, 12, 2);
    let full = format!("{phase1}{phase2}");

    let reference = run_with("reint-ref", master, Vec::new(), Cursor::new(full));
    let fault = WorkerFault {
        wedge_at_round: None,
        panic_at_round: Some(5), // inside tick 3 (rounds 5..6 at 2/tick)
        fail_incarnations: 3,    // incarnations 0..2 die; 3+ succeed
    };
    let input = TwoPhaseReader {
        current: Cursor::new(phase1.into_bytes()),
        second: Some((Duration::from_millis(700), phase2.into_bytes())),
    };
    let out = run_with("reint-run", master, vec![(0, fault)], input);

    let t0 = &out.report.tenants[0];
    assert!(!t0.quarantined, "tenant must be reintegrated by end of run");
    assert!(t0.restarts >= 3, "crash loop plus reintegration restart");
    assert_eq!(t0.shed_quarantine, 0, "quiet quarantine sheds nothing");
    assert_eq!(reference.decisions, out.decisions);
}
