//! Fleet failover harness: 3 real daemons share a state directory and
//! split tenants by rendezvous placement. Kill any one of them
//! anywhere mid-stream — a seeded abort (the deterministic stand-in
//! for SIGKILL) or a raced real SIGKILL — and the survivors must
//! quarantine the dead peer, adopt its tenants, and leave merged
//! decision logs **byte-identical** to an uninterrupted single-daemon
//! run of the same (seed, stream).
//!
//! The same bar applies to the operator path: a rolling-upgrade drill
//! that `MIGRATE`s every tenant in turn between two daemons, streaming
//! between the moves, must also come out byte-identical and drop zero
//! records.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use tibfit_daemon::fleet::owner_of;

const TENANTS: usize = 3;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_tibfit-daemon")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A currently-free localhost port (bind-then-drop; the tiny TOCTOU
/// window is acceptable for tests).
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind :0")
        .local_addr()
        .expect("local addr")
        .port()
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("binary spawns");
    assert!(
        out.status.success(),
        "expected success for {args:?}\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn decisions(state_dir: &Path) -> Vec<String> {
    (0..TENANTS)
        .map(|t| {
            std::fs::read_to_string(state_dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect()
}

fn gen_replay(dir: &Path, seed: u64, ticks: u64) -> PathBuf {
    let replay = dir.join("events.replay");
    run_ok(&[
        "gen-replay",
        "--out",
        replay.to_str().unwrap(),
        "--tenants",
        &TENANTS.to_string(),
        "--seed",
        &seed.to_string(),
        "--ticks",
        &ticks.to_string(),
        "--per-tick",
        "2",
    ]);
    replay
}

fn counter(stdout: &str, key: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing counter {key} in:\n{stdout}"))
        .trim()
        .parse()
        .expect("counter value")
}

/// A placement seed under which each of the 3 daemons owns exactly one
/// of the 3 tenants — so any victim loses something worth adopting.
fn bijective_fleet_seed() -> u64 {
    (0..100_000u64)
        .find(|&s| {
            let mut owners: Vec<usize> = (0..TENANTS)
                .map(|t| owner_of(s, t, &[0, 1, 2]).unwrap())
                .collect();
            owners.sort_unstable();
            owners == vec![0, 1, 2]
        })
        .expect("a bijective placement seed exists")
}

#[allow(clippy::too_many_arguments)]
fn fleet_serve_cmd(
    replay: &str,
    shared: &str,
    seed: u64,
    engine: &str,
    id: usize,
    ports: &[u16],
    fleet_seed: u64,
    linger_ms: u64,
) -> Command {
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve",
        "--replay",
        replay,
        "--state-dir",
        shared,
        "--seed",
        &seed.to_string(),
        "--tenants",
        &TENANTS.to_string(),
        "--engine",
        engine,
        "--threads",
        "2",
        "--snapshot-every",
        "3",
        "--fleet-id",
        &id.to_string(),
        "--fleet-listen",
        &format!("127.0.0.1:{}", ports[id]),
        "--fleet-seed",
        &fleet_seed.to_string(),
        "--fleet-catchup",
        replay,
        "--fleet-linger-ms",
        &linger_ms.to_string(),
        "--fleet-grace-ms",
        "800",
        "--fleet-check-ms",
        "25",
        "--fleet-probe-ms",
        "100",
    ]);
    for (peer, port) in ports.iter().enumerate() {
        if peer != id {
            cmd.args(["--fleet-peer", &format!("{peer}=127.0.0.1:{port}")]);
        }
    }
    cmd
}

/// One failover cycle: reference run, 3-daemon fleet run with the
/// victim aborting at a seeded tick, byte-compare the merged logs.
fn failover_cycle(k: u64, engine: &str, fleet_seed: u64) {
    let seed = 1300 + k;
    let ticks = 10u64;
    let root = fresh_dir(&format!("fo{k}-{engine}"));
    let replay = gen_replay(&root, seed, ticks);
    let replay = replay.to_str().unwrap();
    let seed_s = seed.to_string();

    let ref_dir = root.join("ref");
    run_ok(&[
        "serve", "--replay", replay, "--state-dir", ref_dir.to_str().unwrap(), "--seed", &seed_s,
        "--tenants", "3", "--engine", engine, "--threads", "2", "--snapshot-every", "3",
    ]);
    let want = decisions(&ref_dir);
    assert!(!want[0].is_empty(), "reference run must decide something");

    let shared = root.join("fleet");
    let shared_s = shared.to_str().unwrap().to_string();
    let ports: Vec<u16> = (0..3).map(|_| free_port()).collect();
    let victim = usize::try_from(k).unwrap() % 3;
    let children: Vec<_> = (0..3)
        .map(|i| {
            let mut cmd =
                fleet_serve_cmd(replay, &shared_s, seed, engine, i, &ports, fleet_seed, 2000);
            if i == victim {
                // The seeded abort: the process dies without unwinding
                // at a deterministic tick in [1, ticks) — the
                // repeatable stand-in for SIGKILL.
                cmd.args([
                    "--crash-seed",
                    &k.to_string(),
                    "--crash-horizon",
                    &ticks.to_string(),
                ]);
            }
            cmd.stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("daemon spawns")
        })
        .collect();
    let outs: Vec<_> = children
        .into_iter()
        .map(|c| c.wait_with_output().expect("daemon exits"))
        .collect();

    assert!(
        !outs[victim].status.success(),
        "k={k}: the victim must die mid-stream"
    );
    let mut rebalances = 0u64;
    for (i, out) in outs.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert!(
            out.status.success(),
            "k={k} engine={engine}: survivor {i} must exit cleanly:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        rebalances += counter(&stdout, "fleet.rebalance.count");
    }
    assert!(
        rebalances >= 1,
        "k={k} engine={engine}: the victim's tenant must be adopted"
    );
    assert_eq!(
        want,
        decisions(&shared),
        "k={k} engine={engine}: merged fleet logs must be byte-identical to the reference"
    );
}

#[test]
fn seeded_kills_rebalance_byte_identical_across_20_points_and_both_engines() {
    let fleet_seed = bijective_fleet_seed();
    // Chunked parallelism: each cycle runs 4 processes and sleeps
    // through detection + linger, so batching keeps wall time sane.
    for chunk in (0..20u64).collect::<Vec<_>>().chunks(5) {
        std::thread::scope(|scope| {
            for &k in chunk {
                let engine = if k % 2 == 0 { "seq" } else { "sharded" };
                scope.spawn(move || failover_cycle(k, engine, fleet_seed));
            }
        });
    }
}

#[test]
fn raced_real_sigkill_rebalances_byte_identical() {
    let fleet_seed = bijective_fleet_seed();
    let seed = 1999u64;
    let root = fresh_dir("sigkill");
    let replay = gen_replay(&root, seed, 10);
    let replay = replay.to_str().unwrap();

    let ref_dir = root.join("ref");
    run_ok(&[
        "serve", "--replay", replay, "--state-dir", ref_dir.to_str().unwrap(), "--seed", "1999",
        "--tenants", "3", "--engine", "seq", "--threads", "2", "--snapshot-every", "3",
    ]);
    let want = decisions(&ref_dir);

    let shared = root.join("fleet");
    let shared_s = shared.to_str().unwrap().to_string();
    let ports: Vec<u16> = (0..3).map(|_| free_port()).collect();
    let victim = 1usize;
    let mut children: Vec<_> = (0..3)
        .map(|i| {
            fleet_serve_cmd(replay, &shared_s, seed, "seq", i, &ports, fleet_seed, 2000)
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("daemon spawns")
        })
        .collect();
    // SIGKILL, not a signal the daemon handles: no drain, no goodbye.
    std::thread::sleep(Duration::from_millis(60));
    children[victim].kill().expect("SIGKILL lands");

    let outs: Vec<_> = children
        .into_iter()
        .map(|c| c.wait_with_output().expect("daemon exits"))
        .collect();
    assert!(!outs[victim].status.success());
    for (i, out) in outs.iter().enumerate() {
        if i != victim {
            assert!(
                out.status.success(),
                "survivor {i}:\n{}",
                String::from_utf8_lossy(&out.stdout)
            );
        }
    }
    assert_eq!(
        want,
        decisions(&shared),
        "SIGKILL mid-stream: merged fleet logs must be byte-identical"
    );
}

// ---------------------------------------------------------------------
// Operator path: rolling MIGRATE drill.
// ---------------------------------------------------------------------

/// Splits a replay into phases cut after the given cumulative tick
/// counts; every phase ends on a `T` boundary except possibly the last.
fn split_at_ticks(text: &str, cuts: &[u64]) -> Vec<String> {
    let mut parts = vec![String::new()];
    let mut ticks = 0u64;
    let mut cut = 0usize;
    for line in text.lines() {
        let part = parts.last_mut().unwrap();
        part.push_str(line);
        part.push('\n');
        if line == "T" {
            ticks += 1;
            if cut < cuts.len() && ticks == cuts[cut] {
                cut += 1;
                parts.push(String::new());
            }
        }
    }
    parts
}

/// One ingest connection carrying one phase; retries the connect to
/// absorb the daemon's startup race.
fn send_phase(port: u16, lines: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut stream = loop {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("ingest connect to :{port}: {e}"),
        }
    };
    stream.write_all(lines.as_bytes()).expect("send phase");
}

/// The tenants a daemon actually hosts right now, discovered through
/// the `status` subcommand: a hosted tenant is reported with the
/// queried daemon's own id as owner.
fn hosted_tenants(fleet_port: u16, id: usize) -> Vec<usize> {
    let stdout = run_ok(&["status", "--connect", &format!("127.0.0.1:{fleet_port}")]);
    let mut out = Vec::new();
    for line in stdout.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() == 4 && f[0] == "S" && f[1] == "tenant" && f[3] == id.to_string() {
            out.push(f[2].parse().expect("tenant id"));
        }
    }
    out
}

#[test]
fn rolling_migrate_drill_is_byte_identical_and_lossless() {
    let seed = 2042u64;
    let root = fresh_dir("drill");
    let replay = gen_replay(&root, seed, 12);
    let replay_s = replay.to_str().unwrap();
    let text = std::fs::read_to_string(&replay).expect("replay text");

    let ref_dir = root.join("ref");
    run_ok(&[
        "serve", "--replay", replay_s, "--state-dir", ref_dir.to_str().unwrap(), "--seed", "2042",
        "--tenants", "3", "--engine", "seq", "--threads", "2", "--snapshot-every", "3",
    ]);
    let want = decisions(&ref_dir);

    // A placement seed that splits the 3 tenants across both daemons,
    // so the rolling drill moves tenants in both directions.
    let drill_seed = (0..1000u64)
        .find(|&s| {
            let owners: Vec<_> = (0..TENANTS)
                .map(|t| owner_of(s, t, &[0, 1]).unwrap())
                .collect();
            owners.contains(&0) && owners.contains(&1)
        })
        .expect("a split placement seed exists");
    let n0 = (0..TENANTS)
        .filter(|&t| owner_of(drill_seed, t, &[0, 1]) == Some(0))
        .count() as u64;

    let shared = root.join("fleet");
    let shared_s = shared.to_str().unwrap();
    let fleet_ports = [free_port(), free_port()];
    let ingest_ports = [free_port(), free_port()];
    let children: Vec<_> = (0..2usize)
        .map(|i| {
            Command::new(bin())
                .args([
                    "serve",
                    "--listen",
                    &format!("127.0.0.1:{}", ingest_ports[i]),
                    "--max-conns",
                    "3",
                    "--state-dir",
                    shared_s,
                    "--seed",
                    "2042",
                    "--tenants",
                    "3",
                    "--engine",
                    "seq",
                    "--threads",
                    "2",
                    "--snapshot-every",
                    "3",
                    "--fleet-id",
                    &i.to_string(),
                    "--fleet-listen",
                    &format!("127.0.0.1:{}", fleet_ports[i]),
                    "--fleet-peer",
                    &format!("{}=127.0.0.1:{}", 1 - i, fleet_ports[1 - i]),
                    "--fleet-seed",
                    &drill_seed.to_string(),
                    "--fleet-catchup",
                    replay_s,
                    "--fleet-linger-ms",
                    "1500",
                    "--fleet-grace-ms",
                    "800",
                    "--fleet-check-ms",
                    "25",
                    "--fleet-probe-ms",
                    "100",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("daemon spawns")
        })
        .collect();

    // Three stream phases at tick boundaries; after phase 1 roll every
    // tenant off daemon 0, after phase 2 roll everything (now all on
    // daemon 1) back to daemon 0. Records for a tenant the receiving
    // daemon does not host are dropped as foreign — the *other* daemon
    // decides them — so the full stream goes to both.
    for (p, phase) in split_at_ticks(&text, &[4, 8]).iter().enumerate() {
        for port in ingest_ports {
            send_phase(port, phase);
        }
        // Quiet window: let both run loops route the phase before the
        // migration takes the tenant's route away.
        std::thread::sleep(Duration::from_millis(500));
        let roll = match p {
            0 => Some((0usize, 1usize)),
            1 => Some((1, 0)),
            _ => None,
        };
        if let Some((from, to)) = roll {
            let tenants = hosted_tenants(fleet_ports[from], from);
            assert!(
                !tenants.is_empty(),
                "phase {p}: daemon {from} must host something to roll"
            );
            for t in tenants {
                run_ok(&[
                    "migrate",
                    "--connect",
                    &format!("127.0.0.1:{}", fleet_ports[from]),
                    "--tenant",
                    &t.to_string(),
                    "--dest",
                    &to.to_string(),
                ]);
            }
        }
    }

    let outs: Vec<_> = children
        .into_iter()
        .map(|c| c.wait_with_output().expect("daemon exits"))
        .collect();
    for (i, out) in outs.iter().enumerate() {
        assert!(
            out.status.success(),
            "daemon {i} must exit cleanly:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
    let out0 = String::from_utf8_lossy(&outs[0].stdout);
    let out1 = String::from_utf8_lossy(&outs[1].stdout);
    // Roll 1 moved daemon 0's placement tenants out; roll 2 moved all
    // three back. The mirror-image counters prove both directions ran.
    assert_eq!(counter(&out0, "fleet.migrations.out"), n0);
    assert_eq!(counter(&out0, "fleet.migrations.in"), TENANTS as u64);
    assert_eq!(counter(&out1, "fleet.migrations.out"), TENANTS as u64);
    assert_eq!(counter(&out1, "fleet.migrations.in"), n0);
    assert_eq!(counter(&out0, "fleet.migrate.failed"), 0);
    assert_eq!(counter(&out1, "fleet.migrate.failed"), 0);
    // Both daemons saw the full stream, so both dropped foreign records
    // the other one decided.
    assert!(counter(&out0, "fleet.foreign") > 0);
    assert!(counter(&out1, "fleet.foreign") > 0);
    assert_eq!(
        want,
        decisions(&shared),
        "rolling migration must not drop or duplicate a single decision"
    );
}
