//! Differential determinism suite: the sharded parallel engine must be
//! observationally identical to the sequential reference engine — same
//! per-round decisions, same bit-exact trust trajectories, same trace
//! counters — at every worker-thread count.
//!
//! Any divergence here means the conservative window synchronization or
//! the mailbox ordering is broken; there is no tolerance, comparisons
//! are exact.

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_experiments::multicluster::{grid_sites, MultiClusterConfig, MultiClusterSim};
use tibfit_experiments::sharded::ShardedMultiCluster;
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A deployment recipe both engines are built from.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    clusters: usize,
    field: f64,
    faulty: usize,
    noise_sigma: f64,
    loss: f64,
    drift_sigma: f64,
    reelect_every: u64,
    rounds: usize,
    seed: u64,
}

impl Scenario {
    /// A small mobile deployment that exercises every cross-shard path:
    /// multi-cluster declarations, drift, and re-election handoffs.
    fn mobile(seed: u64) -> Self {
        Scenario {
            nodes: 64,
            clusters: 4,
            field: 80.0,
            faulty: 16,
            noise_sigma: 1.6,
            loss: 0.005,
            drift_sigma: 0.6,
            reelect_every: 3,
            rounds: 12,
            seed,
        }
    }

    fn config(&self) -> MultiClusterConfig {
        MultiClusterConfig::paper().mobile(self.drift_sigma, self.reelect_every)
    }

    fn behaviors(&self) -> Vec<Box<dyn NodeBehavior + Send>> {
        let faulty = SimRng::seed_from(self.seed ^ 0xFA).choose_indices(self.nodes, self.faulty);
        (0..self.nodes)
            .map(|i| -> Box<dyn NodeBehavior + Send> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, self.noise_sigma))
                }
            })
            .collect()
    }

    fn sequential(&self) -> MultiClusterSim {
        MultiClusterSim::try_new(
            self.config(),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
        )
        .expect("scenario configs are valid")
    }

    fn sharded(&self, threads: usize) -> ShardedMultiCluster {
        ShardedMultiCluster::try_new(
            self.config(),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
            threads,
        )
        .expect("scenario configs are valid")
    }

    fn events(&self) -> Vec<Point> {
        let mut rng = SimRng::seed_from(self.seed ^ 0xE7);
        (0..self.rounds)
            .map(|_| {
                Point::new(
                    rng.uniform_range(0.0, self.field),
                    rng.uniform_range(0.0, self.field),
                )
            })
            .collect()
    }
}

/// Runs the scenario on the sequential engine and on the sharded engine
/// at `threads`, asserting lockstep equality every round.
fn assert_lockstep(scenario: &Scenario, threads: usize) {
    let mut seq = scenario.sequential();
    let mut par = scenario.sharded(threads);
    let ctx = format!("scenario {scenario:?} threads={threads}");
    for (round, &event) in scenario.events().iter().enumerate() {
        let a = seq.run_event(event);
        let b = par.run_event(event);
        assert_eq!(a, b, "decision diverged at round {round}: {ctx}");
        assert_eq!(
            seq.trust_snapshot(),
            par.trust_snapshot(),
            "trust trajectory diverged at round {round}: {ctx}"
        );
        assert_eq!(
            seq.position_snapshot(),
            par.position_snapshot(),
            "positions diverged at round {round}: {ctx}"
        );
    }
    assert_eq!(seq.counters(), par.counters(), "trace counters diverged: {ctx}");
}

#[test]
fn twenty_seeds_every_thread_count() {
    for seed in 0..20u64 {
        let scenario = Scenario::mobile(1000 + seed);
        for threads in THREAD_COUNTS {
            assert_lockstep(&scenario, threads);
        }
    }
}

#[test]
fn static_deployment_agrees() {
    // No drift, no re-election: the pure declare/merge path.
    let mut scenario = Scenario::mobile(77);
    scenario.drift_sigma = 0.0;
    scenario.reelect_every = 0;
    for threads in THREAD_COUNTS {
        assert_lockstep(&scenario, threads);
    }
}

#[test]
fn single_cluster_degenerate_case() {
    let mut scenario = Scenario::mobile(88);
    scenario.clusters = 1;
    scenario.nodes = 36;
    scenario.faulty = 9;
    scenario.field = 60.0;
    for threads in [1, 4] {
        assert_lockstep(&scenario, threads);
    }
}

/// Draws a random (but seeded, hence reproducible) scenario: field size,
/// cluster count, fault plan, mobility, loss rate, and round count all
/// vary. Shrinks are unnecessary — the failing scenario prints whole.
fn random_scenario(rng: &mut SimRng, seed: u64) -> Scenario {
    let clusters = 1 + rng.uniform_usize(8);
    let nodes_per_cluster = 8 + rng.uniform_usize(12);
    let nodes = clusters * nodes_per_cluster;
    let field = (nodes as f64).sqrt() * 10.0;
    let mobile = rng.uniform_usize(4) != 0;
    Scenario {
        nodes,
        clusters,
        field,
        faulty: rng.uniform_usize(nodes * 2 / 5 + 1),
        noise_sigma: 0.5 + rng.uniform_range(0.0, 2.0),
        loss: rng.uniform_range(0.0, 0.02),
        drift_sigma: if mobile { rng.uniform_range(0.1, 1.0) } else { 0.0 },
        reelect_every: if mobile { 2 + rng.uniform_usize(4) as u64 } else { 0 },
        rounds: 5 + rng.uniform_usize(8),
        seed,
    }
}

#[test]
fn randomized_scenarios_agree() {
    let mut meta_rng = SimRng::seed_from(0xD1FF);
    for case in 0..15u64 {
        let scenario = random_scenario(&mut meta_rng, 5000 + case);
        // One cheap thread count and one genuinely parallel one per case.
        let threads = [1, 2 + meta_rng.uniform_usize(7)];
        for t in threads {
            assert_lockstep(&scenario, t);
        }
    }
}

#[test]
fn adaptive_windows_match_fixed_over_ten_seeds() {
    // The adaptive path (`run_events`: one wide epoch per re-election
    // stretch) must produce the same decisions, trust trajectories,
    // positions, and counters as the fixed-window reference path
    // (`run_event`: one epoch per round) — and as the sequential engine.
    for seed in 0..10u64 {
        let scenario = Scenario::mobile(3000 + seed);
        let events = scenario.events();
        let mut seq = scenario.sequential();
        let expected: Vec<_> = events.iter().map(|&e| seq.run_event(e)).collect();
        let mut fixed = scenario.sharded(1);
        let fixed_results: Vec<_> = events.iter().map(|&e| fixed.run_event(e)).collect();
        assert_eq!(fixed_results, expected, "fixed path diverged: seed {seed}");
        for threads in [1, 4] {
            let mut adaptive = scenario.sharded(threads);
            let got = adaptive.run_events(&events);
            assert_eq!(got, expected, "adaptive diverged: seed {seed} threads={threads}");
            assert_eq!(
                fixed.trust_snapshot(),
                adaptive.trust_snapshot(),
                "trust diverged: seed {seed} threads={threads}"
            );
            assert_eq!(
                fixed.position_snapshot(),
                adaptive.position_snapshot(),
                "positions diverged: seed {seed} threads={threads}"
            );
            assert_eq!(
                fixed.counters(),
                adaptive.counters(),
                "counters diverged: seed {seed} threads={threads}"
            );
        }
    }
}

#[test]
fn engine_swap_mid_run_stays_in_lockstep() {
    // Start sequential, convert to sharded halfway, and keep comparing
    // against an uninterrupted sequential run.
    let scenario = Scenario::mobile(99);
    let events = scenario.events();
    let mut reference = scenario.sequential();
    let mut swapped = scenario.sequential();
    let (head, tail) = events.split_at(events.len() / 2);
    for &event in head {
        reference.run_event(event);
        swapped.run_event(event);
    }
    let mut swapped = ShardedMultiCluster::from_sequential(swapped, 4)
        .expect("thread count is non-zero");
    for (round, &event) in tail.iter().enumerate() {
        assert_eq!(
            reference.run_event(event),
            swapped.run_event(event),
            "post-swap round {round}"
        );
        assert_eq!(reference.trust_snapshot(), swapped.trust_snapshot());
    }
    assert_eq!(reference.counters(), swapped.counters());
}
