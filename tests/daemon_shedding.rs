//! Deterministic load-shedding: same seed + same overload profile ⇒
//! identical shed set and identical final decisions, at any queue
//! capacity at or above the tick budget, across both engines.
//!
//! The shed set must be a pure function of `(seed, stream)` — never of
//! queue sizing, engine flavor, or scheduling — because crash-resume
//! byte-identity depends on re-deriving it exactly.

use std::io::Cursor;
use std::path::PathBuf;

use tibfit_daemon::queue::QueuePolicy;
use tibfit_daemon::{Daemon, DaemonConfig, DaemonReport, EngineKind};
use tibfit_experiments::replay::{tenant_seed, FieldScenario};

fn small_scenario(seed: u64) -> FieldScenario {
    FieldScenario {
        nodes: 16,
        clusters: 2,
        field: 40.0,
        faulty: 4,
        noise_sigma: 1.0,
        loss: 0.0,
        drift_sigma: 0.3,
        reelect_every: 4,
        seed,
    }
}

/// Overload replay: `per_tick` records per tenant per tick, stimuli
/// drawn from each tenant's scenario event stream.
fn overload_replay(tenants: usize, master: u64, ticks: u64, per_tick: u64) -> String {
    let streams: Vec<Vec<_>> = (0..tenants)
        .map(|t| small_scenario(tenant_seed(master, t)).events((ticks * per_tick) as usize))
        .collect();
    let mut out = String::from("# overload replay\n");
    for time in 0..ticks {
        for (tenant, stream) in streams.iter().enumerate() {
            for k in 0..per_tick {
                let p = stream[(time * per_tick + k) as usize];
                let seq = time * per_tick + k + 1;
                out.push_str(&format!("R {tenant} {time} {tenant} {seq} {} {}\n", p.x, p.y));
            }
        }
        out.push_str("T\n");
    }
    out
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-shed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct RunOutput {
    report: DaemonReport,
    shed_logs: Vec<Vec<(u64, u64, u64)>>,
    decisions: Vec<String>,
}

fn run_daemon(
    tag: &str,
    engine: EngineKind,
    capacity: usize,
    budget: usize,
    master: u64,
    replay: &str,
) -> RunOutput {
    let dir = fresh_dir(tag);
    let mut cfg = DaemonConfig::standard(2, master, dir.clone());
    cfg.engine = engine;
    cfg.threads = 2;
    cfg.scenario = small_scenario;
    cfg.queue = QueuePolicy {
        capacity,
        tick_budget: budget,
        record_shed: true,
    };
    cfg.snapshot_every = 3;
    let mut daemon = Daemon::new(cfg).expect("daemon builds");
    let report = daemon.run(Cursor::new(replay.to_string())).expect("run succeeds");
    let shed_logs = (0..2).map(|t| daemon.shed_log_of(t)).collect();
    let decisions = (0..2)
        .map(|t| {
            std::fs::read_to_string(dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect();
    RunOutput {
        report,
        shed_logs,
        decisions,
    }
}

#[test]
fn shed_set_is_identical_across_queue_capacities() {
    let replay = overload_replay(2, 90, 12, 9);
    let budget = 3;
    let base = run_daemon("cap-base", EngineKind::Sequential, budget, budget, 90, &replay);
    // Overload is real: 9 offered, 3 admitted per tick.
    assert!(base.report.tenants[0].stats.shed_budget > 0);
    assert_eq!(
        base.report.tenants[0].stats.admitted,
        12 * budget as u64,
        "budget admits exactly its quota under sustained overload"
    );
    for (tag, cap) in [("cap-2x", 2 * budget), ("cap-8x", 8 * budget), ("cap-64", 64)] {
        let other = run_daemon(tag, EngineKind::Sequential, cap, budget, 90, &replay);
        assert_eq!(base.shed_logs, other.shed_logs, "shed set at capacity {cap}");
        assert_eq!(base.decisions, other.decisions, "decisions at capacity {cap}");
    }
}

#[test]
fn shed_set_is_identical_across_engines() {
    let replay = overload_replay(2, 91, 10, 7);
    let seq = run_daemon("eng-seq", EngineKind::Sequential, 8, 2, 91, &replay);
    let par = run_daemon("eng-par", EngineKind::Sharded, 8, 2, 91, &replay);
    assert_eq!(seq.shed_logs, par.shed_logs);
    assert_eq!(seq.decisions, par.decisions);
    assert!(!seq.decisions[0].is_empty());
}

#[test]
fn repeated_runs_are_bit_identical() {
    let replay = overload_replay(2, 92, 8, 5);
    let a = run_daemon("rep-a", EngineKind::Sequential, 4, 2, 92, &replay);
    let b = run_daemon("rep-b", EngineKind::Sequential, 4, 2, 92, &replay);
    assert_eq!(a.shed_logs, b.shed_logs);
    assert_eq!(a.decisions, b.decisions);
    // Everything except backpressure_waits (wall-clock dependent) is
    // deterministic.
    for (ta, tb) in a.report.tenants.iter().zip(&b.report.tenants) {
        assert_eq!(ta.applied, tb.applied);
        assert_eq!(ta.stats.offered, tb.stats.offered);
        assert_eq!(ta.stats.admitted, tb.stats.admitted);
        assert_eq!(ta.stats.shed_budget, tb.stats.shed_budget);
        assert_eq!(ta.stats.shed_overflow, tb.stats.shed_overflow);
        assert_eq!(ta.stats.duplicates, tb.stats.duplicates);
    }
}

#[test]
fn sustained_overload_stays_bounded_and_counted() {
    // 10× overload: budget 2, 20 records per tenant per tick.
    let replay = overload_replay(2, 93, 10, 20);
    let out = run_daemon("overload", EngineKind::Sequential, 4, 2, 93, &replay);
    let t0 = &out.report.tenants[0];
    assert_eq!(t0.stats.offered, 200);
    assert_eq!(t0.stats.admitted, 20);
    assert_eq!(t0.stats.shed_total(), 180);
    assert_eq!(
        t0.stats.offered,
        t0.stats.admitted + t0.stats.shed_total() + t0.stats.duplicates
    );
    // Every admitted record produced a decision line.
    assert_eq!(out.decisions[0].lines().count() as u64, t0.applied);
}

#[test]
fn duplicate_and_shed_replays_are_idempotent() {
    // Stream the same overloaded file twice in one run: every record
    // of the second pass — admitted or shed the first time — must be
    // dropped as a duplicate, leaving decisions identical to a single
    // pass.
    let replay = overload_replay(2, 94, 6, 5);
    let doubled = {
        let mut s = replay.clone();
        s.push_str(&replay);
        s
    };
    let once = run_daemon("idem-once", EngineKind::Sequential, 4, 2, 94, &replay);
    let twice = run_daemon("idem-twice", EngineKind::Sequential, 4, 2, 94, &doubled);
    assert_eq!(once.decisions, twice.decisions);
    assert_eq!(once.shed_logs[0], twice.shed_logs[0]);
    assert_eq!(
        twice.report.tenants[0].stats.duplicates,
        once.report.tenants[0].stats.offered
    );
}
