//! Crash-injection harness: kill the engine anywhere, resume from the
//! latest checkpoint, and the completed run must be byte-identical to a
//! run that was never interrupted — same declarations, same bit-exact
//! trust trajectories, same positions, same trace counters, and the
//! same rendered CSV, for the sequential engine and the sharded engine
//! at every tested thread count, including cross-engine restores
//! (snapshot under one engine, resume under the other).
//!
//! The kill round comes from `CrashPlan::seeded`, so every seed dies
//! somewhere different but reproducibly. Rounds completed after the
//! last checkpoint are lost in the crash and recomputed on resume;
//! determinism guarantees the recomputation is exact.

use std::fmt::Write as _;

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_experiments::checkpoint::{
    read_checkpoint, restore_sequential, restore_sharded, save_sequential, save_sharded,
    write_checkpoint,
};
use tibfit_experiments::multicluster::{
    grid_sites, MultiClusterConfig, MultiClusterSim, MultiRoundResult,
};
use tibfit_experiments::sharded::ShardedMultiCluster;
use tibfit_faults::CrashPlan;
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

/// A deployment recipe both engines are built from (the mobile scenario
/// from `differential_shards.rs`: drift, re-election, lossy channels).
#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    clusters: usize,
    field: f64,
    faulty: usize,
    noise_sigma: f64,
    loss: f64,
    drift_sigma: f64,
    reelect_every: u64,
    rounds: usize,
    seed: u64,
}

impl Scenario {
    fn mobile(seed: u64) -> Self {
        Scenario {
            nodes: 64,
            clusters: 4,
            field: 80.0,
            faulty: 16,
            noise_sigma: 1.6,
            loss: 0.005,
            drift_sigma: 0.6,
            reelect_every: 3,
            rounds: 12,
            seed,
        }
    }

    fn config(&self) -> MultiClusterConfig {
        MultiClusterConfig::paper().mobile(self.drift_sigma, self.reelect_every)
    }

    fn behaviors(&self) -> Vec<Box<dyn NodeBehavior + Send>> {
        let faulty = SimRng::seed_from(self.seed ^ 0xFA).choose_indices(self.nodes, self.faulty);
        (0..self.nodes)
            .map(|i| -> Box<dyn NodeBehavior + Send> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, self.noise_sigma))
                }
            })
            .collect()
    }

    fn sequential(&self) -> MultiClusterSim {
        MultiClusterSim::try_new(
            self.config(),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
        )
        .expect("scenario configs are valid")
    }

    fn sharded(&self, threads: usize) -> ShardedMultiCluster {
        ShardedMultiCluster::try_new(
            self.config(),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
            threads,
        )
        .expect("scenario configs are valid")
    }

    fn events(&self) -> Vec<Point> {
        let mut rng = SimRng::seed_from(self.seed ^ 0xE7);
        (0..self.rounds)
            .map(|_| {
                Point::new(
                    rng.uniform_range(0.0, self.field),
                    rng.uniform_range(0.0, self.field),
                )
            })
            .collect()
    }

    fn build(&self, engine: EngineKind) -> Engine {
        match engine {
            EngineKind::Sequential => Engine::Seq(Box::new(self.sequential())),
            EngineKind::Sharded(threads) => Engine::Par(Box::new(self.sharded(threads))),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Sequential,
    Sharded(usize),
}

/// Uniform driver over both engines so the crash harness is written once.
enum Engine {
    // Boxed: cache-line-aligned engine state makes the variants large.
    Seq(Box<MultiClusterSim>),
    Par(Box<ShardedMultiCluster>),
}

impl Engine {
    fn run_event(&mut self, event: Point) -> MultiRoundResult {
        match self {
            Engine::Seq(e) => e.run_event(event),
            Engine::Par(e) => e.run_event(event),
        }
    }

    fn save(&self) -> Vec<u8> {
        match self {
            Engine::Seq(e) => save_sequential(e).expect("scenario is checkpointable"),
            Engine::Par(e) => save_sharded(e).expect("barrier state is checkpointable"),
        }
    }

    fn restore(kind: EngineKind, blob: &[u8]) -> Engine {
        match kind {
            EngineKind::Sequential => {
                Engine::Seq(Box::new(restore_sequential(blob).expect("own blob restores")))
            }
            EngineKind::Sharded(threads) => {
                Engine::Par(Box::new(restore_sharded(blob, threads).expect("own blob restores")))
            }
        }
    }

    fn trust_snapshot(&self) -> Vec<u64> {
        match self {
            Engine::Seq(e) => e.trust_snapshot(),
            Engine::Par(e) => e.trust_snapshot(),
        }
    }

    fn position_snapshot(&self) -> Vec<(u64, u64)> {
        match self {
            Engine::Seq(e) => e.position_snapshot(),
            Engine::Par(e) => e.position_snapshot(),
        }
    }

    fn counters(&self) -> Vec<(String, u64)> {
        match self {
            Engine::Seq(e) => e.counters(),
            Engine::Par(e) => e.counters(),
        }
    }
}

/// One round, digested: event fingerprint, declared points (bit-exact),
/// declaring cluster indices.
type RoundDigest = (u64, Vec<(u64, u64)>, Vec<usize>);

/// Everything observable about a completed run, rendered for exact
/// comparison. `csv` is the per-round results table rendered to bytes
/// exactly as an experiment writer would emit it (bit-exact f64 via hex
/// bits, so equality really is byte equality, not print rounding).
#[derive(Debug, PartialEq, Eq)]
struct RunOutput {
    results: Vec<RoundDigest>,
    trust: Vec<u64>,
    positions: Vec<(u64, u64)>,
    counters: Vec<(String, u64)>,
    csv: Vec<u8>,
}

fn digest(results: &[MultiRoundResult], engine: &Engine) -> RunOutput {
    let rows: Vec<_> = results
        .iter()
        .map(|r| {
            (
                r.event.x.to_bits() ^ r.event.y.to_bits(),
                r.declared
                    .iter()
                    .map(|d| (d.x.to_bits(), d.y.to_bits()))
                    .collect::<Vec<_>>(),
                r.declaring_clusters.clone(),
            )
        })
        .collect();
    let mut csv = String::from("round,event_x,event_y,declared,clusters\n");
    for (round, r) in results.iter().enumerate() {
        let clusters: Vec<String> = r.declaring_clusters.iter().map(usize::to_string).collect();
        let declared: Vec<String> = r
            .declared
            .iter()
            .map(|d| format!("{:016x}:{:016x}", d.x.to_bits(), d.y.to_bits()))
            .collect();
        writeln!(
            csv,
            "{round},{:016x},{:016x},{},{}",
            r.event.x.to_bits(),
            r.event.y.to_bits(),
            declared.join("|"),
            clusters.join("|"),
        )
        .expect("writing to a String cannot fail");
    }
    RunOutput {
        results: rows,
        trust: engine.trust_snapshot(),
        positions: engine.position_snapshot(),
        counters: engine.counters(),
        csv: csv.into_bytes(),
    }
}

/// The reference: run every event with no interruption.
fn uninterrupted(scenario: &Scenario, kind: EngineKind) -> RunOutput {
    let mut engine = scenario.build(kind);
    let results: Vec<_> = scenario
        .events()
        .iter()
        .map(|&e| engine.run_event(e))
        .collect();
    digest(&results, &engine)
}

/// The harness under test: checkpoint every `checkpoint_every` rounds,
/// kill the engine at the plan's round (discarding everything done since
/// the last checkpoint, exactly like a dead process), restore under
/// `resume_kind`, and run to completion.
///
/// If the crash lands before the first checkpoint there is nothing to
/// restore: the harness starts over from round zero, which is the
/// correct degenerate recovery.
fn crash_and_resume(
    scenario: &Scenario,
    kind: EngineKind,
    resume_kind: EngineKind,
    checkpoint_every: u64,
    plan: CrashPlan,
) -> RunOutput {
    let events = scenario.events();
    let mut engine = scenario.build(kind);
    let mut checkpoint: Option<(u64, Vec<u8>)> = None;
    let mut results: Vec<MultiRoundResult> = Vec::new();
    let mut crashed = false;

    for (round, &event) in events.iter().enumerate() {
        let completed = round as u64;
        if plan.kills_after(completed) {
            crashed = true;
            break;
        }
        results.push(engine.run_event(event));
        let done = completed + 1;
        if done.is_multiple_of(checkpoint_every) && (done as usize) < events.len() {
            checkpoint = Some((done, engine.save()));
        }
    }
    assert!(crashed, "plan must kill inside the horizon");

    // The process is dead: everything not checkpointed is gone.
    drop(engine);
    let (resume_round, mut engine) = match &checkpoint {
        Some((round, blob)) => (*round, Engine::restore(resume_kind, blob)),
        None => (0, scenario.build(resume_kind)),
    };
    results.truncate(resume_round as usize);
    for &event in &events[resume_round as usize..] {
        results.push(engine.run_event(event));
    }
    digest(&results, &engine)
}

fn assert_crash_resume_identical(seed: u64, kind: EngineKind, resume_kind: EngineKind) {
    let scenario = Scenario::mobile(seed);
    let plan = CrashPlan::seeded(seed, scenario.rounds as u64);
    let expected = uninterrupted(&scenario, resume_kind);
    let resumed = crash_and_resume(&scenario, kind, resume_kind, 3, plan);
    assert_eq!(
        expected, resumed,
        "kill-and-resume diverged: seed {seed} kill_round {} {kind:?} -> {resume_kind:?}",
        plan.kill_round
    );
}

#[test]
fn twenty_seeds_sequential_engine() {
    for seed in 0..20u64 {
        assert_crash_resume_identical(2000 + seed, EngineKind::Sequential, EngineKind::Sequential);
    }
}

#[test]
fn twenty_seeds_sharded_one_thread() {
    for seed in 0..20u64 {
        assert_crash_resume_identical(
            2100 + seed,
            EngineKind::Sharded(1),
            EngineKind::Sharded(1),
        );
    }
}

#[test]
fn twenty_seeds_sharded_four_threads() {
    for seed in 0..20u64 {
        assert_crash_resume_identical(
            2200 + seed,
            EngineKind::Sharded(4),
            EngineKind::Sharded(4),
        );
    }
}

#[test]
fn cross_engine_restore_sequential_to_sharded() {
    // Snapshot under the sequential engine, crash, resume sharded — the
    // shared blob format makes the direction irrelevant.
    for seed in 0..20u64 {
        assert_crash_resume_identical(
            2300 + seed,
            EngineKind::Sequential,
            EngineKind::Sharded(4),
        );
    }
}

#[test]
fn cross_engine_restore_sharded_to_sequential() {
    for seed in 0..10u64 {
        assert_crash_resume_identical(
            2400 + seed,
            EngineKind::Sharded(4),
            EngineKind::Sequential,
        );
    }
}

#[test]
fn every_kill_round_is_recoverable() {
    // Not just the seeded rounds: kill after every single round of one
    // scenario (checkpoints at 1 with every round a boundary) and the
    // resume must always complete identically.
    let scenario = Scenario::mobile(4242);
    for engine in [EngineKind::Sequential, EngineKind::Sharded(2)] {
        let expected = uninterrupted(&scenario, engine);
        for kill in 1..scenario.rounds as u64 {
            let resumed =
                crash_and_resume(&scenario, engine, engine, 1, CrashPlan::at(kill));
            assert_eq!(expected, resumed, "kill at {kill} diverged under {engine:?}");
        }
    }
}

/// Two-seed smoke variant for the CI crash-resume job, going through the
/// real file path: checkpoints land on disk via `write_checkpoint` and
/// the resume reads them back with `read_checkpoint`.
#[test]
fn smoke_two_seeds_through_files() {
    let dir = std::env::temp_dir().join(format!("tibfit-crash-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    for seed in [7u64, 8u64] {
        let scenario = Scenario::mobile(seed);
        let events = scenario.events();
        let plan = CrashPlan::seeded(seed, scenario.rounds as u64);
        let path = dir.join(format!("smoke-{seed}.tbsn"));

        let expected = uninterrupted(&scenario, EngineKind::Sharded(2));

        let mut engine = scenario.build(EngineKind::Sharded(2));
        let mut saved_round = 0u64;
        let mut results = Vec::new();
        for (round, &event) in events.iter().enumerate() {
            if plan.kills_after(round as u64) {
                break;
            }
            results.push(engine.run_event(event));
            let done = round as u64 + 1;
            if done.is_multiple_of(2) {
                write_checkpoint(&path, &engine.save()).expect("checkpoint write succeeds");
                saved_round = done;
            }
        }
        drop(engine);

        let mut engine = if saved_round > 0 {
            let blob = read_checkpoint(&path).expect("checkpoint reads back");
            Engine::restore(EngineKind::Sharded(2), &blob)
        } else {
            scenario.build(EngineKind::Sharded(2))
        };
        results.truncate(saved_round as usize);
        for &event in &events[saved_round as usize..] {
            results.push(engine.run_event(event));
        }
        assert_eq!(expected, digest(&results, &engine), "smoke seed {seed}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Nightly differential variant: the sharded engine runs with a
/// checkpoint/restore cycle injected mid-run at every thread count and
/// must stay in lockstep with an uninterrupted sequential reference.
#[test]
fn differential_with_mid_run_checkpoint() {
    for seed in 0..5u64 {
        let scenario = Scenario::mobile(6000 + seed);
        let events = scenario.events();
        let expected = uninterrupted(&scenario, EngineKind::Sequential);
        for threads in [1, 2, 4, 8] {
            let half = events.len() / 2;
            let mut par = scenario.sharded(threads);
            let mut results: Vec<_> =
                events[..half].iter().map(|&e| par.run_event(e)).collect();
            // Round-trip through bytes mid-run, then keep going.
            let blob = save_sharded(&par).expect("barrier state is checkpointable");
            drop(par);
            let mut par = restore_sharded(&blob, threads).expect("own blob restores");
            results.extend(events[half..].iter().map(|&e| par.run_event(e)));
            let got = digest(&results, &Engine::Par(Box::new(par)));
            assert_eq!(
                expected, got,
                "mid-run checkpoint diverged: seed {seed} threads {threads}"
            );
        }
    }
}
