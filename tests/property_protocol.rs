//! Property tests for the protocol's recovery machinery, driven by
//! seeded randomized inputs rather than hand-picked examples:
//!
//! * the quarantine → probation → reintegration schedule in
//!   `tibfit_core::trust` (legal transitions only, no double
//!   reintegration, probationary trust pinned to the isolation
//!   threshold),
//! * shadow-CH failover trust re-sync in `tibfit_core::lifecycle` (a
//!   table wipe plus re-sync can never leave a node with more trust than
//!   the last authoritative pre-crash snapshot),
//! * the concurrent-event collector under randomized submit/poll
//!   interleavings (conservation: nothing lost, nothing duplicated),
//! * the chunked parallel sweep harness under every worker count (this
//!   doubles as the ThreadSanitizer target for the nightly CI job).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use tibfit_core::concurrent::ConcurrentCollector;
use tibfit_core::lifecycle::{ClusterLifecycle, LifecycleConfig};
use tibfit_core::location::LocatedReport;
use tibfit_core::trust::{NodeStatus, TrustParams, TrustTable};
use tibfit_experiments::harness::{run_parallel_threads, trial_seeds};
use tibfit_net::geometry::Point;
use tibfit_net::message::ControlMessage;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;
use tibfit_sim::{Duration, SimTime};

const THRESHOLD: f64 = 0.5;
const QUARANTINE_ROUNDS: u64 = 3;
const PROBATION_ROUNDS: u64 = 4;

fn recovery_table(n: usize) -> TrustTable {
    TrustTable::new(TrustParams::experiment2(), n)
        .with_isolation_threshold(THRESHOLD)
        .with_reintegration(QUARANTINE_ROUNDS, PROBATION_ROUNDS)
}

/// Checks one judgement-phase transition (judgements never advance the
/// schedule; they can only start or restart a quarantine).
fn check_judgement_transition(node: usize, before: NodeStatus, after: NodeStatus) {
    let legal = match (before, after) {
        (NodeStatus::Active, NodeStatus::Active) => true,
        (NodeStatus::Active, NodeStatus::Quarantined { remaining }) => {
            remaining == QUARANTINE_ROUNDS
        }
        (NodeStatus::Probation { .. }, NodeStatus::Quarantined { remaining }) => {
            remaining == QUARANTINE_ROUNDS
        }
        (
            NodeStatus::Probation { remaining: a },
            NodeStatus::Probation { remaining: b },
        ) => a == b,
        (
            NodeStatus::Quarantined { remaining: a },
            NodeStatus::Quarantined { remaining: b },
        ) => {
            // Unjudged in this phase — a quarantined node does not vote,
            // so its sentence never restarts here.
            a == b
        }
        _ => false,
    };
    assert!(
        legal,
        "illegal judgement-phase transition for node {node}: {before:?} -> {after:?}"
    );
}

/// Checks one tick-phase transition (ticks only advance the schedule).
fn check_tick_transition(node: usize, before: NodeStatus, after: NodeStatus) {
    let legal = match (before, after) {
        (NodeStatus::Active, NodeStatus::Active) => true,
        (
            NodeStatus::Quarantined { remaining },
            NodeStatus::Quarantined { remaining: left },
        ) => remaining > 1 && left == remaining - 1,
        (
            NodeStatus::Quarantined { remaining },
            NodeStatus::Probation { remaining: left },
        ) => remaining <= 1 && left == PROBATION_ROUNDS,
        (
            NodeStatus::Probation { remaining },
            NodeStatus::Probation { remaining: left },
        ) => remaining > 1 && left == remaining - 1,
        (NodeStatus::Probation { remaining }, NodeStatus::Active) => remaining <= 1,
        _ => false,
    };
    assert!(
        legal,
        "illegal tick-phase transition for node {node}: {before:?} -> {after:?}"
    );
}

#[test]
fn quarantine_schedule_properties_hold_under_random_streams() {
    const NODES: usize = 12;
    const ROUNDS: usize = 60;
    for seed in trial_seeds(0xC0FFEE, 20) {
        let mut rng = SimRng::seed_from(seed);
        let mut table = recovery_table(NODES);
        // Per-node chance of a faulty judgement: a mix of reliable,
        // flaky, and hostile nodes.
        let fault_p: Vec<f64> = (0..NODES).map(|_| rng.uniform_range(0.0, 0.6)).collect();
        let mut quarantine_entries = [0u32; NODES];
        let mut reintegrations = [0u32; NODES];

        for _ in 0..ROUNDS {
            // Judgement phase: only voting (non-quarantined) nodes are
            // judged, like the aggregator does.
            for i in 0..NODES {
                let id = NodeId(i);
                let before = table.status_of(id);
                if matches!(before, NodeStatus::Quarantined { .. }) {
                    continue;
                }
                if rng.uniform_range(0.0, 1.0) < fault_p[i] {
                    table.record_faulty(id);
                } else {
                    table.record_correct(id);
                }
                let after = table.status_of(id);
                check_judgement_transition(i, before, after);
                if !matches!(before, NodeStatus::Quarantined { .. })
                    && matches!(after, NodeStatus::Quarantined { .. })
                {
                    quarantine_entries[i] += 1;
                }
            }

            // Tick phase.
            let before: Vec<NodeStatus> = (0..NODES).map(|i| table.status_of(NodeId(i))).collect();
            let reintegrated = table.tick_round();
            for (i, &was) in before.iter().enumerate() {
                let after = table.status_of(NodeId(i));
                check_tick_transition(i, was, after);
                if matches!(was, NodeStatus::Quarantined { remaining } if remaining <= 1) {
                    // Quarantine → probation resets trust to exactly the
                    // isolation threshold: trusted enough to vote, one
                    // relapse from re-quarantine.
                    let ti = table.trust_of(NodeId(i));
                    assert!(
                        (ti - THRESHOLD).abs() < 1e-12,
                        "probationary trust {ti} != threshold {THRESHOLD} for node {i}"
                    );
                }
            }

            // Reintegration list properties: only nodes finishing
            // probation, each at most once per tick.
            let mut seen = std::collections::HashSet::new();
            for &id in &reintegrated {
                assert!(seen.insert(id), "node {id:?} reintegrated twice in one tick");
                assert!(
                    matches!(before[id.index()], NodeStatus::Probation { remaining } if remaining <= 1),
                    "node {id:?} reintegrated without finishing probation: {:?}",
                    before[id.index()]
                );
                reintegrations[id.index()] += 1;
            }
        }

        // No double reintegration: each completed recovery requires its
        // own quarantine sentence first.
        for i in 0..NODES {
            assert!(
                reintegrations[i] <= quarantine_entries[i],
                "node {i}: {} reintegrations but only {} quarantine entries",
                reintegrations[i],
                quarantine_entries[i]
            );
        }
    }
}

#[test]
fn probation_starts_at_isolation_threshold_exactly() {
    let mut table = recovery_table(2);
    let id = NodeId(0);
    while !matches!(table.status_of(id), NodeStatus::Quarantined { .. }) {
        table.record_faulty(id);
    }
    for _ in 0..QUARANTINE_ROUNDS {
        table.tick_round();
    }
    assert!(matches!(table.status_of(id), NodeStatus::Probation { .. }));
    assert!((table.trust_of(id) - THRESHOLD).abs() < 1e-12);
    // An untouched node is unaffected by the other's schedule.
    assert_eq!(table.trust_of(NodeId(1)), 1.0);
}

#[test]
fn reintegrated_node_needs_a_fresh_quarantine_to_reappear() {
    let mut table = recovery_table(1);
    let id = NodeId(0);
    while !matches!(table.status_of(id), NodeStatus::Quarantined { .. }) {
        table.record_faulty(id);
    }
    let mut reintegrated_total = 0;
    for _ in 0..QUARANTINE_ROUNDS + PROBATION_ROUNDS {
        reintegrated_total += table.tick_round().len();
    }
    assert_eq!(reintegrated_total, 1);
    assert_eq!(table.status_of(id), NodeStatus::Active);
    // Dozens more ticks while behaving: never reported again.
    for _ in 0..50 {
        table.record_correct(id);
        assert!(table.tick_round().is_empty(), "double reintegration");
    }
}

/// Builds `n` reports for an event at `event`: honest reporters place it
/// accurately, nodes in `liars` displace it far outside `r_error`.
fn round_reports(topo: &Topology, event: Point, r_s: f64, liars: &[usize]) -> Vec<LocatedReport> {
    topo.event_neighbors(event, r_s)
        .into_iter()
        .map(|n| {
            if liars.contains(&n.index()) {
                // Each liar invents its own far-off location, so no two
                // liars corroborate each other's circle.
                let off = 30.0 + n.index() as f64 * 15.0;
                LocatedReport::new(n, Point::new(event.x + off, event.y - off))
            } else {
                LocatedReport::new(n, event)
            }
        })
        .collect()
}

#[test]
fn failover_resync_never_raises_trust_above_precrash_snapshot() {
    let topo = Topology::uniform_grid(25, 50.0, 50.0);
    let config = LifecycleConfig::paper();
    let r_s = config.sensing_radius;
    let mut cluster = ClusterLifecycle::new(config, topo);
    let mut rng = SimRng::seed_from(0x5EED);
    // All three lie and all three sense the event (grid nodes within
    // r_s of the field center).
    let liars = [7usize, 12, 17];
    let event = Point::new(25.0, 25.0);

    // Run past a leadership period so the outgoing head hands the trust
    // table to the base station — the authoritative snapshot.
    for _ in 0..12 {
        let reports = round_reports(cluster.topology(), event, r_s, &liars);
        cluster.process_event_round(&reports, false, &mut rng);
    }
    assert!(!cluster.handoffs().is_empty(), "period rollover must hand off");
    let ControlMessage::TrustHandoff { trust, .. } =
        cluster.handoffs().last().expect("non-empty").clone()
    else {
        panic!("last control message is not a trust handoff");
    };
    let snapshot: HashMap<NodeId, f64> = trust.into_iter().collect();

    // More rounds, then the acting head crashes and a shadow takes over.
    for _ in 0..3 {
        let reports = round_reports(cluster.topology(), event, r_s, &liars);
        cluster.process_event_round(&reports, false, &mut rng);
    }
    let crashed_head = cluster.current_head(&mut rng);
    cluster.crash_node(crashed_head);
    let new_head = cluster.fail_over(&mut rng);
    assert_ne!(new_head, crashed_head);
    assert_eq!(cluster.failover_count(), 1);

    // Worst case: the promoted head comes up with a blank table (all
    // full trust) — then recovers it from the base station's snapshot.
    cluster.lose_trust_table();
    for &liar in &liars {
        assert_eq!(
            cluster.trust_of(NodeId(liar)),
            1.0,
            "table wipe grants full trust — the state re-sync must undo"
        );
    }
    assert!(cluster.resync_trust_from_handoff());

    // Property: re-sync can never leave a node with MORE trust than the
    // pre-crash authoritative snapshot said it had. (It may have less:
    // the snapshot is the floor of knowledge, not a reward.)
    for i in 0..25 {
        let id = NodeId(i);
        let restored = cluster.trust_of(id);
        let authoritative = snapshot.get(&id).copied().unwrap_or(1.0);
        assert!(
            restored <= authoritative + 1e-12,
            "node {i}: re-synced trust {restored} exceeds pre-crash snapshot {authoritative}"
        );
    }
    // And the liars are pinned well below full trust again.
    for &liar in &liars {
        assert!(cluster.trust_of(NodeId(liar)) < 0.9);
    }
}

#[test]
fn collector_conserves_reports_under_random_interleavings() {
    for seed in trial_seeds(0xAB5EED, 25) {
        let mut rng = SimRng::seed_from(seed);
        let mut col = ConcurrentCollector::new(5.0, Duration::from_ticks(40));
        let mut now = SimTime::ZERO;
        let mut submitted = 0usize;
        let mut emitted = 0usize;
        let n_ops = 60 + rng.uniform_usize(60);
        for op in 0..n_ops {
            now += Duration::from_ticks(1 + rng.uniform_usize(25) as u64);
            if rng.uniform_usize(3) < 2 {
                // Cluster events around a few hotspots so some circles
                // absorb multiple reports and others stay singletons.
                let hot = rng.uniform_usize(4) as f64 * 40.0;
                let p = Point::new(
                    hot + rng.uniform_range(0.0, 8.0),
                    hot + rng.uniform_range(0.0, 8.0),
                );
                col.submit(now, LocatedReport::new(NodeId(op % 16), p));
                submitted += 1;
            } else {
                for group in col.poll(now) {
                    assert!(!group.is_empty(), "poll emitted an empty group");
                    emitted += group.len();
                }
            }
            assert_eq!(
                emitted + col.pending_reports(),
                submitted,
                "conservation violated mid-stream (seed {seed})"
            );
        }
        for group in col.flush() {
            assert!(!group.is_empty());
            emitted += group.len();
        }
        assert_eq!(emitted, submitted, "flush lost or duplicated reports");
        assert_eq!(col.pending_reports(), 0);
        assert_eq!(col.open_circles(), 0);
    }
}

#[test]
fn parallel_harness_processes_each_item_exactly_once_at_every_width() {
    // The nightly TSan job runs this under `-Z sanitizer=thread`: the
    // chunk hand-off and result reassembly are the only lock-touching
    // paths in the harness.
    for seed in trial_seeds(0x7A5C, 6) {
        let n = 64 + (seed % 1000) as usize;
        let items: Vec<u64> = (0..n as u64).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
        for workers in 1..=8 {
            let touched = AtomicUsize::new(0);
            let out = run_parallel_threads(items.clone(), workers, |x| {
                touched.fetch_add(1, Ordering::Relaxed);
                x.wrapping_mul(31) ^ 7
            })
            .expect("non-zero worker count");
            assert_eq!(out, expected, "workers={workers} n={n}");
            assert_eq!(touched.load(Ordering::Relaxed), n, "workers={workers}");
        }
    }
}
