//! End-to-end tests of the fault-injection layer (Experiment 5): replay
//! determinism, the shadow-CH failover acceptance bar, and the recovery
//! counters surviving all the way into the rendered trace.

use tibfit_experiments::exp5_chaos::{run_exp5, Exp5Config};
use tibfit_faults::{FaultKind, FaultPlan, ScheduledFault};
use tibfit_sim::{Duration, SimTime};

fn quick(recovery: bool) -> Exp5Config {
    let mut config = Exp5Config::default_scale(recovery);
    config.events = 150;
    config
}

#[test]
fn same_seed_and_plan_render_byte_identical_traces() {
    // The tentpole property: a chaos run is a pure function of
    // (config, plan, seed) — replay is byte-for-byte.
    let config = quick(true);
    for intensity in [0.0, 0.3, 0.7, 1.0] {
        let plan = FaultPlan::random(intensity, 99, config.horizon(), config.n_nodes).unwrap();
        let a = run_exp5(&config, &plan, 99);
        let b = run_exp5(&config, &plan, 99);
        assert_eq!(
            a.trace.render(),
            b.trace.render(),
            "replay diverged at intensity {intensity}"
        );
        assert_eq!(a.outcome, b.outcome);
    }
}

#[test]
fn plan_fingerprint_pins_the_schedule() {
    let config = quick(true);
    let p1 = FaultPlan::random(0.5, 1, config.horizon(), config.n_nodes).unwrap();
    let p2 = FaultPlan::random(0.5, 1, config.horizon(), config.n_nodes).unwrap();
    assert_eq!(p1.fingerprint(), p2.fingerprint());
    // And a different schedule produces a different run.
    let p3 = FaultPlan::random(0.5, 2, config.horizon(), config.n_nodes).unwrap();
    assert_ne!(p1.fingerprint(), p3.fingerprint());
    let a = run_exp5(&config, &p1, 5);
    let c = run_exp5(&config, &p3, 5);
    assert_ne!(a.trace.render(), c.trace.render());
}

#[test]
fn ch_crash_with_failover_recovers_within_5pct_of_fault_free() {
    // Acceptance bar from the issue: a CH crash handled by shadow-CH
    // failover must cost less than five accuracy points against the
    // fault-free baseline with the same seed.
    let config = quick(true);
    for seed in [3u64, 17, 29] {
        let baseline = run_exp5(&config, &FaultPlan::none(), seed);
        let plan = FaultPlan::from_faults(vec![
            ScheduledFault {
                at: SimTime::from_ticks(2_500),
                kind: FaultKind::ChCrash,
            },
            ScheduledFault {
                at: SimTime::from_ticks(6_500),
                kind: FaultKind::ChCrash,
            },
            ScheduledFault {
                at: SimTime::from_ticks(11_000),
                kind: FaultKind::ChCrash,
            },
        ])
        .unwrap();
        let crashed = run_exp5(&config, &plan, seed);
        assert_eq!(crashed.outcome.failovers, 3, "seed {seed}");
        assert!(
            baseline.outcome.accuracy - crashed.outcome.accuracy < 0.05,
            "seed {seed}: baseline {} vs crashed {}",
            baseline.outcome.accuracy,
            crashed.outcome.accuracy
        );
    }
}

#[test]
fn recovery_counters_survive_into_the_rendered_trace() {
    let config = quick(true);
    let plan = FaultPlan::random(1.0, 7, config.horizon(), config.n_nodes).unwrap();
    let run = run_exp5(&config, &plan, 7);
    assert!(run.trace.counter("fault.injected") > 0);
    assert!(run.trace.counter("retry.count") > 0);
    let counters: Vec<&str> = run.trace.counters().into_iter().map(|(n, _)| n).collect();
    for required in ["fault.injected", "failover.count", "retry.count"] {
        assert!(counters.contains(&required), "missing counter {required}");
    }
    let rendered = run.trace.render();
    assert!(rendered.contains("fault:"), "no fault events rendered");
}

#[test]
fn quarantine_reintegration_fires_under_crash_reboot_churn() {
    // Crash-and-reboot a handful of nodes; their post-reboot flakiness
    // drives them into quarantine, and with recovery on they must earn
    // their way back (the quarantine.reintegrated counter).
    let config = quick(true);
    let faults: Vec<ScheduledFault> = (0..5)
        .map(|i| ScheduledFault {
            at: SimTime::from_ticks(1_000 + i * 1_500),
            kind: FaultKind::NodeCrash {
                node: tibfit_net::topology::NodeId((i as usize) * 3 + 1),
                reboot_after: Some(Duration::from_ticks(300)),
            },
        })
        .collect();
    let plan = FaultPlan::from_faults(faults).unwrap();
    let run = run_exp5(&config, &plan, 13);
    assert!(
        run.outcome.reintegrated > 0,
        "no node ever completed probation (trace: {:?})",
        run.trace.counters()
    );
    assert_eq!(
        run.trace.counter("quarantine.reintegrated"),
        run.outcome.reintegrated
    );
    // Reintegrated nodes keep the run healthy.
    assert!(run.outcome.accuracy > 0.85, "accuracy {}", run.outcome.accuracy);
}

#[test]
fn burst_loss_is_survivable_with_retries() {
    // A long loss burst with retransmission on vs off, same plan.
    let plan = FaultPlan::from_faults(vec![ScheduledFault {
        at: SimTime::from_ticks(3_000),
        kind: FaultKind::BurstLoss {
            duration: Duration::from_ticks(3_000),
        },
    }])
    .unwrap();
    let with = run_exp5(&quick(true), &plan, 19);
    let without = run_exp5(&quick(false), &plan, 19);
    assert!(with.outcome.retries > 0);
    assert_eq!(without.outcome.retries, 0);
    assert!(
        with.outcome.accuracy >= without.outcome.accuracy,
        "retries should not hurt: {} vs {}",
        with.outcome.accuracy,
        without.outcome.accuracy
    );
}
