//! End-to-end integration tests for the location model (paper §3.2–3.3 +
//! Experiment 2): clustering, trust-weighted location votes, concurrent
//! events, and all three adversary levels.

use tibfit_experiments::exp1::EngineKind;
use tibfit_experiments::exp2::{run_exp2, Exp2Config, FaultLevel};
use tibfit_experiments::harness::trial_seeds;

fn mean_accuracy(config: &Exp2Config, pct: f64, trials: usize, base: u64) -> f64 {
    let sum: f64 = trial_seeds(base, trials)
        .into_iter()
        .map(|seed| run_exp2(config, pct, seed).accuracy)
        .sum();
    sum / trials as f64
}

fn fast(mut c: Exp2Config) -> Exp2Config {
    c.events = 200;
    c
}

#[test]
fn paper_claim_tibfit_beats_baseline_by_7_points_past_40pct() {
    // Figure 4: "after 40% of the network is compromised, the TIBFIT
    // model performs better than the baseline model by at least 7%".
    let trials = 3;
    for pct in [50.0, 58.0] {
        let t = mean_accuracy(
            &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit)),
            pct,
            trials,
            1,
        );
        let b = mean_accuracy(
            &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Baseline)),
            pct,
            trials,
            1,
        );
        assert!(t - b >= 0.07, "pct {pct}: TIBFIT {t} vs baseline {b}");
    }
}

#[test]
fn paper_claim_similar_performance_at_low_compromise() {
    // Figure 4: "at low percentages of the network compromised, the
    // TIBFIT system and the baseline system perform similarly."
    let trials = 3;
    let t = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit)),
        10.0,
        trials,
        2,
    );
    let b = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Baseline)),
        10.0,
        trials,
        2,
    );
    assert!((t - b).abs() < 0.1, "TIBFIT {t} vs baseline {b}");
}

#[test]
fn paper_claim_level1_tibfit_above_90pct_at_58pct() {
    // Figure 5: "even with 58% of the network compromised, TIBFIT's
    // accuracy remains over 90%."
    let trials = 3;
    for &(cs, fs) in &[(1.6, 4.25), (2.0, 6.0)] {
        let t = mean_accuracy(
            &fast(Exp2Config::paper(cs, fs, FaultLevel::Level1, EngineKind::Tibfit)),
            58.0,
            trials,
            5,
        );
        assert!(t > 0.85, "σ {cs}-{fs}: level-1 TIBFIT accuracy {t}");
    }
}

#[test]
fn paper_claim_level1_baseline_degrades_past_40pct() {
    // Figure 5: "the baseline model falls well below that level once the
    // network reaches 40% malicious nodes."
    let trials = 3;
    let b = mean_accuracy(
        &fast(Exp2Config::paper(2.0, 6.0, FaultLevel::Level1, EngineKind::Baseline)),
        58.0,
        trials,
        4,
    );
    assert!(b < 0.8, "baseline vs relentless level-1 should degrade: {b}");
}

#[test]
fn paper_claim_level2_dramatic_but_tibfit_still_ahead() {
    // Figure 6: colluders "dramatically reduce the accuracy of the
    // network, although the TIBFIT still outperforms the baseline model."
    // Individual level-2 runs are bimodal (either the gang locks in an
    // early trust advantage or it never does), so this claim only holds
    // in the mean — use a wide trial set.
    let trials = 12;
    let t58 = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level2, EngineKind::Tibfit)),
        58.0,
        trials,
        5,
    );
    let b58 = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level2, EngineKind::Baseline)),
        58.0,
        trials,
        5,
    );
    let t58_l0 = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit)),
        58.0,
        trials,
        5,
    );
    assert!(t58 < t58_l0, "level 2 ({t58}) should hurt more than level 0 ({t58_l0})");
    assert!(t58 >= b58, "TIBFIT {t58} should stay ahead of baseline {b58}");
}

#[test]
fn paper_claim_concurrent_events_do_not_hurt() {
    // Figure 7: "tolerating concurrent events does not significantly
    // alter the success of the nodes in accurate detection of events."
    let trials = 3;
    for pct in [20.0, 40.0] {
        let single = mean_accuracy(
            &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit)),
            pct,
            trials,
            6,
        );
        let mut cc = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit));
        cc.concurrent_events = true;
        let concurrent = mean_accuracy(&cc, pct, trials, 6);
        assert!(
            (single - concurrent).abs() < 0.1,
            "pct {pct}: single {single} vs concurrent {concurrent}"
        );
    }
}

#[test]
fn accuracy_declines_with_compromise_for_level0() {
    let trials = 2;
    let config = fast(Exp2Config::paper(2.0, 6.0, FaultLevel::Level0, EngineKind::Tibfit));
    let lo = mean_accuracy(&config, 10.0, trials, 7);
    let hi = mean_accuracy(&config, 58.0, trials, 7);
    assert!(lo > hi, "10%: {lo} should exceed 58%: {hi}");
}

#[test]
fn wider_faulty_sigma_hurts_baseline_more() {
    let trials = 2;
    let tight = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Baseline)),
        50.0,
        trials,
        8,
    );
    let wide = mean_accuracy(
        &fast(Exp2Config::paper(1.6, 6.0, FaultLevel::Level0, EngineKind::Baseline)),
        50.0,
        trials,
        8,
    );
    // σ = 6 faulty nodes err ~70% of the time vs ~50% at σ = 4.25: the
    // baseline should do no better with the stronger noise.
    assert!(wide <= tight + 0.05, "tight {tight} vs wide {wide}");
}

#[test]
fn scales_to_a_400_node_network() {
    // 4× the paper's network on a 200×200 field: same protocol, same
    // qualitative behaviour, no quadratic blow-ups in practice.
    let mut config = Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit);
    config.n_nodes = 400;
    config.field = 200.0;
    config.events = 100;
    let out = run_exp2(&config, 40.0, 3);
    assert!(out.accuracy > 0.85, "400-node accuracy {}", out.accuracy);
}

#[test]
fn false_positive_rate_is_low_for_tibfit() {
    let config = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit));
    let out = run_exp2(&config, 40.0, 99);
    assert!(
        out.false_positives_per_round < 0.5,
        "false positives per round: {}",
        out.false_positives_per_round
    );
}
