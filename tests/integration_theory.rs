//! Cross-validation of the extended theoretical model
//! (`tibfit_analysis::trajectory`) against the simulated components it
//! describes.

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{Level0Config, Level1Node};
use tibfit_analysis::trajectory::{
    expected_ti_after, hysteresis_duty_cycle, reports_until_diagnosis,
};
use tibfit_core::trust::{Judgement, TrustParams, TrustTable};
use tibfit_net::geometry::Point;
use tibfit_net::topology::NodeId;
use tibfit_sim::rng::SimRng;

#[test]
fn duty_cycle_matches_simulated_level1_node() {
    // Drive a Level1Node with the feedback a fully-effective TIBFIT
    // cluster gives (lying ⇒ judged faulty, honest ⇒ judged correct) and
    // compare the fraction of lying rounds with the closed form.
    let params = TrustParams::experiment2(); // λ = 0.25, f_r = 0.1
    let mut node = Level1Node::with_paper_thresholds(
        Level0Config {
            missed_alarm: 1.0, // lying phase = always miss (observable)
            false_alarm: 0.0,
            loc_sigma: 6.0,
            drop_prob: 0.0,
        },
        0.0,
        params,
    );
    let mut rng = SimRng::seed_from(3);
    let ctx = tibfit_adversary::RoundContext {
        round: 0,
        node: NodeId(0),
        node_pos: Point::new(50.0, 50.0),
        event: Some(Point::new(50.0, 50.0)),
        is_event_neighbor: true,
    };
    let rounds = 20_000u64;
    let mut lying_rounds = 0u64;
    for _ in 0..rounds {
        let reported = node.binary_action(&ctx, &mut rng);
        // Reporting the event is honest behaviour; missing it is a lie.
        if reported {
            node.observe_judgement(Judgement::Correct);
        } else {
            lying_rounds += 1;
            node.observe_judgement(Judgement::Faulty);
        }
    }
    let simulated_duty = lying_rounds as f64 / rounds as f64;
    let theory = hysteresis_duty_cycle(params.lambda, params.fault_rate, 0.5, 0.8, 1.0);
    assert!(
        (simulated_duty - theory.duty).abs() < 0.03,
        "simulated duty {simulated_duty} vs theoretical {}",
        theory.duty
    );
}

#[test]
fn mean_field_ti_tracks_stochastic_table() {
    // A node erring at 40% (vs f_r = 10%): the simulated TI after t
    // reports should track the mean-field curve.
    let params = TrustParams::experiment2();
    let error_rate = 0.4;
    let trials = 200;
    let t = 60u64;
    let mut mean_ti = 0.0;
    for seed in 0..trials {
        let mut table = TrustTable::new(params, 1);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..t {
            if rng.chance(error_rate) {
                table.record_faulty(NodeId(0));
            } else {
                table.record_correct(NodeId(0));
            }
        }
        mean_ti += table.trust_of(NodeId(0)) / trials as f64;
    }
    let theory = expected_ti_after(t, error_rate, params.lambda, params.fault_rate);
    // Jensen's inequality makes E[e^(−λv)] ≥ e^(−λE[v]); allow a band.
    assert!(
        (mean_ti - theory).abs() < 0.08,
        "simulated mean TI {mean_ti} vs mean-field {theory}"
    );
}

#[test]
fn diagnosis_time_brackets_simulated_isolation() {
    // The closed-form diagnosis time should bracket when an isolating
    // trust table actually expels a node erring at 60%.
    let params = TrustParams::experiment2();
    let threshold = 0.3;
    let error_rate = 0.6;
    let predicted = reports_until_diagnosis(threshold, error_rate, params.lambda, params.fault_rate)
        .expect("a 60% liar is diagnosable");
    let trials = 100;
    let mut mean_actual = 0.0;
    for seed in 100..100 + trials {
        let mut table = TrustTable::new(params, 1).with_isolation_threshold(threshold);
        let mut rng = SimRng::seed_from(seed);
        let mut t = 0u64;
        while !table.is_isolated(NodeId(0)) {
            if rng.chance(error_rate) {
                table.record_faulty(NodeId(0));
            } else {
                table.record_correct(NodeId(0));
            }
            t += 1;
            assert!(t < 10_000, "never isolated");
        }
        mean_actual += t as f64 / trials as f64;
    }
    let ratio = mean_actual / predicted as f64;
    assert!(
        (0.6..=1.6).contains(&ratio),
        "actual {mean_actual} vs predicted {predicted}"
    );
}

#[test]
fn duty_cycle_explains_figure5_gap() {
    // Figure 5 shows level-1 TIBFIT far above level-0 TIBFIT at equal
    // compromise. The duty factor quantifies why: a hysteresis adversary
    // is only lying ~10% of the time, so the *effective* faulty fraction
    // at 58% nominal compromise is ~6%.
    let theory = hysteresis_duty_cycle(0.25, 0.1, 0.5, 0.8, 1.0);
    let effective = 0.58 * theory.duty;
    assert!(
        effective < 0.10,
        "effective compromise {effective} should be far below the nominal 58%"
    );
}
