//! End-to-end integration tests for the binary event model (paper §3.1 +
//! Experiment 1), exercising the full stack: behaviors → channel →
//! engine → trust feedback.

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_core::engine::{Aggregator, BaselineEngine, TibfitEngine};
use tibfit_core::trust::TrustParams;
use tibfit_experiments::exp1::{run_exp1, EngineKind, Exp1Config};
use tibfit_experiments::network::{ClusterSim, ClusterSimConfig};
use tibfit_net::channel::{BernoulliLoss, Perfect};
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;

fn sim_with(
    n: usize,
    n_faulty: usize,
    fa: f64,
    ner: f64,
    engine: Box<dyn Aggregator>,
    seed: u64,
) -> ClusterSim {
    let topo = Topology::single_cluster(n, 5.0);
    let ch = Point::new(topo.width() / 2.0, topo.height() / 2.0);
    let behaviors: Vec<Box<dyn NodeBehavior>> = (0..n)
        .map(|i| -> Box<dyn NodeBehavior> {
            if i < n_faulty {
                Box::new(Level0Node::new(Level0Config {
                    missed_alarm: 0.5,
                    false_alarm: fa,
                    loc_sigma: 0.0,
                    drop_prob: 0.0,
                }))
            } else {
                Box::new(CorrectNode::new(ner, 0.0))
            }
        })
        .collect();
    ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            ch_position: ch,
        },
        topo,
        behaviors,
        Box::new(Perfect),
        engine,
        SimRng::seed_from(seed),
    )
}

#[test]
fn paper_claim_accuracy_above_85pct_at_70pct_faulty() {
    // Figure 2's headline: "the network can have 70% of its nodes
    // compromised and still maintain over 85% accuracy."
    for ner in [0.0, 0.01, 0.05] {
        let config = Exp1Config::paper_fig2(ner);
        let mut acc = 0.0;
        let trials = 5;
        for seed in tibfit_experiments::harness::trial_seeds(1, trials) {
            acc += run_exp1(&config, 70.0, seed).accuracy;
        }
        acc /= trials as f64;
        assert!(acc > 0.85, "NER {ner}: accuracy {acc}");
    }
}

#[test]
fn paper_claim_fa75_collapses_at_80pct() {
    // Figure 3: "At 80% faulty nodes with 75% false alarms, accuracy
    // falls dramatically"; FA=10% holds up much better there.
    let trials = 5;
    let mut fa75 = 0.0;
    let mut fa10 = 0.0;
    for seed in tibfit_experiments::harness::trial_seeds(2, trials) {
        fa75 += run_exp1(&Exp1Config::paper_fig3(0.75), 80.0, seed).accuracy;
        fa10 += run_exp1(&Exp1Config::paper_fig3(0.10), 80.0, seed).accuracy;
    }
    fa75 /= trials as f64;
    fa10 /= trials as f64;
    assert!(fa10 - fa75 > 0.2, "FA10 {fa10} vs FA75 {fa75}");
}

#[test]
fn paper_claim_occasional_false_alarms_help_at_high_compromise() {
    // Figure 3: "10% false alarms ... occasional false alarms lower
    // faulty nodes' trust indices enough to outperform 0% false alarms"
    // (at the 80-90% regime).
    let trials = 8;
    let mut fa10 = 0.0;
    let mut fa0 = 0.0;
    for seed in tibfit_experiments::harness::trial_seeds(3, trials) {
        fa10 += run_exp1(&Exp1Config::paper_fig3(0.10), 90.0, seed).accuracy;
        fa0 += run_exp1(&Exp1Config::paper_fig3(0.0), 90.0, seed).accuracy;
    }
    assert!(fa10 >= fa0, "FA10 {fa10} vs FA0 {fa0}");
}

#[test]
fn tibfit_dominates_baseline_across_sweep() {
    // TIBFIT ≥ baseline at every sweep point (averaged over trials).
    let trials = 4;
    for pct in [40.0, 50.0, 60.0, 70.0, 80.0] {
        let mut t = 0.0;
        let mut b = 0.0;
        for seed in tibfit_experiments::harness::trial_seeds(4, trials) {
            let tc = Exp1Config::paper_fig2(0.01);
            let bc = Exp1Config {
                engine: EngineKind::Baseline,
                ..tc
            };
            t += run_exp1(&tc, pct, seed).accuracy;
            b += run_exp1(&bc, pct, seed).accuracy;
        }
        assert!(t >= b - 0.02 * trials as f64, "pct {pct}: TIBFIT {t} vs baseline {b}");
    }
}

#[test]
fn diagnosis_isolates_only_faulty_nodes() {
    let params = TrustParams::experiment1(0.01);
    let engine = TibfitEngine::new(params, 10).with_isolation_threshold(0.05);
    let mut sim = sim_with(10, 4, 0.1, 0.01, Box::new(engine), 11);
    for _ in 0..200 {
        sim.run_binary_round(false);
        sim.run_binary_round(true);
    }
    let isolated = sim.isolated_nodes();
    for node in &isolated {
        assert!(node.index() < 4, "honest node {node} was isolated");
    }
    assert!(!isolated.is_empty(), "no faulty node was ever diagnosed");
}

#[test]
fn lossy_channel_tolerated_by_fr_calibration() {
    // With f_r = 0.05 covering for a 2% lossy channel, an all-honest
    // cluster keeps everyone's trust near 1 and full accuracy.
    let params = TrustParams::new(0.25, 0.05);
    let topo = Topology::single_cluster(10, 5.0);
    let ch = Point::new(topo.width() / 2.0, topo.height() / 2.0);
    let behaviors: Vec<Box<dyn NodeBehavior>> = (0..10)
        .map(|_| -> Box<dyn NodeBehavior> { Box::new(CorrectNode::new(0.0, 0.0)) })
        .collect();
    let mut sim = ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            ch_position: ch,
        },
        topo,
        behaviors,
        Box::new(BernoulliLoss::new(0.02)),
        Box::new(TibfitEngine::new(params, 10)),
        SimRng::seed_from(13),
    );
    let mut hits = 0;
    for _ in 0..200 {
        hits += u32::from(sim.run_binary_round(true).event_declared);
    }
    assert!(hits >= 198, "hits {hits}");
    // Individual trust takes a random walk (losses bump the counter,
    // successes drain it with a floor at zero), so allow transients on
    // single nodes but require the population to sit near full trust.
    let mut mean = 0.0;
    for i in 0..10 {
        let t = sim.trust_of(NodeId(i)).unwrap();
        assert!(t > 0.5, "node {i} trust {t} collapsed despite calibration");
        mean += t / 10.0;
    }
    assert!(mean > 0.85, "population mean trust {mean}");
}

#[test]
fn cross_engine_rounds_share_ground_truth() {
    // Two sims with identical seeds see identical reporter sets per
    // round, so engine comparisons are apples-to-apples.
    let mut a = sim_with(10, 5, 0.0, 0.01, Box::new(BaselineEngine::new()), 21);
    let mut b = sim_with(
        10,
        5,
        0.0,
        0.01,
        Box::new(TibfitEngine::new(TrustParams::experiment1(0.01), 10)),
        21,
    );
    for _ in 0..50 {
        let ra = a.run_binary_round(true);
        let rb = b.run_binary_round(true);
        assert_eq!(ra.reporters, rb.reporters);
    }
}
