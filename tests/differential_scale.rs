//! Differential coverage for the production-scale sharding machinery:
//! the batched cross-shard mailbox flush, the SoA trust accumulation,
//! and the lattice-accelerated nearest-site path must all be invisible
//! — the sharded engine stays bit-identical to the sequential reference
//! at every thread count, and snapshots taken through the new layout
//! restore into the old engine without a bit of drift.
//!
//! The scenarios here are shaped to stress exactly those paths: many
//! clusters (long mailbox runs per destination, complete site lattices),
//! heavy drift (re-election handoffs crossing shards every stretch),
//! and heavy fault fractions (quarantine transitions through the -0.0
//! participation sentinel in the SoA weight vector).

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_core::simd_kernel;
use tibfit_experiments::checkpoint::{
    restore_sequential, restore_sharded, save_sequential, save_sharded,
};
use tibfit_experiments::multicluster::{grid_sites, MultiClusterConfig, MultiClusterSim};
use tibfit_experiments::sharded::ShardedMultiCluster;
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

/// A deployment recipe both engines are built from.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: usize,
    clusters: usize,
    field: f64,
    faulty: usize,
    noise_sigma: f64,
    loss: f64,
    drift_sigma: f64,
    reelect_every: u64,
    rounds: usize,
    seed: u64,
}

impl Scenario {
    /// Nine clusters on a complete 3x3 site lattice (so both engines
    /// take the windowed nearest-site path), heavy drift so re-election
    /// handoffs cross shard boundaries every stretch — the workload
    /// that keeps the batched mailbox flush full of multi-envelope runs.
    fn mailbox_heavy(seed: u64) -> Self {
        Scenario {
            nodes: 144,
            clusters: 9,
            field: 120.0,
            faulty: 36,
            noise_sigma: 1.6,
            loss: 0.01,
            drift_sigma: 0.9,
            reelect_every: 2,
            rounds: 10,
            seed,
        }
    }

    /// Five clusters (no complete lattice: the linear nearest-site
    /// fallback) with a 40% fault fraction, so trust counters cross the
    /// quarantine threshold and the SoA weight vector exercises its
    /// -0.0 participation sentinel in both directions.
    fn quarantine_heavy(seed: u64) -> Self {
        Scenario {
            nodes: 100,
            clusters: 5,
            field: 100.0,
            faulty: 40,
            noise_sigma: 1.8,
            loss: 0.005,
            drift_sigma: 0.5,
            reelect_every: 3,
            rounds: 10,
            seed,
        }
    }

    fn config(&self) -> MultiClusterConfig {
        MultiClusterConfig::paper().mobile(self.drift_sigma, self.reelect_every)
    }

    fn behaviors(&self) -> Vec<Box<dyn NodeBehavior + Send>> {
        let faulty = SimRng::seed_from(self.seed ^ 0xFA).choose_indices(self.nodes, self.faulty);
        (0..self.nodes)
            .map(|i| -> Box<dyn NodeBehavior + Send> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, self.noise_sigma))
                }
            })
            .collect()
    }

    fn sequential(&self) -> MultiClusterSim {
        MultiClusterSim::try_new(
            self.config(),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
        )
        .expect("scenario configs are valid")
    }

    fn sharded(&self, threads: usize) -> ShardedMultiCluster {
        ShardedMultiCluster::try_new(
            self.config(),
            Topology::uniform_grid(self.nodes, self.field, self.field),
            grid_sites(self.clusters, self.field),
            self.behaviors(),
            |_| Box::new(BernoulliLoss::new(self.loss)),
            self.seed,
            threads,
        )
        .expect("scenario configs are valid")
    }

    fn events(&self) -> Vec<Point> {
        let mut rng = SimRng::seed_from(self.seed ^ 0xE7);
        (0..self.rounds)
            .map(|_| {
                Point::new(
                    rng.uniform_range(0.0, self.field),
                    rng.uniform_range(0.0, self.field),
                )
            })
            .collect()
    }
}

/// Runs the scenario on both engines, asserting lockstep equality of
/// decisions, trust bits, positions, and trace counters every round.
fn assert_lockstep(scenario: &Scenario, threads: usize) {
    let mut seq = scenario.sequential();
    let mut par = scenario.sharded(threads);
    let ctx = format!("scenario {scenario:?} threads={threads}");
    for (round, &event) in scenario.events().iter().enumerate() {
        let a = seq.run_event(event);
        let b = par.run_event(event);
        assert_eq!(a, b, "decision diverged at round {round}: {ctx}");
        assert_eq!(
            seq.trust_snapshot(),
            par.trust_snapshot(),
            "trust trajectory diverged at round {round}: {ctx}"
        );
    }
    assert_eq!(seq.counters(), par.counters(), "trace counters diverged: {ctx}");
}

#[test]
fn batched_mailbox_flush_ten_seeds() {
    for seed in 0..10u64 {
        let scenario = Scenario::mailbox_heavy(7000 + seed);
        for threads in [1, 4] {
            assert_lockstep(&scenario, threads);
        }
    }
}

#[test]
fn soa_trust_layout_under_quarantine_churn_ten_seeds() {
    for seed in 0..10u64 {
        let scenario = Scenario::quarantine_heavy(8000 + seed);
        for threads in [1, 4] {
            assert_lockstep(&scenario, threads);
        }
    }
}

#[test]
fn sharded_snapshot_restores_into_sequential_engine() {
    // Run the sharded engine (SoA trust, batched flush, arena-backed
    // scratch) halfway, snapshot it, and restore the blob into the
    // *sequential* engine: the new in-memory layout must serialize to
    // the same canonical form the old engine reads, and the restored
    // run must stay in lockstep with the uninterrupted sharded one.
    for seed in [0u64, 1, 2] {
        let scenario = Scenario::mailbox_heavy(9000 + seed);
        let events = scenario.events();
        let (head, tail) = events.split_at(events.len() / 2);
        let mut par = scenario.sharded(4);
        for &event in head {
            par.run_event(event);
        }
        let blob = save_sharded(&par).expect("sharded engine snapshots");
        let mut restored = restore_sequential(&blob).expect("blob restores sequentially");
        assert_eq!(restored.trust_snapshot(), par.trust_snapshot(), "seed {seed}");
        for (round, &event) in tail.iter().enumerate() {
            assert_eq!(
                par.run_event(event),
                restored.run_event(event),
                "post-restore round {round}: seed {seed}"
            );
            assert_eq!(
                par.trust_snapshot(),
                restored.trust_snapshot(),
                "post-restore trust round {round}: seed {seed}"
            );
        }
        assert_eq!(par.counters(), restored.counters(), "seed {seed}");
    }
}

#[test]
fn sequential_snapshot_restores_into_sharded_engine() {
    // The reverse direction: an old-engine snapshot resumes on the new
    // sharded layout, at more than one thread count.
    let scenario = Scenario::quarantine_heavy(9100);
    let events = scenario.events();
    let (head, tail) = events.split_at(events.len() / 2);
    let mut seq = scenario.sequential();
    for &event in head {
        seq.run_event(event);
    }
    let blob = save_sequential(&seq).expect("sequential engine snapshots");
    for threads in [1, 4] {
        let mut restored = restore_sharded(&blob, threads).expect("blob restores sharded");
        let mut reference = restore_sequential(&blob).expect("blob restores sequentially");
        for (round, &event) in tail.iter().enumerate() {
            assert_eq!(
                reference.run_event(event),
                restored.run_event(event),
                "post-restore round {round}: threads {threads}"
            );
        }
        assert_eq!(reference.trust_snapshot(), restored.trust_snapshot());
        assert_eq!(reference.counters(), restored.counters());
    }
}

/// Runs a scenario start-to-finish with the SIMD dispatch pinned to
/// `tier`, returning every observable: per-round decisions, the final
/// trust snapshot, and the trace counters.
fn run_pinned(
    scenario: &Scenario,
    threads: usize,
    tier: Option<simd_kernel::Tier>,
) -> (
    Vec<tibfit_experiments::multicluster::MultiRoundResult>,
    Vec<u64>,
    Vec<(String, u64)>,
) {
    simd_kernel::force_tier(tier);
    let mut sim = scenario.sharded(threads);
    let decisions = scenario.events().iter().map(|&e| sim.run_event(e)).collect();
    simd_kernel::force_tier(None);
    (decisions, sim.trust_snapshot(), sim.counters())
}

#[test]
fn simd_dispatch_tier_is_invisible_to_the_engines_ten_seeds() {
    // The batched decision path dispatches per-CPU (scalar, SSE2, AVX2,
    // or NEON); whichever tier this host runs, the whole engine must be
    // bit-identical to the forced-scalar run — decisions, trust bits,
    // and counters — at every thread count. `force_tier` is process
    // global, so the two runs of each pair are serialized back-to-back.
    static TIER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = TIER_LOCK.lock().expect("tier lock never poisoned");
    for seed in 0..10u64 {
        let scenario = Scenario::quarantine_heavy(9200 + seed);
        for threads in [1, 4] {
            let scalar = run_pinned(&scenario, threads, Some(simd_kernel::Tier::Scalar));
            let active = run_pinned(&scenario, threads, None);
            assert_eq!(
                scalar, active,
                "SIMD tier changed engine output: seed {seed} threads {threads} (active tier {})",
                simd_kernel::active_tier().name()
            );
        }
    }
}
