//! Fleet supervision: the Impact peer monitor must quarantine a dead
//! peer, adopt its tenants through the catch-up replay, and move the
//! fleet trace counters — all observable through the `STATUS` wire
//! query while the daemon is still serving.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use tibfit_daemon::fleet::{owner_of, FleetConfig, FleetPolicy, PeerSpec};
use tibfit_daemon::{Daemon, DaemonConfig};
use tibfit_experiments::replay::{render_replay, replay_records};

const TENANTS: usize = 2;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-fsup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// One `STATUS` round trip against a fleet port.
fn status_query(addr: SocketAddr) -> Option<Vec<String>> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .ok()?;
    let mut w = &stream;
    writeln!(w, "STATUS").ok()?;
    w.flush().ok()?;
    let mut reader = BufReader::new(&stream);
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).ok()? == 0 {
            break;
        }
        let trimmed = line.trim_end().to_string();
        let done = trimmed == "S end";
        lines.push(trimmed);
        if done {
            break;
        }
    }
    Some(lines)
}

#[test]
fn dead_peer_is_quarantined_and_its_tenants_adopted() {
    let root = fresh_dir("failover");
    let seed = 42u64;
    // A placement seed under which the (dead) peer 1 owns at least one
    // tenant of the full roster {0, 1}.
    let fleet_seed = (0..1000u64)
        .find(|&s| (0..TENANTS).any(|t| owner_of(s, t, &[0, 1]) == Some(1)))
        .expect("some seed places a tenant on peer 1");
    let victim_tenants: Vec<usize> = (0..TENANTS)
        .filter(|&t| owner_of(fleet_seed, t, &[0, 1]) == Some(1))
        .collect();

    let text = render_replay(&replay_records(TENANTS, seed, 10, 2));
    let catchup = root.join("catchup.replay");
    std::fs::write(&catchup, &text).expect("catchup replay");

    let mut cfg = DaemonConfig::standard(TENANTS, seed, root.join("state"));
    cfg.fleet = Some(FleetConfig {
        id: 0,
        // Nothing listens on port 1: every probe misses immediately.
        peers: vec![PeerSpec {
            id: 1,
            addr: "127.0.0.1:1".into(),
        }],
        seed: fleet_seed,
        listen: "127.0.0.1:0".into(),
        linger_ms: 4000,
        catchup_replay: Some(catchup),
        policy: FleetPolicy {
            check_interval_ms: 10,
            grace_ms: 0,
            probe_timeout_ms: 50,
            ..FleetPolicy::default()
        },
    });
    let mut daemon = Daemon::new(cfg).expect("fleet daemon");
    let fleet_addr = daemon.fleet_addr().expect("fleet port bound");
    let handle = std::thread::spawn(move || daemon.run(Cursor::new(text)).expect("run"));

    // While the daemon lingers, STATUS must show peer 1 quarantined
    // with decayed trust, and placement must fall back to daemon 0.
    let status = (0..100)
        .find_map(|_| {
            std::thread::sleep(Duration::from_millis(50));
            let lines = status_query(fleet_addr)?;
            lines
                .iter()
                .any(|l| l.starts_with("S peer 1 quarantined"))
                .then_some(lines)
        })
        .expect("peer 1 was never quarantined while the daemon served STATUS");
    assert!(status.contains(&"S self 0".to_string()), "{status:?}");
    for t in 0..TENANTS {
        assert!(
            status.contains(&format!("S tenant {t} 0")),
            "tenant {t} must be placed on the survivor: {status:?}"
        );
    }

    let report = handle.join().expect("daemon thread");
    let counters = report.counters();
    let fleet = report.fleet.expect("fleet summary present");
    assert_eq!(
        fleet.adopted, victim_tenants,
        "exactly the dead peer's tenants are adopted"
    );
    assert_eq!(fleet.rebalances, victim_tenants.len() as u64);
    assert_eq!(fleet.migrations_in + fleet.migrations_out, 0);

    // Counter movement across the forced failover.
    let get = |key: &str| {
        counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {key}: {counters:?}"))
    };
    assert!(get("fleet.rebalance.count") >= 1);
    assert_eq!(get("fleet.migrations"), 0);
    assert!(
        get("fleet.peer_trust.p1") < 1000,
        "peer 1 trust must have decayed from 1.0"
    );
    // Every adopted tenant ends the run applied and unquarantined.
    for &t in &victim_tenants {
        let summary = report
            .tenants
            .iter()
            .find(|s| s.id == t)
            .expect("adopted tenant reported");
        assert!(summary.applied > 0, "adopted tenant {t} must apply rounds");
        assert!(!summary.quarantined);
    }
}
