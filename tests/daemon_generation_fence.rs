//! Deterministic unit coverage for the worker-generation fence in
//! `tibfit_daemon::queue` — the interleaving the supervision stress
//! tests only hit probabilistically (a superseded worker incarnation
//! that keeps running after the supervisor has already started its
//! replacement), driven step by step through the `SharedQueue` API on
//! one thread.
//!
//! The fence contract: after [`SharedQueue::recovery_view`] bumps the
//! generation, every API call carrying the old generation is a no-op —
//! stale `pop` returns `None` (never steals the replacement's work),
//! stale `complete_tick` cannot acknowledge progress, and a stale
//! `commit_snapshot` returns `Ok(false)` without running the write
//! closure (a dead incarnation must never publish a state file the
//! replacement's replay no longer accounts for).

use tibfit_daemon::queue::{Offer, QueuePolicy, SharedQueue, WorkItem};
use tibfit_daemon::wire::Report;

fn report(src: u64, seq: u64) -> Report {
    Report {
        tenant: 0,
        time: 1,
        src,
        seq,
        x: 1.0,
        y: 2.0,
    }
}

fn queue() -> SharedQueue {
    SharedQueue::new(
        QueuePolicy {
            capacity: 8,
            tick_budget: 4,
            record_shed: false,
        }
        .validated()
        .expect("policy is valid"),
    )
}

#[test]
fn stale_pop_returns_none_and_steals_nothing() {
    let q = queue();
    assert_eq!(q.offer(report(1, 1)), Offer::Pending);
    assert_eq!(q.offer(report(2, 1)), Offer::Pending);
    let admission = q.end_tick(1, |_| 0);
    assert_eq!(admission.admitted, 2);

    // Generation 0 worker pops one record, then the supervisor declares
    // it dead and takes a recovery view (generation 1).
    let first = q.pop(0).expect("work was issued");
    assert!(matches!(first, WorkItem::Record(_)));
    let (generation, replay) = q.recovery_view();
    assert_eq!(generation, 1);
    // The replay buffer still holds the full issued batch — both
    // records plus the tick boundary — because no snapshot committed.
    assert_eq!(replay.len(), 3);
    assert!(matches!(replay[2], WorkItem::TickEnd(1)));

    // The stale incarnation keeps polling: it must see the fence and
    // exit, not steal the replacement's items (which recovery_view
    // cleared from the ready queue anyway — the replacement regenerates
    // them from the replay buffer).
    assert!(q.pop(0).is_none());
    assert!(q.pop(0).is_none());
}

#[test]
fn stale_complete_tick_cannot_acknowledge_progress() {
    let q = queue();
    assert_eq!(q.offer(report(1, 1)), Offer::Pending);
    q.end_tick(1, |_| 0);
    let (generation, _) = q.recovery_view();

    // The dead incarnation acknowledges the tick it was processing.
    q.complete_tick(0, 1);
    assert!(
        q.has_outstanding(),
        "a stale acknowledgment must not mark issued work complete"
    );

    // The live incarnation's acknowledgment lands.
    q.complete_tick(generation, 1);
    assert!(!q.has_outstanding());
}

#[test]
fn stale_commit_snapshot_never_runs_the_write() {
    let q = queue();
    assert_eq!(q.offer(report(1, 1)), Offer::Pending);
    q.end_tick(1, |_| 0);
    let (generation, replay) = q.recovery_view();
    assert_eq!(replay.len(), 2);

    // The superseded worker tries to publish its snapshot: fenced —
    // Ok(false), the write closure never runs, the replay buffer is
    // retained for the replacement.
    let mut wrote = false;
    let committed: Result<bool, ()> = q.commit_snapshot(0, || {
        wrote = true;
        Ok(())
    });
    assert_eq!(committed, Ok(false));
    assert!(!wrote, "fenced commit must not run the state-file write");
    let (_, replay_after) = q.recovery_view();
    assert_eq!(replay_after.len(), 2, "fenced commit must not clear the buffer");

    // The live incarnation commits: the closure runs and the buffer
    // clears. (recovery_view above bumped the generation again, so the
    // live generation is the newest one.)
    let live = generation + 1;
    let mut wrote = false;
    let committed: Result<bool, ()> = q.commit_snapshot(live, || {
        wrote = true;
        Ok(())
    });
    assert_eq!(committed, Ok(true));
    assert!(wrote);
    let (_, replay_final) = q.recovery_view();
    assert!(replay_final.is_empty(), "committed snapshot clears the replay buffer");
}

#[test]
fn replacement_replays_the_buffer_and_commits() {
    // The full recovery sequence, deterministic and single-threaded:
    // issue → partial drain → crash → recovery view → replay → commit.
    let q = queue();
    for seq in 1..=3 {
        assert_eq!(q.offer(report(7, seq)), Offer::Pending);
    }
    q.end_tick(1, |r| r.seq); // impact-ranked, all admitted (budget 4)

    // Generation 0 applies one record, then dies mid-batch.
    assert!(matches!(q.pop(0), Some(WorkItem::Record(_))));

    let (generation, replay) = q.recovery_view();
    // 3 records + TickEnd, regardless of how far the dead worker got:
    // replay is from the last committed snapshot, not the pop cursor.
    assert_eq!(replay.len(), 4);
    let records = replay
        .iter()
        .filter(|i| matches!(i, WorkItem::Record(_)))
        .count();
    assert_eq!(records, 3);

    // The replacement applies the replayed batch (off-queue — the view
    // is a clone), acknowledges, and commits a snapshot.
    q.complete_tick(generation, 1);
    assert!(!q.has_outstanding());
    let committed: Result<bool, ()> = q.commit_snapshot(generation, || Ok(()));
    assert_eq!(committed, Ok(true));

    // Dedup survived the crash: the same upstream re-streaming the
    // records it already sent gets duplicates, not fresh admissions.
    for seq in 1..=3 {
        assert_eq!(q.offer(report(7, seq)), Offer::Duplicate);
    }
}
