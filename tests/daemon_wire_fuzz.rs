//! Wire-protocol fuzzing: seeded garbage, mutations of valid frames,
//! oversized lines, and raw non-UTF-8 bytes. Two contracts under test:
//!
//! - [`tibfit_daemon::wire::parse_line`] never panics on any input and
//!   maps every malformed line to a typed error with a stable counter
//!   kind.
//! - A daemon fed a garbage-interleaved stream never aborts, counts
//!   every rejected line under the right kind, and produces decision
//!   logs byte-identical to the same stream with the garbage removed.
//!
//! Every mutation is drawn from a seeded [`SimRng`], so a failure
//! reproduces exactly from the printed seed/iteration.

use std::io::Cursor;

use tibfit_daemon::wire::{parse_line, Frame, MAX_LINE_BYTES};
use tibfit_daemon::{Daemon, DaemonConfig, DaemonReport};
use tibfit_experiments::replay::{tenant_seed, FieldScenario};
use tibfit_sim::rng::SimRng;

const KNOWN_KINDS: &[&str] = &[
    "oversized",
    "unknown_tag",
    "missing_field",
    "bad_number",
    "non_finite",
    "trailing_garbage",
    "unknown_query",
    "not_utf8",
];

/// Exercises one line: must return without panicking, and any error
/// must carry a registered kind and a renderable message.
fn probe(line: &str, what: &str) {
    match parse_line(line) {
        Ok(_) => {}
        Err(e) => {
            assert!(
                KNOWN_KINDS.contains(&e.kind()),
                "unregistered error kind {:?} for {what}: {line:?}",
                e.kind()
            );
            let _ = e.to_string();
        }
    }
}

#[test]
fn random_token_soup_never_panics() {
    // Printable-ASCII soups with frame-ish tokens salted in, so the
    // parser's deep paths (numeric fields, query kinds) get hit too.
    let vocab = [
        "R",
        "T",
        "Q",
        "trust",
        "round",
        "#",
        "-",
        "NaN",
        "inf",
        "1e309",
        "0",
        "18446744073709551616",
        "3.5",
        "-0.0",
        "..",
        "+",
    ];
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0xF0_22 ^ seed);
        for iter in 0..500 {
            let tokens = rng.uniform_usize(9);
            let mut line = String::new();
            for _ in 0..tokens {
                if !line.is_empty() {
                    line.push(' ');
                }
                if rng.chance(0.6) {
                    line.push_str(vocab[rng.uniform_usize(vocab.len())]);
                } else {
                    let len = 1 + rng.uniform_usize(6);
                    for _ in 0..len {
                        line.push((0x20 + rng.uniform_usize(0x5f) as u8) as char);
                    }
                }
            }
            probe(&line, &format!("soup seed {seed} iter {iter}"));
        }
    }
}

#[test]
fn mutated_valid_frames_never_panic() {
    let valid = [
        "R 1 7 3 15 1.5 -0.25",
        "T",
        "Q trust 0 31",
        "Q round 1",
        "# comment line",
        "R 0 0 0 1 1e-308 9.75",
    ];
    for base in valid {
        assert!(parse_line(base).is_ok(), "fixture must be valid: {base:?}");
    }
    let mut rng = SimRng::seed_from(0xF0_23);
    for iter in 0..2000 {
        let mut line: Vec<char> = valid[rng.uniform_usize(valid.len())].chars().collect();
        for _ in 0..=rng.uniform_usize(3) {
            let c = (0x20 + rng.uniform_usize(0x5f) as u8) as char;
            match rng.uniform_usize(3) {
                0 if !line.is_empty() => {
                    let at = rng.uniform_usize(line.len());
                    line[at] = c;
                }
                1 => {
                    let at = rng.uniform_usize(line.len() + 1);
                    line.insert(at, c);
                }
                _ if !line.is_empty() => {
                    line.remove(rng.uniform_usize(line.len()));
                }
                _ => {}
            }
        }
        let line: String = line.into_iter().collect();
        probe(&line, &format!("mutation iter {iter}"));
    }
}

#[test]
fn oversized_lines_are_typed_not_fatal() {
    let mut rng = SimRng::seed_from(0xF0_24);
    for _ in 0..20 {
        let len = MAX_LINE_BYTES + 1 + rng.uniform_usize(8192);
        let line: String = (0..len)
            .map(|_| (0x20 + rng.uniform_usize(0x5f) as u8) as char)
            .collect();
        let err = parse_line(&line).expect_err("oversized must reject");
        assert_eq!(err.kind(), "oversized");
    }
}

// ---------------------------------------------------------------------
// End-to-end: a garbage-interleaved stream leaves decisions untouched.
// ---------------------------------------------------------------------

const TENANTS: usize = 2;

fn fuzz_scenario(seed: u64) -> FieldScenario {
    FieldScenario {
        nodes: 16,
        clusters: 2,
        field: 40.0,
        faulty: 4,
        noise_sigma: 1.0,
        loss: 0.0,
        drift_sigma: 0.3,
        reelect_every: 4,
        seed,
    }
}

fn valid_replay(master: u64, ticks: u64, per_tick: u64) -> Vec<String> {
    let streams: Vec<Vec<_>> = (0..TENANTS)
        .map(|t| fuzz_scenario(tenant_seed(master, t)).events((ticks * per_tick) as usize))
        .collect();
    let mut lines = Vec::new();
    for time in 0..ticks {
        for (tenant, stream) in streams.iter().enumerate() {
            for k in 0..per_tick {
                let p = stream[(time * per_tick + k) as usize];
                let seq = time * per_tick + k + 1;
                lines.push(format!("R {tenant} {time} {tenant} {seq} {} {}", p.x, p.y));
            }
        }
        lines.push("T".to_string());
    }
    lines
}

/// True when injecting `line` cannot change any tenant's state: it is
/// either rejected by the parser, rejected at routing (unknown
/// tenant), or a no-op comment/blank.
fn is_effect_free(line: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(line) else {
        return true; // not_utf8 → rejected
    };
    match parse_line(text) {
        Err(_) | Ok(None) => true,
        Ok(Some(Frame::Report(r))) => r.tenant >= TENANTS,
        Ok(Some(Frame::Query(q))) => {
            let t = match q {
                tibfit_daemon::wire::Query::Trust { tenant, .. }
                | tibfit_daemon::wire::Query::Round { tenant } => tenant,
                // A status dump reads state without mutating it.
                tibfit_daemon::wire::Query::Status => return true,
            };
            t >= TENANTS
        }
        Ok(Some(Frame::Tick)) => false,
    }
}

/// True when the daemon counts `line` under `daemon.ingest.rejected`
/// (comments/blanks are effect-free but not rejections).
fn is_counted_reject(line: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(line) else {
        return true;
    };
    match parse_line(text) {
        Err(_) => true,
        Ok(None) => false,
        Ok(Some(Frame::Report(r))) => r.tenant >= TENANTS,
        Ok(Some(Frame::Query(_))) => true, // only injected when tenant is unknown
        Ok(Some(Frame::Tick)) => false,
    }
}

fn garbage_pool(seed: u64) -> Vec<Vec<u8>> {
    let mut pool: Vec<Vec<u8>> = vec![
        b"X 1 2".to_vec(),
        b"R 1 2 3".to_vec(),
        b"R a 0 0 1 1 1".to_vec(),
        b"R 0 0 0 1 NaN 1".to_vec(),
        b"R 0 0 0 1 1 inf".to_vec(),
        b"T extra".to_vec(),
        b"Q votes 0".to_vec(),
        b"Q trust 99 0".to_vec(),
        b"R 99 0 0 1 1.0 1.0".to_vec(),
        vec![0xff, 0xfe, 0x52, 0x20, 0x30],
        format!("R {}", "9".repeat(MAX_LINE_BYTES)).into_bytes(),
        b"# a comment is effect-free but not a rejection".to_vec(),
    ];
    let mut rng = SimRng::seed_from(seed ^ 0x6A5B);
    while pool.len() < 60 {
        let len = 1 + rng.uniform_usize(24);
        let mut line = Vec::with_capacity(len);
        for _ in 0..len {
            line.push(if rng.chance(0.9) {
                0x20 + rng.uniform_usize(0x5f) as u8
            } else {
                0x80 + rng.uniform_usize(0x80) as u8
            });
        }
        if line.contains(&b'\n') {
            continue;
        }
        // A random line that accidentally forms a well-formed frame
        // for a live tenant is simply not injected — the test pins
        // decision-stream identity, so only effect-free lines qualify.
        if is_effect_free(&line) {
            pool.push(line);
        }
    }
    pool
}

fn run_daemon_over(tag: &str, master: u64, stream: &[u8]) -> (DaemonReport, Vec<String>) {
    let dir = std::env::temp_dir().join(format!("tibfit-fuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = DaemonConfig::standard(TENANTS, master, dir.clone());
    cfg.scenario = fuzz_scenario;
    cfg.snapshot_every = 3;
    let mut daemon = Daemon::new(cfg).expect("daemon builds");
    let report = daemon
        .run(Cursor::new(stream.to_vec()))
        .expect("garbage never aborts the daemon");
    let decisions = (0..TENANTS)
        .map(|t| {
            std::fs::read_to_string(dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect();
    (report, decisions)
}

#[test]
fn garbage_interleaved_stream_is_rejected_and_decision_neutral() {
    let master = 0xF0_25;
    let valid = valid_replay(master, 10, 3);
    let pool = garbage_pool(master);

    let mut clean: Vec<u8> = Vec::new();
    for line in &valid {
        clean.extend_from_slice(line.as_bytes());
        clean.push(b'\n');
    }

    // Interleave: after every valid line, a seeded chance of one or
    // two garbage lines from the pool.
    let mut rng = SimRng::seed_from(master ^ 0x11);
    let mut dirty: Vec<u8> = Vec::new();
    let mut injected: Vec<&[u8]> = Vec::new();
    for line in &valid {
        dirty.extend_from_slice(line.as_bytes());
        dirty.push(b'\n');
        for _ in 0..rng.uniform_usize(3) {
            let g = &pool[rng.uniform_usize(pool.len())];
            dirty.extend_from_slice(g);
            dirty.push(b'\n');
            injected.push(g);
        }
    }
    assert!(injected.len() > 20, "fuzz stream must actually inject garbage");

    let (clean_report, clean_decisions) = run_daemon_over("clean", master, &clean);
    let (dirty_report, dirty_decisions) = run_daemon_over("dirty", master, &dirty);

    assert_eq!(clean_report.rejected, 0);
    assert_eq!(clean_decisions, dirty_decisions, "garbage must not perturb decisions");
    assert!(!clean_decisions[0].is_empty());

    let expected_rejects = injected.iter().filter(|g| is_counted_reject(g)).count() as u64;
    assert_eq!(dirty_report.rejected, expected_rejects);
    let by_kind_total: u64 = dirty_report.rejected_by_kind.iter().map(|(_, n)| n).sum();
    assert_eq!(by_kind_total, dirty_report.rejected, "breakdown must be complete");
    for kind in ["unknown_tag", "missing_field", "bad_number", "non_finite", "not_utf8"] {
        assert!(
            dirty_report
                .rejected_by_kind
                .iter()
                .any(|(k, n)| k == kind && *n > 0),
            "expected at least one {kind} rejection"
        );
    }
}
