//! Process-level crash/resume harness for `tibfit-daemon`: kill the
//! real binary anywhere — a deterministic seeded abort, a raced
//! SIGKILL, or a graceful SIGTERM drain — restart it over the same
//! replay, and demand decision logs byte-identical to a run that was
//! never interrupted.
//!
//! The binary is spawned via `CARGO_BIN_EXE_tibfit-daemon`, so these
//! tests cover the whole stack: argument parsing, signal handlers,
//! snapshot cadence, log truncation, and dedup-driven re-streaming.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const TENANTS: usize = 2;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_tibfit-daemon")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-cr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("binary spawns");
    assert!(
        out.status.success(),
        "expected success for {args:?}\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn decisions(state_dir: &Path) -> Vec<String> {
    (0..TENANTS)
        .map(|t| {
            std::fs::read_to_string(state_dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect()
}

fn gen_replay(dir: &Path, seed: u64, ticks: u64) -> PathBuf {
    let replay = dir.join("events.replay");
    run_ok(&[
        "gen-replay",
        "--out",
        replay.to_str().unwrap(),
        "--tenants",
        "2",
        "--seed",
        &seed.to_string(),
        "--ticks",
        &ticks.to_string(),
        "--per-tick",
        "1",
    ]);
    replay
}

fn serve_args<'a>(
    replay: &'a str,
    state: &'a str,
    seed: &'a str,
    engine: &'a str,
) -> Vec<&'a str> {
    vec![
        "serve", "--replay", replay, "--state-dir", state, "--seed", seed, "--tenants", "2",
        "--engine", engine, "--threads", "2", "--snapshot-every", "3",
    ]
}

/// One seeded crash/resume cycle: reference run, aborted run, resumed
/// run, byte-compare. Returns the tick the crash plan fired at (for
/// coverage reporting).
fn crash_resume_cycle(seed: u64, engine: &str, ticks: u64) {
    let root = fresh_dir(&format!("seed{seed}-{engine}"));
    let replay = gen_replay(&root, seed, ticks);
    let replay = replay.to_str().unwrap();
    let seed_s = seed.to_string();

    let ref_dir = root.join("ref");
    run_ok(&serve_args(replay, ref_dir.to_str().unwrap(), &seed_s, engine));
    let reference = decisions(&ref_dir);
    assert!(!reference[0].is_empty(), "reference run must decide something");

    let crash_dir = root.join("crash");
    let crash_dir_s = crash_dir.to_str().unwrap().to_string();
    let mut crash_args = serve_args(replay, &crash_dir_s, &seed_s, engine);
    let horizon = ticks.to_string();
    crash_args.extend_from_slice(&["--crash-seed", &seed_s, "--crash-horizon", &horizon]);
    let out = Command::new(bin()).args(&crash_args).output().expect("binary spawns");
    assert!(
        !out.status.success(),
        "seed {seed}: the crash plan must abort before end of stream"
    );

    // Same state dir, same replay: dedup drops everything the snapshot
    // already covers and regenerates the rest.
    let resumed_stdout = run_ok(&serve_args(replay, &crash_dir_s, &seed_s, engine));
    assert!(resumed_stdout.contains("daemon.exit eof"));
    assert_eq!(
        reference,
        decisions(&crash_dir),
        "seed {seed} engine {engine}: resumed decisions must be byte-identical"
    );
}

#[test]
fn seeded_aborts_resume_byte_identical_across_20_seeds() {
    for seed in 0..20u64 {
        let engine = if seed % 2 == 0 { "seq" } else { "sharded" };
        crash_resume_cycle(seed, engine, 8);
    }
}

#[test]
fn raced_sigkill_resumes_byte_identical() {
    for (i, sleep_ms) in [5u64, 30, 90].into_iter().enumerate() {
        let seed = 900 + i as u64;
        let root = fresh_dir(&format!("kill{i}"));
        let replay = gen_replay(&root, seed, 30);
        let replay = replay.to_str().unwrap();
        let seed_s = seed.to_string();

        let ref_dir = root.join("ref");
        run_ok(&serve_args(replay, ref_dir.to_str().unwrap(), &seed_s, "seq"));
        let reference = decisions(&ref_dir);

        let kill_dir = root.join("killed");
        let kill_dir_s = kill_dir.to_str().unwrap().to_string();
        let mut child = Command::new(bin())
            .args(serve_args(replay, &kill_dir_s, &seed_s, "seq"))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("binary spawns");
        std::thread::sleep(Duration::from_millis(sleep_ms));
        // SIGKILL: no handlers, no drain — whatever hit disk is all
        // the resume gets. (The race may also lose: a fast run that
        // finished already is just the trivially-resumable case.)
        let _ = child.kill();
        let _ = child.wait();

        run_ok(&serve_args(replay, &kill_dir_s, &seed_s, "seq"));
        assert_eq!(
            reference,
            decisions(&kill_dir),
            "sleep {sleep_ms}ms: SIGKILL + resume must be byte-identical"
        );
    }
}

#[test]
fn sigterm_drains_cleanly_and_resume_completes() {
    let seed = 950u64;
    let root = fresh_dir("drain");
    let replay_path = gen_replay(&root, seed, 12);
    let replay = replay_path.to_str().unwrap();
    let seed_s = seed.to_string();

    let ref_dir = root.join("ref");
    run_ok(&serve_args(replay, ref_dir.to_str().unwrap(), &seed_s, "seq"));
    let reference = decisions(&ref_dir);

    // Feed roughly half the stream over stdin, SIGTERM, then one wake
    // line so the read loop observes the flag and drains.
    let text = std::fs::read_to_string(&replay_path).expect("replay readable");
    let lines: Vec<&str> = text.lines().collect();
    let half = lines.len() / 2;

    let drain_dir = root.join("drained");
    let drain_dir_s = drain_dir.to_str().unwrap().to_string();
    let mut args = serve_args(replay, &drain_dir_s, &seed_s, "seq");
    args.retain(|a| *a != "--replay" && *a != replay);
    args.push("--stdin");
    let mut child = Command::new(bin())
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary spawns");
    let mut stdin = child.stdin.take().expect("piped stdin");
    for line in &lines[..half] {
        writeln!(stdin, "{line}").expect("write to daemon");
    }
    stdin.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(200));
    let pid = child.id().to_string();
    let killed = Command::new("/bin/kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill spawns");
    assert!(killed.success());
    std::thread::sleep(Duration::from_millis(100));
    writeln!(stdin, "# wake").expect("wake line");
    stdin.flush().expect("flush");

    let out = child.wait_with_output().expect("daemon exits");
    drop(stdin);
    assert!(out.status.success(), "SIGTERM must drain, not kill");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("daemon.exit drained"),
        "expected a drained exit, got:\n{stdout}"
    );

    // Resume over the full replay: the drained half dedups away.
    run_ok(&serve_args(replay, &drain_dir_s, &seed_s, "seq"));
    assert_eq!(reference, decisions(&drain_dir));
}
