//! Corrupt-snapshot fuzzing: seeded bit-flips, truncations, and tail
//! garbage over real checkpoint blobs. The contract under test is the
//! robustness half of the checkpoint format: `restore` on *any*
//! corrupted blob returns a typed error — it never panics and never
//! silently loads a damaged deployment.
//!
//! Every mutation is drawn from a seeded [`SimRng`], so a failure
//! reproduces exactly from the printed seed/iteration, with no external
//! fuzzing corpus to manage.

use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_experiments::checkpoint::{restore_sequential, restore_sharded, save_sequential};
use tibfit_experiments::multicluster::{grid_sites, MultiClusterConfig, MultiClusterSim};
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;

/// A mid-run checkpoint blob with real accumulated state: drifted
/// positions, partially decayed trust, live quarantine timers.
fn real_blob(seed: u64) -> Vec<u8> {
    let nodes = 48;
    let field = 70.0;
    let faulty = SimRng::seed_from(seed ^ 0xFA).choose_indices(nodes, 12);
    let behaviors: Vec<Box<dyn NodeBehavior + Send>> = (0..nodes)
        .map(|i| -> Box<dyn NodeBehavior + Send> {
            if faulty.contains(&i) {
                Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
            } else {
                Box::new(CorrectNode::new(0.0, 1.5))
            }
        })
        .collect();
    let mut sim = MultiClusterSim::try_new(
        MultiClusterConfig::paper().mobile(0.5, 3),
        Topology::uniform_grid(nodes, field, field),
        grid_sites(4, field),
        behaviors,
        |_| Box::new(BernoulliLoss::new(0.01)),
        seed,
    )
    .expect("fuzz scenario is valid");
    let mut rng = SimRng::seed_from(seed ^ 0xE7);
    for _ in 0..6 {
        let event = Point::new(rng.uniform_range(0.0, field), rng.uniform_range(0.0, field));
        sim.run_event(event);
    }
    save_sequential(&sim).expect("fuzz scenario is checkpointable")
}

/// Both restore paths must reject the blob; neither may panic. (A panic
/// fails the test on its own — the assertions pin the "never silently
/// loads" half.)
fn assert_rejected(bad: &[u8], what: &str) {
    assert!(
        restore_sequential(bad).is_err(),
        "sequential restore accepted a corrupt blob: {what}"
    );
    assert!(
        restore_sharded(bad, 2).is_err(),
        "sharded restore accepted a corrupt blob: {what}"
    );
}

#[test]
fn every_truncation_length_is_rejected() {
    let blob = real_blob(1);
    for cut in 0..blob.len() {
        assert_rejected(&blob[..cut], &format!("truncation to {cut} bytes"));
    }
}

#[test]
fn seeded_random_bit_flips_are_rejected() {
    let blob = real_blob(2);
    let mut rng = SimRng::seed_from(0xB17F_11B5);
    for iteration in 0..2500u32 {
        let mut bad = blob.clone();
        // 1–8 independent bit flips anywhere in the blob.
        let flips = 1 + rng.uniform_usize(8);
        for _ in 0..flips {
            let byte = rng.uniform_usize(bad.len());
            let bit = rng.uniform_usize(8) as u8;
            bad[byte] ^= 1 << bit;
        }
        if bad == blob {
            continue; // flips cancelled each other out
        }
        assert_rejected(&bad, &format!("bit flips, iteration {iteration}"));
    }
}

#[test]
fn seeded_random_truncations_and_tail_garbage_are_rejected() {
    let blob = real_blob(3);
    let mut rng = SimRng::seed_from(0x7A11_6A4B);
    for iteration in 0..500u32 {
        // Random truncation point (strictly shorter than the original).
        let cut = rng.uniform_usize(blob.len());
        assert_rejected(&blob[..cut], &format!("random truncation, iteration {iteration}"));

        // Valid blob with garbage appended: trailing bytes are corruption
        // too — a reader that ignores them would mask torn writes.
        let mut padded = blob.clone();
        let extra = 1 + rng.uniform_usize(16);
        for _ in 0..extra {
            padded.push((rng.next_u64() & 0xFF) as u8);
        }
        assert_rejected(&padded, &format!("tail garbage, iteration {iteration}"));
    }
}

#[test]
fn seeded_byte_overwrites_are_rejected() {
    // Whole-byte overwrites model single-sector rot rather than single
    // bit flips; spans of 1–32 bytes at a random offset.
    let blob = real_blob(4);
    let mut rng = SimRng::seed_from(0x0DD5_EC70);
    for iteration in 0..1000u32 {
        let mut bad = blob.clone();
        let start = rng.uniform_usize(bad.len());
        let len = (1 + rng.uniform_usize(32)).min(bad.len() - start);
        let mut changed = false;
        for b in &mut bad[start..start + len] {
            let v = (rng.next_u64() & 0xFF) as u8;
            changed |= v != *b;
            *b = v;
        }
        if !changed {
            continue;
        }
        assert_rejected(&bad, &format!("byte overwrite, iteration {iteration}"));
    }
}

#[test]
fn empty_and_foreign_blobs_are_rejected() {
    assert_rejected(&[], "empty blob");
    assert_rejected(b"not a snapshot at all", "foreign bytes");
    // A correct magic with nothing behind it.
    assert_rejected(b"TBSN", "bare magic");
}
