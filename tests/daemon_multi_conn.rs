//! Multi-connection fan-in ingest: the same stream split across 2–4
//! concurrent TCP connections must produce decision logs byte-identical
//! to the single-connection reference.
//!
//! Each connection carries a subset of every tick's `R` lines plus all
//! `T` lines; [`FanInSource`] holds tick `k` until every connection has
//! sealed it, and queue admission is arrival-order-independent within a
//! tick — together that makes the merged decisions deterministic no
//! matter how the OS schedules the senders.

use std::io::{Cursor, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use tibfit_daemon::net_io::FanInSource;
use tibfit_daemon::{Daemon, DaemonConfig};
use tibfit_experiments::replay::{render_replay, replay_records};

const TENANTS: usize = 2;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-fanin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn decisions(state_dir: &Path) -> Vec<String> {
    (0..TENANTS)
        .map(|t| {
            std::fs::read_to_string(state_dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect()
}

/// Splits a replay: `R` lines round-robin across `k` parts, every part
/// carries every `T` line. With `overlap`, each `R` line is *also*
/// duplicated onto the next part — cross-connection resend noise the
/// dedup layers must cancel.
fn split_stream(text: &str, k: usize, overlap: bool) -> Vec<String> {
    let mut parts = vec![String::new(); k];
    let mut i = 0usize;
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line == "T" {
            for part in &mut parts {
                part.push_str("T\n");
            }
        } else {
            parts[i % k].push_str(line);
            parts[i % k].push('\n');
            if overlap {
                let dup = (i + 1) % k;
                parts[dup].push_str(line);
                parts[dup].push('\n');
            }
            i += 1;
        }
    }
    parts
}

fn fan_in_cycle(k: usize, overlap: bool, seed: u64) {
    let root = fresh_dir(&format!("k{k}-ov{overlap}"));
    let text = render_replay(&replay_records(TENANTS, seed, 12, 3));

    let mut reference = Daemon::new(DaemonConfig::standard(TENANTS, seed, root.join("ref")))
        .expect("reference daemon");
    let ref_report = reference.run(Cursor::new(text.clone())).expect("reference run");
    assert!(ref_report.ticks > 0, "reference must close ticks");
    let want = decisions(&root.join("ref"));
    assert!(!want[0].is_empty(), "reference must decide something");

    let source = FanInSource::bind("127.0.0.1:0", u32::try_from(k).unwrap()).expect("bind");
    let addr = source.local_addr().expect("local addr");
    let mut daemon =
        Daemon::new(DaemonConfig::standard(TENANTS, seed, root.join("fan"))).expect("fan daemon");
    let server = std::thread::spawn(move || daemon.run(source).expect("fan-in run"));

    let senders: Vec<_> = split_stream(&text, k, overlap)
        .into_iter()
        .map(|part| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.write_all(part.as_bytes()).expect("send split");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let report = server.join().expect("server thread");

    assert_eq!(
        report.ticks, ref_report.ticks,
        "k={k} overlap={overlap}: fan-in must close the same tick count"
    );
    assert_eq!(
        want,
        decisions(&root.join("fan")),
        "k={k} overlap={overlap}: fan-in decisions must be byte-identical"
    );
    if overlap {
        let dups: u64 = report.tenants.iter().map(|t| t.stats.duplicates).sum();
        assert!(
            dups > 0,
            "overlapped split must exercise cross-connection dedup"
        );
    }
}

#[test]
fn two_connections_merge_byte_identical() {
    fan_in_cycle(2, false, 71);
}

#[test]
fn three_connections_with_overlap_merge_byte_identical() {
    fan_in_cycle(3, true, 72);
}

#[test]
fn four_connections_with_overlap_merge_byte_identical() {
    fan_in_cycle(4, true, 73);
}
