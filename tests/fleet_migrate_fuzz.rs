//! Migration-stream fuzzing: truncations, bit flips, and mid-section
//! disconnects of the framed snapshot transfer must fail typed (never
//! panic) and leave the *source* daemon's tenant intact and serving.
//!
//! Mirrors the `snapshot_fuzz.rs` / `daemon_wire_fuzz.rs` style: a
//! deterministic corpus driven by a splitmix generator, no external
//! fuzzing dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use tibfit_daemon::fleet::{owner_of, FleetConfig, FleetPolicy, PeerSpec};
use tibfit_daemon::migrate::{decode_bundle, encode_bundle, MigrationBundle};
use tibfit_daemon::net_io::ListenSource;
use tibfit_daemon::queue::{QueueStats, WorkItem};
use tibfit_daemon::wire::Report;
use tibfit_daemon::{Daemon, DaemonConfig};
use tibfit_experiments::replay::{render_replay, replay_records};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tibfit-mfuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sample_bundle() -> MigrationBundle {
    MigrationBundle {
        tenant: 1,
        seed: 77,
        state_round: 9,
        state_bytes: b"not a real container, just payload bytes".to_vec(),
        live_highwater: vec![(3, 12), (7, 4)],
        live_stats: QueueStats {
            offered: 40,
            admitted: 31,
            shed_budget: 5,
            shed_overflow: 1,
            duplicates: 3,
            backpressure_waits: 2,
        },
        replay: vec![
            WorkItem::Record(Report {
                tenant: 1,
                time: 10,
                src: 3,
                seq: 12,
                x: 0.25,
                y: -1.5,
            }),
            WorkItem::TickEnd(1),
            WorkItem::Record(Report {
                tenant: 1,
                time: 11,
                src: 7,
                seq: 4,
                x: 2.0,
                y: 0.5,
            }),
            WorkItem::TickEnd(2),
        ],
        pending: vec![Report {
            tenant: 1,
            time: 12,
            src: 3,
            seq: 13,
            x: 1.0,
            y: 1.0,
        }],
    }
}

#[test]
fn every_truncation_fails_typed() {
    let bytes = encode_bundle(&sample_bundle());
    for len in 0..bytes.len() {
        match decode_bundle(&bytes[..len]) {
            Err(e) => {
                // Typed, and the kind string is stable (counter key).
                assert!(!e.kind().is_empty());
            }
            Ok(_) => panic!("truncation to {len}/{} bytes decoded", bytes.len()),
        }
    }
    assert!(decode_bundle(&bytes).is_ok(), "untouched bundle decodes");
}

#[test]
fn seeded_bit_flips_fail_closed_without_panicking() {
    let bytes = encode_bundle(&sample_bundle());
    let mut rng = 0xfeed_beef_u64;
    for round in 0..400 {
        let pos = (splitmix(&mut rng) as usize) % bytes.len();
        let bit = splitmix(&mut rng) % 8;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        assert!(
            decode_bundle(&corrupt).is_err(),
            "round {round}: flip of bit {bit} at byte {pos} decoded"
        );
    }
}

fn decisions(state_dir: &Path, tenants: usize) -> Vec<String> {
    (0..tenants)
        .map(|t| {
            std::fs::read_to_string(state_dir.join("decisions").join(format!("tenant{t}.log")))
                .expect("decision log exists")
        })
        .collect()
}

/// Sends a fleet-port command line and reads one reply line.
fn fleet_command(addr: SocketAddr, command: &str) -> String {
    let stream = TcpStream::connect(addr).expect("fleet port reachable");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut w = &stream;
    writeln!(w, "{command}").expect("send command");
    w.flush().expect("flush");
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    line.trim_end().to_string()
}

/// A destination that accepts the migration connection, reads a little,
/// and drops it mid-section.
fn start_drop_mid_section_peer() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let addr = listener.local_addr().expect("fake peer addr");
    let handle = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            let mut buf = [0u8; 64];
            let _ = stream.read(&mut buf);
            // Drop: mid-section disconnect from the source's view.
        }
    });
    (addr, handle)
}

#[test]
fn failed_migrations_leave_the_source_serving_byte_identically() {
    const TENANTS: usize = 2;
    let root = fresh_dir("source-serving");
    let seed = 55u64;
    let text = render_replay(&replay_records(TENANTS, seed, 12, 2));
    let lines: Vec<&str> = text.lines().collect();
    // Split at a tick boundary so the quiet window between phases is a
    // whole number of rounds.
    let mid = {
        let mut seen = 0;
        lines
            .iter()
            .position(|l| {
                if *l == "T" {
                    seen += 1;
                }
                seen == 6
            })
            .expect("tick boundary")
            + 1
    };

    // Reference: uninterrupted single daemon.
    let mut reference = Daemon::new(DaemonConfig::standard(TENANTS, seed, root.join("ref")))
        .expect("reference daemon");
    reference
        .run(std::io::Cursor::new(text.clone()))
        .expect("reference run");
    let want = decisions(&root.join("ref"), TENANTS);

    // Fleet seed under which daemon 0 owns every tenant of the full
    // roster {0, 1, 2}, so the fleet run and the reference decide the
    // same records.
    let fleet_seed = (0..10_000u64)
        .find(|&s| (0..TENANTS).all(|t| owner_of(s, t, &[0, 1, 2]) == Some(0)))
        .expect("some seed places everything on daemon 0");
    let (drop_addr, drop_peer) = start_drop_mid_section_peer();
    let mut cfg = DaemonConfig::standard(TENANTS, seed, root.join("fleet"));
    cfg.fleet = Some(FleetConfig {
        id: 0,
        peers: vec![
            // Peer 1: connection refused (push cannot even connect).
            PeerSpec {
                id: 1,
                addr: "127.0.0.1:1".into(),
            },
            // Peer 2: accepts, then drops mid-section.
            PeerSpec {
                id: 2,
                addr: drop_addr.to_string(),
            },
        ],
        seed: fleet_seed,
        listen: "127.0.0.1:0".into(),
        linger_ms: 500,
        catchup_replay: None,
        // A huge grace keeps the monitor from quarantining the fake
        // peers and stealing the scenario.
        policy: FleetPolicy {
            grace_ms: 3_600_000,
            ..FleetPolicy::default()
        },
    });
    let source = ListenSource::bind("127.0.0.1:0", Some(1)).expect("ingest listener");
    let ingest_addr = source.local_addr().expect("ingest addr");
    let mut daemon = Daemon::new(cfg).expect("fleet daemon");
    let fleet_addr = daemon.fleet_addr().expect("fleet port");
    let server = std::thread::spawn(move || daemon.run(source).expect("fleet run"));

    let mut ingest = TcpStream::connect(ingest_addr).expect("ingest connect");
    for line in &lines[..mid] {
        writeln!(ingest, "{line}").expect("phase 1 line");
    }
    ingest.flush().expect("flush phase 1");
    // Quiet window: let the router drain phase 1 before migrating.
    std::thread::sleep(Duration::from_millis(400));

    // Both failure modes must come back typed as MERR, not hang or
    // kill the daemon.
    let refused = fleet_command(fleet_addr, "MIGRATE 0 1");
    assert!(refused.starts_with("MERR"), "got {refused:?}");
    let dropped = fleet_command(fleet_addr, "MIGRATE 0 2");
    assert!(dropped.starts_with("MERR"), "got {dropped:?}");
    drop_peer.join().expect("fake peer thread");

    // The source keeps serving: phase 2 flows into the same tenant.
    for line in &lines[mid..] {
        writeln!(ingest, "{line}").expect("phase 2 line");
    }
    ingest.flush().expect("flush phase 2");
    drop(ingest);

    let report = server.join().expect("daemon thread");
    let fleet = report.fleet.expect("fleet summary");
    assert_eq!(fleet.migrate_failed, 2);
    assert_eq!(fleet.migrations_out, 0);
    assert_eq!(
        want,
        decisions(&root.join("fleet"), TENANTS),
        "failed migrations must not perturb the source's decisions"
    );
}
