//! `tibfit-model` — exhaustive bounded-enumeration checker for the
//! TIBFIT protocol core.
//!
//! Enumerates every interleaving of judgement assignments, the
//! quarantine/probation/reintegration schedule, and CH
//! handoff/loss/resync actions over small configurations, asserting the
//! three protocol invariants (see the library docs and DESIGN.md §15)
//! on both the f64 and Q16.16 arithmetic backends. Exits nonzero and
//! prints a counterexample trace on any violation.
//!
//! ```text
//! tibfit-model [--nodes N] [--rounds R] [--quick] [--widened]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use tibfit_model::{check, sweep};

fn main() -> ExitCode {
    let mut nodes = 4usize;
    let mut rounds = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--nodes needs an integer"));
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--rounds needs an integer"));
            }
            "--quick" => {
                nodes = 3;
                rounds = 2;
            }
            "--widened" => {
                nodes = 5;
                rounds = 3;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if !(1..=8).contains(&nodes) || !(1..=4).contains(&rounds) {
        usage("bounds: 1..=8 nodes, 1..=4 rounds (exhaustive enumeration)");
    }

    let started = Instant::now();
    let mut all_ok = true;
    let mut total_states = 0u64;
    for cfg in sweep(nodes, rounds) {
        let t0 = Instant::now();
        let report = check(cfg);
        total_states += report.distinct;
        println!(
            "{} {:<55} {:>9} distinct states  {:>7} near-ties  {:>6.1}s",
            if report.ok() { "ok  " } else { "FAIL" },
            report.label,
            report.distinct,
            report.near_ties,
            t0.elapsed().as_secs_f64(),
        );
        for v in &report.violations {
            all_ok = false;
            println!("\n  VIOLATION [{}]: {}", v.invariant, v.detail);
            println!("  counterexample trace:");
            if v.trace.is_empty() {
                println!("    (initial state)");
            }
            for step in &v.trace {
                println!("    {step}");
            }
        }
    }
    println!(
        "\nchecked {} distinct states across {} configs in {:.1}s — {}",
        total_states,
        sweep(nodes, rounds).len(),
        started.elapsed().as_secs_f64(),
        if all_ok {
            "all invariants hold on both backends"
        } else {
            "INVARIANT VIOLATIONS FOUND"
        }
    );
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: tibfit-model [--nodes N] [--rounds R] [--quick] [--widened]");
    std::process::exit(2);
}
