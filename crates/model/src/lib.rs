//! Exhaustive bounded-enumeration model checker for the TIBFIT protocol
//! core.
//!
//! Property tests *sample* the protocol's state space; this crate
//! *enumerates* it. Over small bounded configurations (a handful of
//! nodes, a few decision rounds, every fault assignment, every
//! cluster-head action) the checker drives the **real production types**
//! — [`TrustTable`], the CTI fold, `run_vote` — through every reachable
//! interleaving of the quarantine/probation/reintegration schedule and
//! the CH-failover/shadow-resync recovery paths, and asserts three
//! invariants on every distinct state it reaches:
//!
//! 1. **Single-fault safety** — a quarantined node can never flip a CTI
//!    decision, ties always resolve to "no event", and any node whose
//!    weight is below half the decision margin cannot flip it by
//!    switching sides.
//! 2. **Liveness of reintegration** — from any reachable state, ticking
//!    the schedule with no further judgements walks every node
//!    Quarantined → Probation → Active through exactly the legal
//!    transitions; nothing wedges. On probation entry the trust lands at
//!    (f64) or strictly below (Q16.16) the isolation threshold, and one
//!    probationary relapse always re-quarantines.
//! 3. **Trust-mass conservation across failover** — extracting every
//!    node's record and installing it into a fresh table reproduces
//!    counters and statuses bit-for-bit, and a lose-then-resync recovery
//!    from a handoff snapshot never restores *more* trust than the
//!    snapshot held.
//!
//! Every state carries **both arithmetic backends** ([`TrustArith`]
//! Float64 and FixedQ16) through the same action sequence, so the
//! checker additionally pins them decision-identical: identical status
//! transitions, identical reintegration schedules, and identical CTI
//! decisions whenever the f64 margin is outside a quantization band
//! (near-ties are counted, not asserted).
//!
//! Bounded enumeration is not a proof for unbounded configurations —
//! see DESIGN.md §15 for exactly what it does and does not establish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;

use tibfit_core::trust::{NodeStatus, TrustParams, TrustTable};
use tibfit_core::vote::{run_vote, Weighting};
use tibfit_net::topology::NodeId;

/// CTI margins below this are "near-ties" for the cross-backend
/// comparison: the Q16.16 LUT exponential is within ~2·10⁻⁵ of the f64
/// reference per node, so any margin beyond a small multiple of that
/// cannot change sign under quantization.
pub const CROSS_BACKEND_EPS: f64 = 1e-3;

/// One bounded configuration to enumerate.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Cluster size (every node is an event neighbor).
    pub nodes: usize,
    /// Decision rounds to explore (the enumeration depth).
    pub rounds: usize,
    /// Trust decay constant λ.
    pub lambda: f64,
    /// Natural error rate `f_r`.
    pub fault_rate: f64,
    /// Isolation threshold.
    pub threshold: f64,
    /// Quarantine length in rounds.
    pub quarantine_rounds: u64,
    /// Probation length in rounds.
    pub probation_rounds: u64,
}

impl ModelConfig {
    /// A short human-readable tag for reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "n={} rounds={} λ={} f_r={} th={} policy=({},{})",
            self.nodes,
            self.rounds,
            self.lambda,
            self.fault_rate,
            self.threshold,
            self.quarantine_rounds,
            self.probation_rounds
        )
    }
}

/// A falsified invariant, with the action sequence that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
    /// The action sequence from the initial state to the bad state.
    pub trace: Vec<String>,
}

/// The outcome of enumerating one configuration.
#[derive(Debug)]
pub struct CheckReport {
    /// The configuration's [`ModelConfig::label`].
    pub label: String,
    /// States visited (including revisits pruned by memoization).
    pub states: u64,
    /// Distinct states on which the invariants were checked.
    pub distinct: u64,
    /// Cross-backend CTI comparisons skipped as near-ties.
    pub near_ties: u64,
    /// Invariant violations (empty on success).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// `true` when every invariant held on every distinct state.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the CTI decision-rule invariant on one table under an
/// arbitrary decision predicate `decide(rw, nrw)`.
///
/// The production rule is strict `rw > nrw`; the predicate is a
/// parameter so tests can verify the checker *detects* a broken rule
/// (e.g. ties declaring the event). Returns the first violation found:
///
/// - a tied partition that declares the event,
/// - a quarantined node whose side-switch changes a decision, or
/// - a node with `2·weight < |margin|` whose side-switch changes a
///   decision (a single report below half the margin can never flip).
#[must_use]
pub fn cti_decision_violation(
    table: &TrustTable,
    decide: &dyn Fn(f64, f64) -> bool,
) -> Option<String> {
    let n = table.len();
    let all: Vec<NodeId> = (0..n).map(NodeId).collect();
    let (mut r, mut nr) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for mask in 0u32..(1 << n) {
        r.clear();
        nr.clear();
        for node in &all {
            if mask & (1 << node.index()) != 0 {
                r.push(*node);
            } else {
                nr.push(*node);
            }
        }
        let rw = table.cumulative_trust(&r);
        let nrw = table.cumulative_trust(&nr);
        let decision = decide(rw, nrw);
        if rw == nrw && decision {
            return Some(format!(
                "tie declared the event: mask={mask:#b} rw={rw} nrw={nrw}"
            ));
        }
        for m in &all {
            let quarantined = table.is_isolated(*m);
            let weight = if quarantined { 0.0 } else { table.trust_of(*m) };
            let robust = quarantined || 2.0 * weight < (rw - nrw).abs() - 1e-9;
            if !robust {
                continue;
            }
            // Move m to the other side and re-run the real folds.
            let flipped = mask ^ (1 << m.index());
            r.clear();
            nr.clear();
            for node in &all {
                if flipped & (1 << node.index()) != 0 {
                    r.push(*node);
                } else {
                    nr.push(*node);
                }
            }
            let frw = table.cumulative_trust(&r);
            let fnrw = table.cumulative_trust(&nr);
            if decide(frw, fnrw) != decision {
                return Some(format!(
                    "single report flipped the decision: mask={mask:#b} node={} weight={weight} \
                     margin={} → {} vs {}",
                    m.index(),
                    rw - nrw,
                    decide(frw, fnrw),
                    decision,
                ));
            }
        }
    }
    None
}

/// One backend's trust export: `(node, TI)` pairs from a CH handoff.
type TrustExport = Vec<(NodeId, f64)>;

/// Paired model state: the same judgement history through both
/// arithmetic backends, plus the last CH handoff snapshot (if any).
#[derive(Clone)]
struct State {
    f64_table: TrustTable,
    q16_table: TrustTable,
    /// `(f64 export, q16 export)` captured by the last Handoff action.
    snapshot: Option<(TrustExport, TrustExport)>,
}

/// Cluster-head actions interleaved with the decision rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChAction {
    /// The head survives the round.
    None,
    /// Leadership rotates: the outgoing head exports a trust snapshot.
    Handoff,
    /// The head crashes, the incoming head's table is wiped, and the
    /// last handoff snapshot is replayed through `resync_to_ti` (a
    /// no-op without a snapshot — that variant is skipped).
    LoseAndResync,
}

const CH_ACTIONS: [ChAction; 3] = [ChAction::None, ChAction::Handoff, ChAction::LoseAndResync];

struct Checker {
    cfg: ModelConfig,
    visited: HashSet<Vec<u64>>,
    states: u64,
    near_ties: u64,
    violations: Vec<Violation>,
    trace: Vec<String>,
}

/// Cap on collected counterexamples per configuration; one is enough to
/// act on, a few help triangulate, thousands are noise.
const MAX_VIOLATIONS: usize = 4;

impl Checker {
    fn nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes).map(NodeId).collect()
    }

    fn fail(&mut self, invariant: &'static str, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation {
                invariant,
                detail,
                trace: self.trace.clone(),
            });
        }
    }

    fn done(&self) -> bool {
        self.violations.len() >= MAX_VIOLATIONS
    }

    /// An exact fingerprint of a state: every counter bit, every status,
    /// and the snapshot contents of both backends. Two states with equal
    /// keys behave identically under every future action, so revisits
    /// are pruned.
    fn key(&self, s: &State) -> Vec<u64> {
        let mut k = Vec::with_capacity(8 * self.cfg.nodes + 4);
        for t in [&s.f64_table, &s.q16_table] {
            for i in 0..self.cfg.nodes {
                let node = NodeId(i);
                k.push(t.counter_of(node).to_bits());
                match t.status_of(node) {
                    NodeStatus::Active => {
                        k.push(0);
                        k.push(0);
                    }
                    NodeStatus::Quarantined { remaining } => {
                        k.push(1);
                        k.push(remaining);
                    }
                    NodeStatus::Probation { remaining } => {
                        k.push(2);
                        k.push(remaining);
                    }
                }
            }
        }
        match &s.snapshot {
            None => k.push(0),
            Some((f, q)) => {
                k.push(1);
                for (_, ti) in f.iter().chain(q.iter()) {
                    k.push(ti.to_bits());
                }
            }
        }
        k
    }

    // ---- invariant 1: single-fault safety of the CTI rule ----

    fn check_decision_rule(&mut self, s: &State) {
        for (name, table) in [("f64", &s.f64_table), ("q16", &s.q16_table)] {
            if let Some(detail) = cti_decision_violation(table, &|rw, nrw| rw > nrw) {
                self.fail("single-fault safety", format!("[{name}] {detail}"));
            }
        }
        // Cross-backend: every partition must decide identically unless
        // the f64 margin sits inside the quantization band.
        let all = self.nodes();
        let (mut r, mut nr) = (Vec::new(), Vec::new());
        for mask in 0u32..(1 << self.cfg.nodes) {
            r.clear();
            nr.clear();
            for node in &all {
                if mask & (1 << node.index()) != 0 {
                    r.push(*node);
                } else {
                    nr.push(*node);
                }
            }
            let (frw, fnrw) = (
                s.f64_table.cumulative_trust(&r),
                s.f64_table.cumulative_trust(&nr),
            );
            let (qrw, qnrw) = (
                s.q16_table.cumulative_trust(&r),
                s.q16_table.cumulative_trust(&nr),
            );
            if (frw - fnrw).abs() <= CROSS_BACKEND_EPS {
                self.near_ties += 1;
            } else if (frw > fnrw) != (qrw > qnrw) {
                self.fail(
                    "cross-backend decision identity",
                    format!(
                        "mask={mask:#b}: f64 {frw} vs {fnrw}, q16 {qrw} vs {qnrw} disagree"
                    ),
                );
            }
            // One run_vote sanity probe per state ties the raw folds
            // back to the production vote path.
            if mask == (self.states % (1 << self.cfg.nodes)) as u32 {
                for (name, table) in [("f64", &s.f64_table), ("q16", &s.q16_table)] {
                    let out = run_vote(&all, &r, &Weighting::Trust(table));
                    let direct = table.cumulative_trust(&r) > table.cumulative_trust(&nr);
                    if out.event_declared != direct {
                        self.fail(
                            "single-fault safety",
                            format!("[{name}] run_vote disagrees with the direct fold at mask={mask:#b}"),
                        );
                    }
                }
            }
        }
    }

    // ---- invariant 2: the reintegration schedule never wedges ----

    fn check_liveness(&mut self, s: &State) {
        let budget = self.cfg.quarantine_rounds + self.cfg.probation_rounds;
        for (name, table) in [("f64", &s.f64_table), ("q16", &s.q16_table)] {
            let mut t = table.clone();
            for tick in 0..budget {
                let before: Vec<NodeStatus> =
                    (0..self.cfg.nodes).map(|i| t.status_of(NodeId(i))).collect();
                t.tick_round();
                for (i, prev) in before.iter().enumerate() {
                    let node = NodeId(i);
                    let now = t.status_of(node);
                    let legal = match (*prev, now) {
                        (NodeStatus::Active, NodeStatus::Active) => true,
                        (
                            NodeStatus::Quarantined { remaining: a },
                            NodeStatus::Quarantined { remaining: b },
                        ) => a > 1 && b == a - 1,
                        (NodeStatus::Quarantined { remaining }, NodeStatus::Probation { remaining: p }) => {
                            remaining <= 1 && p == self.cfg.probation_rounds
                        }
                        (
                            NodeStatus::Probation { remaining: a },
                            NodeStatus::Probation { remaining: b },
                        ) => a > 1 && b == a - 1,
                        (NodeStatus::Probation { remaining }, NodeStatus::Active) => remaining <= 1,
                        _ => false,
                    };
                    if !legal {
                        self.fail(
                            "reintegration liveness",
                            format!("[{name}] illegal transition {prev:?} → {now:?} at tick {tick}"),
                        );
                        return;
                    }
                    // On probation entry: trust lands at the threshold
                    // (f64) or strictly below it (Q16.16), and one
                    // relapse must re-quarantine immediately.
                    let entered_probation = matches!(prev, NodeStatus::Quarantined { remaining } if *remaining <= 1);
                    if entered_probation {
                        let ti = t.trust_of(node);
                        let th = self.cfg.threshold;
                        let placed_ok = if name == "f64" {
                            (ti - th).abs() < 1e-9
                        } else {
                            ti < th && ti > th - 1e-3
                        };
                        if !placed_ok {
                            self.fail(
                                "reintegration liveness",
                                format!("[{name}] probation entry TI {ti} not pinned to threshold {th}"),
                            );
                        }
                        let mut relapse = t.clone();
                        relapse.record_faulty(node);
                        if !relapse.is_isolated(node) {
                            self.fail(
                                "reintegration liveness",
                                format!("[{name}] probationary relapse of node {i} did not re-quarantine"),
                            );
                        }
                    }
                }
            }
            for i in 0..self.cfg.nodes {
                if t.status_of(NodeId(i)) != NodeStatus::Active {
                    self.fail(
                        "reintegration liveness",
                        format!(
                            "[{name}] node {i} wedged in {:?} after {budget} quiet ticks",
                            t.status_of(NodeId(i))
                        ),
                    );
                }
            }
        }
    }

    // ---- invariant 3: failover conserves trust mass ----

    fn check_conservation(&mut self, s: &State) {
        for (name, table) in [("f64", &s.f64_table), ("q16", &s.q16_table)] {
            let mut fresh = TrustTable::new(*table.params(), self.cfg.nodes)
                .with_isolation_threshold(self.cfg.threshold)
                .with_reintegration(self.cfg.quarantine_rounds, self.cfg.probation_rounds);
            for i in 0..self.cfg.nodes {
                let node = NodeId(i);
                fresh.install(node, table.extract(node));
            }
            for i in 0..self.cfg.nodes {
                let node = NodeId(i);
                if fresh.counter_of(node).to_bits() != table.counter_of(node).to_bits()
                    || fresh.status_of(node) != table.status_of(node)
                    || fresh.trust_of(node).to_bits() != table.trust_of(node).to_bits()
                {
                    self.fail(
                        "failover trust conservation",
                        format!(
                            "[{name}] extract→install changed node {i}: counter {} → {}, status {:?} → {:?}",
                            table.counter_of(node),
                            fresh.counter_of(node),
                            table.status_of(node),
                            fresh.status_of(node),
                        ),
                    );
                }
            }
        }
    }

    fn check_invariants(&mut self, s: &State) {
        self.check_decision_rule(s);
        self.check_liveness(s);
        self.check_conservation(s);
        // The two backends must agree on every status (a divergent
        // quarantine would eventually diverge the decisions too).
        for i in 0..self.cfg.nodes {
            let node = NodeId(i);
            if s.f64_table.status_of(node) != s.q16_table.status_of(node) {
                self.fail(
                    "cross-backend decision identity",
                    format!(
                        "node {i} status diverged: f64 {:?} vs q16 {:?}",
                        s.f64_table.status_of(node),
                        s.q16_table.status_of(node)
                    ),
                );
            }
        }
    }

    /// Applies one round (judgement mask, tick, CH action) to a copy of
    /// `s`; returns `None` when the action is a no-op variant to skip.
    fn apply(&mut self, s: &State, mask: u32, ch: ChAction) -> Option<State> {
        if ch == ChAction::LoseAndResync && s.snapshot.is_none() {
            return None;
        }
        let mut next = s.clone();
        for i in 0..self.cfg.nodes {
            let node = NodeId(i);
            // Quarantined nodes issue no reports, so they receive no
            // judgements; masks touching them are non-canonical and
            // were filtered by the caller.
            if next.f64_table.is_isolated(node) {
                continue;
            }
            if mask & (1 << i) != 0 {
                next.f64_table.record_faulty(node);
                next.q16_table.record_faulty(node);
            } else {
                next.f64_table.record_correct(node);
                next.q16_table.record_correct(node);
            }
        }
        let rf = next.f64_table.tick_round();
        let rq = next.q16_table.tick_round();
        if rf != rq {
            self.fail(
                "cross-backend decision identity",
                format!("reintegration schedules diverged: f64 {rf:?} vs q16 {rq:?}"),
            );
        }
        match ch {
            ChAction::None => {}
            ChAction::Handoff => {
                next.snapshot = Some((next.f64_table.export(), next.q16_table.export()));
            }
            ChAction::LoseAndResync => {
                let (snap_f, snap_q) = next.snapshot.clone().expect("checked above");
                for i in 0..self.cfg.nodes {
                    next.f64_table.set_counter(NodeId(i), 0.0);
                    next.q16_table.set_counter(NodeId(i), 0.0);
                }
                for &(node, ti) in &snap_f {
                    next.f64_table.resync_to_ti(node, ti);
                    let restored = next.f64_table.trust_of(node);
                    if restored > ti + 1e-9 {
                        self.fail(
                            "failover trust conservation",
                            format!("[f64] resync restored {restored} > snapshot {ti} for node {}", node.index()),
                        );
                    }
                }
                for &(node, ti) in &snap_q {
                    next.q16_table.resync_to_ti(node, ti);
                    let restored = next.q16_table.trust_of(node);
                    if restored > ti {
                        self.fail(
                            "failover trust conservation",
                            format!("[q16] resync restored {restored} > snapshot {ti} for node {}", node.index()),
                        );
                    }
                }
            }
        }
        Some(next)
    }

    fn dfs(&mut self, s: &State, depth: usize) {
        if depth == self.cfg.rounds || self.done() {
            return;
        }
        let quarantined: u32 = (0..self.cfg.nodes)
            .filter(|&i| s.f64_table.is_isolated(NodeId(i)))
            .map(|i| 1 << i)
            .sum();
        for mask in 0u32..(1 << self.cfg.nodes) {
            if mask & quarantined != 0 {
                continue; // non-canonical: judges a silent node
            }
            for ch in CH_ACTIONS {
                self.trace.push(format!(
                    "round {}: faulty-mask={mask:#06b} ch={ch:?}",
                    depth + 1
                ));
                if let Some(next) = self.apply(s, mask, ch) {
                    self.states += 1;
                    let key = self.key(&next);
                    if self.visited.insert(key) {
                        self.check_invariants(&next);
                        self.dfs(&next, depth + 1);
                    }
                }
                self.trace.pop();
                if self.done() {
                    return;
                }
            }
        }
    }
}

/// Exhaustively enumerates one configuration and checks all three
/// invariants (plus cross-backend decision identity) on every distinct
/// reachable state.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes/rounds, more
/// than 16 nodes, or parameters either backend rejects).
#[must_use]
pub fn check(cfg: ModelConfig) -> CheckReport {
    assert!(cfg.nodes > 0 && cfg.nodes <= 16, "bounded model: 1..=16 nodes");
    assert!(cfg.rounds > 0, "bounded model: at least one round");
    let params_f = TrustParams::new(cfg.lambda, cfg.fault_rate);
    let params_q = params_f.with_fixed_point().expect("params must survive quantization");
    let table = |p: TrustParams| {
        TrustTable::new(p, cfg.nodes)
            .with_isolation_threshold(cfg.threshold)
            .with_reintegration(cfg.quarantine_rounds, cfg.probation_rounds)
    };
    let initial = State {
        f64_table: table(params_f),
        q16_table: table(params_q),
        snapshot: None,
    };
    let mut checker = Checker {
        cfg,
        visited: HashSet::new(),
        states: 0,
        near_ties: 0,
        violations: Vec::new(),
        trace: Vec::new(),
    };
    let key = checker.key(&initial);
    checker.visited.insert(key);
    checker.check_invariants(&initial);
    checker.dfs(&initial, 0);
    CheckReport {
        label: cfg.label(),
        states: checker.states + 1,
        distinct: checker.visited.len() as u64,
        near_ties: checker.near_ties,
        violations: checker.violations,
    }
}

/// The configuration sweep for a given bound profile. Every entry keeps
/// λ·(1−f_r) comfortably clear of the isolation threshold's decision
/// boundary so backend quantization cannot straddle it (the checker
/// asserts exact status identity, so a deliberately degenerate λ would
/// report a *model* artifact, not a code bug).
#[must_use]
pub fn sweep(nodes: usize, rounds: usize) -> Vec<ModelConfig> {
    let mut configs = Vec::new();
    for lambda in [0.9, 0.35] {
        for (q, p) in [(1, 1), (2, 1), (1, 2)] {
            configs.push(ModelConfig {
                nodes,
                rounds,
                lambda,
                fault_rate: 0.1,
                threshold: 0.5,
                quarantine_rounds: q,
                probation_rounds: p,
            });
        }
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelConfig {
        ModelConfig {
            nodes: 2,
            rounds: 2,
            lambda: 0.9,
            fault_rate: 0.1,
            threshold: 0.5,
            quarantine_rounds: 1,
            probation_rounds: 1,
        }
    }

    #[test]
    fn tiny_config_has_no_violations() {
        let report = check(tiny());
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.distinct > 1);
    }

    #[test]
    fn three_node_sweep_is_clean() {
        for cfg in sweep(3, 2) {
            let report = check(cfg);
            assert!(report.ok(), "{}: {:?}", report.label, report.violations);
        }
    }

    #[test]
    fn mutant_decision_rule_is_caught() {
        // The checker must *detect* a broken rule, not just bless the
        // real one: a rule that declares the event on ties violates
        // single-fault safety on the very first (all-equal-trust) state.
        // Even node count: a fresh table then has tied partitions
        // (e.g. {0,1} vs {2,3} at full trust).
        let table = TrustTable::new(TrustParams::new(0.9, 0.1), 4);
        assert!(cti_decision_violation(&table, &|rw, nrw| rw > nrw).is_none());
        let violation = cti_decision_violation(&table, &|rw, nrw| rw >= nrw);
        assert!(violation.unwrap().contains("tie declared the event"));
    }

    #[test]
    fn lose_without_snapshot_is_skipped() {
        // LoseAndResync before any Handoff must be pruned, not panic.
        let mut cfg = tiny();
        cfg.rounds = 1;
        let report = check(cfg);
        assert!(report.ok(), "{:?}", report.violations);
    }
}
