//! Durable tenant state: a versioned snapshot container wrapping the
//! engine checkpoint blob together with everything else a resume needs
//! to be byte-identical — the dedup highwaters and the mirrored queue
//! counters — plus the decision-log truncation that squares the log
//! with the snapshot after a crash.
//!
//! A tenant file is written atomically (`.tmp` + rename, directory
//! fsync) via the PR-5 checkpoint machinery, and only at tick
//! boundaries, so every file on disk is internally consistent: the
//! engine round, the highwater map, and the counters all describe the
//! same instant. The decision log is flushed *before* the snapshot is
//! written, so a snapshot at round `r` implies rounds `1..=r` are in
//! the log; anything after `r` (including a torn final line) is
//! regenerated deterministically by the replayed stream and is
//! truncated away on restore.

use std::io::Write;
use std::path::{Path, PathBuf};

use tibfit_experiments::checkpoint::{read_checkpoint, write_checkpoint, CheckpointError};
use tibfit_sim::snapshot::{SnapshotReader, SnapshotWriter};

use crate::queue::QueueStats;
use crate::tenant::{decision_line_round, EngineKind, Tenant};
use crate::DaemonError;

/// Section tag: tenant metadata (id, seed, kind, round, highwaters,
/// counters).
const TAG_TENANT_META: u8 = 20;
/// Section tag: the engine checkpoint blob.
const TAG_TENANT_ENGINE: u8 = 21;

/// Everything a tenant state file holds, decoded.
pub struct TenantState {
    /// Tenant index.
    pub id: usize,
    /// Scenario master seed the tenant was built from (validated
    /// against the daemon's configuration on restore).
    pub seed: u64,
    /// Engine flavor the blob was saved from.
    pub kind: EngineKind,
    /// Engine round at snapshot time.
    pub round: u64,
    /// Dedup highwaters `(src, max_seq)` at snapshot time.
    pub highwater: Vec<(u64, u64)>,
    /// Queue counters at snapshot time.
    pub stats: QueueStats,
    /// The engine checkpoint blob.
    pub blob: Vec<u8>,
}

/// Path of tenant `id`'s state file under `state_dir`.
#[must_use]
pub fn tenant_state_path(state_dir: &Path, id: usize) -> PathBuf {
    state_dir.join(format!("tenant{id}.tbsn"))
}

/// Path of tenant `id`'s decision log under `decisions_dir`.
#[must_use]
pub fn decision_log_path(decisions_dir: &Path, id: usize) -> PathBuf {
    decisions_dir.join(format!("tenant{id}.log"))
}

/// Encodes a tenant's durable state.
///
/// # Errors
///
/// [`DaemonError::Snapshot`] if the engine blob fails to encode.
pub fn encode_tenant_state(
    tenant: &Tenant,
    highwater: &[(u64, u64)],
    stats: QueueStats,
) -> Result<Vec<u8>, DaemonError> {
    let blob = tenant.engine_blob()?;
    let mut w = SnapshotWriter::new();
    w.section(TAG_TENANT_META, |s| {
        s.put_usize(tenant.id());
        s.put_u64(tenant.scenario().seed);
        s.put_u8(tenant.kind().tag());
        s.put_u64(tenant.round());
        s.put_usize(highwater.len());
        for &(src, seq) in highwater {
            s.put_u64(src);
            s.put_u64(seq);
        }
        s.put_u64(stats.offered);
        s.put_u64(stats.admitted);
        s.put_u64(stats.shed_budget);
        s.put_u64(stats.shed_overflow);
        s.put_u64(stats.duplicates);
        s.put_u64(stats.backpressure_waits);
    });
    w.section(TAG_TENANT_ENGINE, |s| s.put_bytes(&blob));
    Ok(w.finish())
}

/// Decodes a tenant state file's bytes.
///
/// # Errors
///
/// [`DaemonError::Snapshot`] on a malformed container.
pub fn decode_tenant_state(bytes: &[u8]) -> Result<TenantState, DaemonError> {
    let mut r = SnapshotReader::new(bytes).map_err(DaemonError::Snapshot)?;
    let mut s = r.section(TAG_TENANT_META).map_err(DaemonError::Snapshot)?;
    let id = s.take_usize().map_err(DaemonError::Snapshot)?;
    let seed = s.take_u64().map_err(DaemonError::Snapshot)?;
    let kind = EngineKind::from_tag(s.take_u8().map_err(DaemonError::Snapshot)?)?;
    let round = s.take_u64().map_err(DaemonError::Snapshot)?;
    let n = s.take_count(16).map_err(DaemonError::Snapshot)?;
    let mut highwater = Vec::with_capacity(n);
    for _ in 0..n {
        let src = s.take_u64().map_err(DaemonError::Snapshot)?;
        let seq = s.take_u64().map_err(DaemonError::Snapshot)?;
        highwater.push((src, seq));
    }
    let stats = QueueStats {
        offered: s.take_u64().map_err(DaemonError::Snapshot)?,
        admitted: s.take_u64().map_err(DaemonError::Snapshot)?,
        shed_budget: s.take_u64().map_err(DaemonError::Snapshot)?,
        shed_overflow: s.take_u64().map_err(DaemonError::Snapshot)?,
        duplicates: s.take_u64().map_err(DaemonError::Snapshot)?,
        backpressure_waits: s.take_u64().map_err(DaemonError::Snapshot)?,
    };
    s.end().map_err(DaemonError::Snapshot)?;
    let mut s = r.section(TAG_TENANT_ENGINE).map_err(DaemonError::Snapshot)?;
    let blob = s.take_bytes().map_err(DaemonError::Snapshot)?;
    s.end().map_err(DaemonError::Snapshot)?;
    r.finish().map_err(DaemonError::Snapshot)?;
    Ok(TenantState {
        id,
        seed,
        kind,
        round,
        highwater,
        stats,
        blob,
    })
}

/// Writes a tenant state file atomically.
///
/// # Errors
///
/// [`DaemonError::Checkpoint`] on I/O failure.
pub fn write_tenant_state(path: &Path, bytes: &[u8]) -> Result<(), DaemonError> {
    write_checkpoint(path, bytes).map_err(DaemonError::Checkpoint)
}

/// Reads a tenant state file. `Ok(None)` if it does not exist.
///
/// # Errors
///
/// [`DaemonError::Checkpoint`] on I/O failure, [`DaemonError::Snapshot`]
/// on corruption.
pub fn read_tenant_state(path: &Path) -> Result<Option<TenantState>, DaemonError> {
    let bytes = match read_checkpoint(path) {
        Ok(b) => b,
        Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(None)
        }
        Err(e) => return Err(DaemonError::Checkpoint(e)),
    };
    decode_tenant_state(&bytes).map(Some)
}

/// Truncates a decision log to rounds `<= round`: keeps the longest
/// prefix of well-formed, strictly increasing decision lines ending at
/// or before `round`, drops everything after — later rounds a dead
/// incarnation got ahead on, and any torn final line. Missing file is
/// treated as an empty log. Returns how many lines were kept.
///
/// The rewrite goes through a `.tmp` + rename so a crash mid-truncation
/// leaves either the old or the new log, both of which re-truncate
/// cleanly on the next start.
///
/// # Errors
///
/// [`DaemonError::Io`] on any filesystem failure.
pub fn truncate_decision_log(path: &Path, round: u64) -> Result<u64, DaemonError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(DaemonError::Io)?;
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(DaemonError::Io(e)),
    };
    let mut kept = String::with_capacity(text.len());
    let mut kept_lines = 0u64;
    let mut last_round = 0u64;
    for line in text.lines() {
        match decision_line_round(line) {
            Some(r) if r <= round && r > last_round => {
                kept.push_str(line);
                kept.push('\n');
                kept_lines += 1;
                last_round = r;
            }
            _ => break,
        }
    }
    let tmp = path.with_extension("log.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(DaemonError::Io)?;
        f.write_all(kept.as_bytes()).map_err(DaemonError::Io)?;
        f.sync_all().map_err(DaemonError::Io)?;
    }
    std::fs::rename(&tmp, path).map_err(DaemonError::Io)?;
    Ok(kept_lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::Tenant;
    use tibfit_experiments::replay::FieldScenario;

    fn scenario(seed: u64) -> FieldScenario {
        FieldScenario {
            nodes: 16,
            clusters: 2,
            field: 40.0,
            faulty: 4,
            noise_sigma: 1.0,
            loss: 0.0,
            drift_sigma: 0.3,
            reelect_every: 4,
            seed,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tibfit-daemon-state-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tenant_state_round_trips() {
        let sc = scenario(3);
        let mut tenant = Tenant::new(2, sc.clone(), EngineKind::Sequential, 1).unwrap();
        for (i, p) in sc.events(3).into_iter().enumerate() {
            tenant.apply(&crate::wire::Report {
                tenant: 2,
                time: i as u64,
                src: 2,
                seq: i as u64 + 1,
                x: p.x,
                y: p.y,
            });
        }
        let hw = vec![(2u64, 3u64)];
        let stats = QueueStats {
            offered: 5,
            admitted: 3,
            shed_budget: 1,
            shed_overflow: 1,
            duplicates: 0,
            backpressure_waits: 2,
        };
        let bytes = encode_tenant_state(&tenant, &hw, stats).unwrap();
        let state = decode_tenant_state(&bytes).unwrap();
        assert_eq!(state.id, 2);
        assert_eq!(state.seed, 3);
        assert_eq!(state.kind, EngineKind::Sequential);
        assert_eq!(state.round, 3);
        assert_eq!(state.highwater, hw);
        assert_eq!(state.stats, stats);
        let restored =
            Tenant::from_blob(state.id, sc, state.kind, 1, &state.blob).unwrap();
        assert_eq!(restored.round(), 3);
        assert_eq!(restored.trust_digest(), tenant.trust_digest());
    }

    #[test]
    fn corrupt_state_is_a_typed_error() {
        let sc = scenario(4);
        let tenant = Tenant::new(0, sc, EngineKind::Sequential, 1).unwrap();
        let mut bytes = encode_tenant_state(&tenant, &[], QueueStats::default()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_tenant_state(&bytes),
            Err(DaemonError::Snapshot(_))
        ));
    }

    #[test]
    fn missing_state_file_reads_as_none() {
        let dir = tempdir("missing");
        assert!(read_tenant_state(&tenant_state_path(&dir, 0)).unwrap().is_none());
    }

    #[test]
    fn truncation_drops_future_rounds_and_torn_tails() {
        let dir = tempdir("trunc");
        let path = decision_log_path(&dir, 0);
        let full = "D 1 0 1 at=1,2 by=0 trust=0000000000000001\n\
                    D 2 0 2 at=- by=- trust=0000000000000002\n\
                    D 3 0 3 at=3,4 by=1 trust=0000000000000003\n\
                    D 4 0 4 at=5,6 by=0 tru";
        std::fs::write(&path, full).unwrap();
        let kept = truncate_decision_log(&path, 2).unwrap();
        assert_eq!(kept, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with("trust=0000000000000002\n"));
        // Truncating an absent log creates an empty one.
        let fresh = decision_log_path(&dir, 1);
        assert_eq!(truncate_decision_log(&fresh, 10).unwrap(), 0);
        assert_eq!(std::fs::read_to_string(&fresh).unwrap(), "");
    }
}
