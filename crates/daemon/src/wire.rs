//! The newline-framed ingest grammar and its typed, panic-free parser.
//!
//! One frame per line, fields split on ASCII whitespace:
//!
//! ```text
//! # anything            comment — skipped
//! R <tenant> <time> <src> <seq> <x> <y>     sensor report
//! T                                          tick boundary
//! Q trust <tenant> <node>                    trust-index query
//! Q round <tenant>                           round-cursor query
//! Q status                                   fleet/placement status query
//! ```
//!
//! Fleet peers speak a second newline-framed grammar on the fleet
//! port, parsed by [`parse_fleet_line`] with the same typed-error
//! discipline:
//!
//! ```text
//! FPING <from_id>                peer heartbeat probe
//! FPONG <from_id>                heartbeat reply
//! STATUS                         roster + trust + placement dump
//! MIGRATE <tenant> <dest_id>     operator: hand a tenant to a peer
//! MPUSH <tenant>                 migration bundle follows (framed bytes)
//! MOK <tenant>                   bundle installed
//! MERR <reason...>               transfer refused / failed
//! OK / ERR <reason...>           operator-command outcome
//! ```
//!
//! [`parse_line`] never panics on any input: every malformed line maps
//! to a typed [`IngestError`] the daemon counts under
//! `daemon.ingest.rejected` and drops without disturbing the stream.
//! Blank lines and comments parse to `Ok(None)`.

use std::fmt;

/// Longest accepted line, in bytes. A well-formed report is < 120
/// bytes; the cap keeps a garbage (or hostile) upstream from growing
/// unbounded tokens in memory.
pub const MAX_LINE_BYTES: usize = 4096;

/// One parsed ingest frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A sensor report routed to one tenant.
    Report(Report),
    /// A tick boundary: close the open admission batch on every tenant.
    Tick,
    /// A read-only query, answered on stdout at the next tick boundary.
    Query(Query),
}

/// A sensor report: one event stimulus addressed to one tenant, with
/// an idempotency key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Hosted field index.
    pub tenant: usize,
    /// Logical tick the record belongs to (informational; batching is
    /// driven by `T` frames).
    pub time: u64,
    /// Upstream feed id — dedup key, with `seq`.
    pub src: u64,
    /// Monotone per-`src` sequence number.
    pub seq: u64,
    /// Event stimulus x.
    pub x: f64,
    /// Event stimulus y.
    pub y: f64,
}

/// A read-only query frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Trust index of `node` in `tenant`'s field (bit-exact `f64`).
    Trust {
        /// Hosted field index.
        tenant: usize,
        /// Node index inside the field.
        node: usize,
    },
    /// How many event rounds `tenant` has completed.
    Round {
        /// Hosted field index.
        tenant: usize,
    },
    /// Fleet status: peer roster, per-peer trust, tenant placement.
    /// Answered by the daemon itself (not routed to a tenant).
    Status,
}

/// Why a line was rejected. Every variant is counted, none aborts the
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Line exceeds [`MAX_LINE_BYTES`].
    Oversized {
        /// Observed length in bytes.
        len: usize,
    },
    /// First token is not a known frame tag.
    UnknownTag(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field failed numeric parsing.
    BadNumber {
        /// Which field.
        field: &'static str,
        /// The offending token (truncated to 32 bytes).
        token: String,
    },
    /// A coordinate parsed to NaN or ±∞ — the engines only accept
    /// finite stimuli.
    NonFinite {
        /// Which field.
        field: &'static str,
    },
    /// Extra tokens after a complete frame.
    TrailingGarbage,
    /// `Q` with an unknown query kind.
    UnknownQuery(String),
    /// The line is not valid UTF-8 (reported by the framing layer).
    NotUtf8,
}

impl IngestError {
    /// Stable counter key for the rejection breakdown
    /// (`daemon.ingest.rejected.<kind>`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            IngestError::Oversized { .. } => "oversized",
            IngestError::UnknownTag(_) => "unknown_tag",
            IngestError::MissingField(_) => "missing_field",
            IngestError::BadNumber { .. } => "bad_number",
            IngestError::NonFinite { .. } => "non_finite",
            IngestError::TrailingGarbage => "trailing_garbage",
            IngestError::UnknownQuery(_) => "unknown_query",
            IngestError::NotUtf8 => "not_utf8",
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Oversized { len } => {
                write!(f, "line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte frame cap")
            }
            IngestError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:?}"),
            IngestError::MissingField(field) => write!(f, "missing field {field}"),
            IngestError::BadNumber { field, token } => {
                write!(f, "field {field} is not a number: {token:?}")
            }
            IngestError::NonFinite { field } => write!(f, "field {field} must be finite"),
            IngestError::TrailingGarbage => write!(f, "trailing tokens after a complete frame"),
            IngestError::UnknownQuery(kind) => write!(f, "unknown query kind {kind:?}"),
            IngestError::NotUtf8 => write!(f, "line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for IngestError {}

fn truncated(token: &str) -> String {
    let mut end = token.len().min(32);
    while !token.is_char_boundary(end) {
        end -= 1;
    }
    token[..end].to_string()
}

fn take<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    field: &'static str,
) -> Result<&'a str, IngestError> {
    it.next().ok_or(IngestError::MissingField(field))
}

fn parse_u64(token: &str, field: &'static str) -> Result<u64, IngestError> {
    token.parse().map_err(|_| IngestError::BadNumber {
        field,
        token: truncated(token),
    })
}

fn parse_usize(token: &str, field: &'static str) -> Result<usize, IngestError> {
    token.parse().map_err(|_| IngestError::BadNumber {
        field,
        token: truncated(token),
    })
}

fn parse_coord(token: &str, field: &'static str) -> Result<f64, IngestError> {
    let v: f64 = token.parse().map_err(|_| IngestError::BadNumber {
        field,
        token: truncated(token),
    })?;
    if !v.is_finite() {
        return Err(IngestError::NonFinite { field });
    }
    Ok(v)
}

fn end_of<'a>(mut it: impl Iterator<Item = &'a str>) -> Result<(), IngestError> {
    if it.next().is_some() {
        return Err(IngestError::TrailingGarbage);
    }
    Ok(())
}

/// Parses one line into a frame. `Ok(None)` for blank lines and
/// comments; typed errors for everything malformed. Never panics.
///
/// # Errors
///
/// Any [`IngestError`] variant except [`IngestError::NotUtf8`] (which
/// the byte-level framing layer reports before text reaches here).
pub fn parse_line(line: &str) -> Result<Option<Frame>, IngestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(IngestError::Oversized { len: line.len() });
    }
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut it = line.split_ascii_whitespace();
    let Some(tag) = it.next() else {
        return Ok(None);
    };
    match tag {
        _ if tag.starts_with('#') => Ok(None),
        "R" => {
            let tenant = parse_usize(take(&mut it, "tenant")?, "tenant")?;
            let time = parse_u64(take(&mut it, "time")?, "time")?;
            let src = parse_u64(take(&mut it, "src")?, "src")?;
            let seq = parse_u64(take(&mut it, "seq")?, "seq")?;
            let x = parse_coord(take(&mut it, "x")?, "x")?;
            let y = parse_coord(take(&mut it, "y")?, "y")?;
            end_of(it)?;
            Ok(Some(Frame::Report(Report {
                tenant,
                time,
                src,
                seq,
                x,
                y,
            })))
        }
        "T" => {
            end_of(it)?;
            Ok(Some(Frame::Tick))
        }
        "Q" => {
            let kind = take(&mut it, "query kind")?;
            let frame = match kind {
                "trust" => {
                    let tenant = parse_usize(take(&mut it, "tenant")?, "tenant")?;
                    let node = parse_usize(take(&mut it, "node")?, "node")?;
                    Query::Trust { tenant, node }
                }
                "round" => {
                    let tenant = parse_usize(take(&mut it, "tenant")?, "tenant")?;
                    Query::Round { tenant }
                }
                "status" => Query::Status,
                other => return Err(IngestError::UnknownQuery(truncated(other))),
            };
            end_of(it)?;
            Ok(Some(Frame::Query(frame)))
        }
        other => Err(IngestError::UnknownTag(truncated(other))),
    }
}

/// One parsed fleet-port frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMsg {
    /// Heartbeat probe from peer `from`.
    Ping {
        /// Sender's fleet id.
        from: usize,
    },
    /// Heartbeat reply from peer `from`.
    Pong {
        /// Sender's fleet id.
        from: usize,
    },
    /// Roster/trust/placement dump request.
    Status,
    /// Operator order: migrate `tenant` to peer `dest`.
    Migrate {
        /// Tenant to move.
        tenant: usize,
        /// Destination fleet id.
        dest: usize,
    },
    /// A migration bundle for `tenant` follows as framed bytes.
    Push {
        /// Tenant the bundle carries.
        tenant: usize,
    },
    /// Bundle for `tenant` installed successfully.
    PushOk {
        /// Tenant acknowledged.
        tenant: usize,
    },
    /// Transfer refused or failed; the reason is free text.
    PushErr(String),
}

/// Parses one fleet-port line with the same typed, panic-free
/// discipline as [`parse_line`]. `Ok(None)` for blanks and comments.
///
/// # Errors
///
/// The same [`IngestError`] variants the ingest parser uses.
pub fn parse_fleet_line(line: &str) -> Result<Option<FleetMsg>, IngestError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(IngestError::Oversized { len: line.len() });
    }
    let line = line.strip_suffix('\r').unwrap_or(line);
    let mut it = line.split_ascii_whitespace();
    let Some(tag) = it.next() else {
        return Ok(None);
    };
    match tag {
        _ if tag.starts_with('#') => Ok(None),
        "FPING" => {
            let from = parse_usize(take(&mut it, "from")?, "from")?;
            end_of(it)?;
            Ok(Some(FleetMsg::Ping { from }))
        }
        "FPONG" => {
            let from = parse_usize(take(&mut it, "from")?, "from")?;
            end_of(it)?;
            Ok(Some(FleetMsg::Pong { from }))
        }
        "STATUS" => {
            end_of(it)?;
            Ok(Some(FleetMsg::Status))
        }
        "MIGRATE" => {
            let tenant = parse_usize(take(&mut it, "tenant")?, "tenant")?;
            let dest = parse_usize(take(&mut it, "dest")?, "dest")?;
            end_of(it)?;
            Ok(Some(FleetMsg::Migrate { tenant, dest }))
        }
        "MPUSH" => {
            let tenant = parse_usize(take(&mut it, "tenant")?, "tenant")?;
            end_of(it)?;
            Ok(Some(FleetMsg::Push { tenant }))
        }
        "MOK" => {
            let tenant = parse_usize(take(&mut it, "tenant")?, "tenant")?;
            end_of(it)?;
            Ok(Some(FleetMsg::PushOk { tenant }))
        }
        "MERR" => {
            let reason: Vec<&str> = it.collect();
            Ok(Some(FleetMsg::PushErr(reason.join(" "))))
        }
        other => Err(IngestError::UnknownTag(truncated(other))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_frame_kinds() {
        assert_eq!(
            parse_line("R 2 7 2 15 1.5 -0.25").unwrap(),
            Some(Frame::Report(Report {
                tenant: 2,
                time: 7,
                src: 2,
                seq: 15,
                x: 1.5,
                y: -0.25,
            }))
        );
        assert_eq!(parse_line("T").unwrap(), Some(Frame::Tick));
        assert_eq!(
            parse_line("Q trust 0 31").unwrap(),
            Some(Frame::Query(Query::Trust { tenant: 0, node: 31 }))
        );
        assert_eq!(
            parse_line("Q round 1").unwrap(),
            Some(Frame::Query(Query::Round { tenant: 1 }))
        );
        assert_eq!(
            parse_line("Q status").unwrap(),
            Some(Frame::Query(Query::Status))
        );
    }

    #[test]
    fn fleet_lines_parse_and_reject_like_ingest_lines() {
        assert_eq!(parse_fleet_line("FPING 2").unwrap(), Some(FleetMsg::Ping { from: 2 }));
        assert_eq!(parse_fleet_line("FPONG 0").unwrap(), Some(FleetMsg::Pong { from: 0 }));
        assert_eq!(parse_fleet_line("STATUS").unwrap(), Some(FleetMsg::Status));
        assert_eq!(
            parse_fleet_line("MIGRATE 3 1").unwrap(),
            Some(FleetMsg::Migrate { tenant: 3, dest: 1 })
        );
        assert_eq!(parse_fleet_line("MPUSH 3").unwrap(), Some(FleetMsg::Push { tenant: 3 }));
        assert_eq!(parse_fleet_line("MOK 3").unwrap(), Some(FleetMsg::PushOk { tenant: 3 }));
        assert_eq!(
            parse_fleet_line("MERR bundle failed its CRC check").unwrap(),
            Some(FleetMsg::PushErr("bundle failed its CRC check".into()))
        );
        assert_eq!(parse_fleet_line("").unwrap(), None);
        assert_eq!(parse_fleet_line("# hb").unwrap(), None);
        assert_eq!(
            parse_fleet_line("GOSSIP 1").unwrap_err(),
            IngestError::UnknownTag("GOSSIP".into())
        );
        assert_eq!(parse_fleet_line("FPING").unwrap_err(), IngestError::MissingField("from"));
        assert_eq!(parse_fleet_line("FPING 1 2").unwrap_err(), IngestError::TrailingGarbage);
        assert!(matches!(
            parse_fleet_line("MIGRATE x 1").unwrap_err(),
            IngestError::BadNumber { field: "tenant", .. }
        ));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# tibfit replay v1").unwrap(), None);
        assert_eq!(parse_line("#no-space-comment").unwrap(), None);
    }

    #[test]
    fn crlf_is_tolerated() {
        assert_eq!(parse_line("T\r").unwrap(), Some(Frame::Tick));
    }

    #[test]
    fn malformed_lines_map_to_typed_errors() {
        assert_eq!(parse_line("X 1 2").unwrap_err(), IngestError::UnknownTag("X".into()));
        assert_eq!(parse_line("R 1 2 3").unwrap_err(), IngestError::MissingField("seq"));
        assert!(matches!(
            parse_line("R a 2 3 4 5 6").unwrap_err(),
            IngestError::BadNumber { field: "tenant", .. }
        ));
        assert_eq!(
            parse_line("R 1 2 3 4 NaN 6").unwrap_err(),
            IngestError::NonFinite { field: "x" }
        );
        assert_eq!(
            parse_line("R 1 2 3 4 inf 6").unwrap_err(),
            IngestError::NonFinite { field: "x" }
        );
        assert_eq!(parse_line("T extra").unwrap_err(), IngestError::TrailingGarbage);
        assert_eq!(
            parse_line("Q votes 1").unwrap_err(),
            IngestError::UnknownQuery("votes".into())
        );
        let oversized = format!("R {}", "9".repeat(MAX_LINE_BYTES));
        assert!(matches!(parse_line(&oversized).unwrap_err(), IngestError::Oversized { .. }));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let x = 0.1_f64 + 0.2_f64;
        let line = format!("R 0 0 0 1 {x} {}", f64::MIN_POSITIVE);
        let Some(Frame::Report(r)) = parse_line(&line).unwrap() else {
            panic!("expected a report");
        };
        assert_eq!(r.x.to_bits(), x.to_bits());
        assert_eq!(r.y.to_bits(), f64::MIN_POSITIVE.to_bits());
    }
}
