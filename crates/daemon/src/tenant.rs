//! One hosted field: an engine (sequential or sharded), its shared
//! position view for the router's impact metric, and the deterministic
//! decision-line formatter.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tibfit_experiments::checkpoint;
use tibfit_experiments::multicluster::{MultiClusterSim, MultiRoundResult};
use tibfit_experiments::replay::FieldScenario;
use tibfit_experiments::sharded::ShardedMultiCluster;
use tibfit_net::geometry::Point;

use crate::wire::Report;
use crate::DaemonError;

/// Which engine implementation backs a tenant. Both are bit-identical
/// (pinned by the differential suite), so the choice is operational:
/// the sharded engine trades threads for throughput on big fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The sequential reference engine.
    Sequential,
    /// The sharded parallel engine.
    Sharded,
}

impl EngineKind {
    /// Stable on-disk tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            EngineKind::Sequential => 0,
            EngineKind::Sharded => 1,
        }
    }

    /// Parses the on-disk tag.
    ///
    /// # Errors
    ///
    /// [`DaemonError::State`] on an unknown tag.
    pub fn from_tag(tag: u8) -> Result<Self, DaemonError> {
        match tag {
            0 => Ok(EngineKind::Sequential),
            1 => Ok(EngineKind::Sharded),
            other => Err(DaemonError::State(format!("unknown engine tag {other}"))),
        }
    }

    /// CLI spelling.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] on an unknown name.
    pub fn from_name(name: &str) -> Result<Self, DaemonError> {
        match name {
            "seq" | "sequential" => Ok(EngineKind::Sequential),
            "sharded" | "par" => Ok(EngineKind::Sharded),
            other => Err(DaemonError::Config(format!(
                "unknown engine {other:?} (expected seq|sharded)"
            ))),
        }
    }
}

enum TenantEngine {
    // Boxed: the engines carry cache-line-aligned hot state, so the
    // variants are far larger than the enum's other residents.
    Sequential(Box<MultiClusterSim>),
    Sharded(Box<ShardedMultiCluster>),
}

/// The engine's node positions, shared with the router so admission
/// can rank pending records by trust impact without touching the
/// engine. Refreshed by the worker after every applied round; read by
/// the router only after the drain barrier, so reads always see a
/// settled tick boundary.
pub struct PositionView {
    radius: f64,
    points: Mutex<Vec<(f64, f64)>>,
}

impl PositionView {
    fn lock(&self) -> MutexGuard<'_, Vec<(f64, f64)>> {
        self.points.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// How many deployed nodes can sense a stimulus at `(x, y)` — the
    /// shedding metric: records nobody can corroborate are shed first.
    #[must_use]
    pub fn impact_of(&self, x: f64, y: f64) -> u64 {
        let pts = self.lock();
        let r2 = self.radius * self.radius;
        pts.iter()
            .filter(|(px, py)| {
                let dx = px - x;
                let dy = py - y;
                dx * dx + dy * dy <= r2
            })
            .count() as u64
    }
}

/// One hosted field.
pub struct Tenant {
    id: usize,
    scenario: FieldScenario,
    kind: EngineKind,
    engine: TenantEngine,
    positions: Arc<PositionView>,
    /// Scratch for per-record position refreshes — the apply path runs
    /// once per admitted record and must not allocate for a full
    /// position vector each time.
    pos_scratch: Vec<(u64, u64)>,
    /// Scratch for the per-record trust digest, same reasoning.
    trust_scratch: Vec<u64>,
}

fn decode_positions(bits: Vec<(u64, u64)>) -> Vec<(f64, f64)> {
    bits.into_iter()
        .map(|(x, y)| (f64::from_bits(x), f64::from_bits(y)))
        .collect()
}

/// FNV-1a over a slice of u64 words, little-endian byte order — the
/// decision-line trust fingerprint.
fn fnv1a_u64s(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &bits in words {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

impl Tenant {
    fn build(id: usize, scenario: FieldScenario, kind: EngineKind, engine: TenantEngine) -> Self {
        let radius = match &engine {
            TenantEngine::Sequential(e) => e.config().sensing_radius,
            TenantEngine::Sharded(e) => e.config().sensing_radius,
        };
        let bits = match &engine {
            TenantEngine::Sequential(e) => e.position_snapshot(),
            TenantEngine::Sharded(e) => e.position_snapshot(),
        };
        Tenant {
            id,
            scenario,
            kind,
            engine,
            positions: Arc::new(PositionView {
                radius,
                points: Mutex::new(decode_positions(bits)),
            }),
            pos_scratch: Vec::new(),
            trust_scratch: Vec::new(),
        }
    }

    /// Builds a fresh tenant from its scenario.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Engine`] if the deployment is rejected.
    pub fn new(
        id: usize,
        scenario: FieldScenario,
        kind: EngineKind,
        threads: usize,
    ) -> Result<Self, DaemonError> {
        let engine = match kind {
            EngineKind::Sequential => {
                TenantEngine::Sequential(Box::new(scenario.sequential().map_err(DaemonError::Engine)?))
            }
            EngineKind::Sharded => {
                TenantEngine::Sharded(Box::new(scenario.sharded(threads).map_err(DaemonError::Engine)?))
            }
        };
        Ok(Tenant::build(id, scenario, kind, engine))
    }

    /// Rebuilds a tenant from a checkpointed engine blob.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Checkpoint`] if the blob is corrupt or the
    /// decoded deployment is rejected.
    pub fn from_blob(
        id: usize,
        scenario: FieldScenario,
        kind: EngineKind,
        threads: usize,
        blob: &[u8],
    ) -> Result<Self, DaemonError> {
        let engine = match kind {
            EngineKind::Sequential => TenantEngine::Sequential(Box::new(
                checkpoint::restore_sequential(blob).map_err(DaemonError::Checkpoint)?,
            )),
            EngineKind::Sharded => TenantEngine::Sharded(Box::new(
                checkpoint::restore_sharded(blob, threads).map_err(DaemonError::Checkpoint)?,
            )),
        };
        Ok(Tenant::build(id, scenario, kind, engine))
    }

    /// Tenant index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The scenario this tenant was built from.
    #[must_use]
    pub fn scenario(&self) -> &FieldScenario {
        &self.scenario
    }

    /// Engine flavor.
    #[must_use]
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The shared position view the router ranks impact with.
    #[must_use]
    pub fn positions(&self) -> Arc<PositionView> {
        Arc::clone(&self.positions)
    }

    /// Re-attaches a replacement tenant to the position view the router
    /// already holds (worker restarts must not leave the router ranking
    /// against a dead incarnation's frozen positions). Refreshes the
    /// view from this engine's state immediately.
    pub fn set_positions(&mut self, view: Arc<PositionView>) {
        debug_assert_eq!(view.radius.to_bits(), self.positions.radius.to_bits());
        *view.lock() = decode_positions(self.position_bits());
        self.positions = view;
    }

    /// Completed event rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        match &self.engine {
            TenantEngine::Sequential(e) => e.round(),
            TenantEngine::Sharded(e) => e.round(),
        }
    }

    fn position_bits(&self) -> Vec<(u64, u64)> {
        match &self.engine {
            TenantEngine::Sequential(e) => e.position_snapshot(),
            TenantEngine::Sharded(e) => e.position_snapshot(),
        }
    }

    fn trust_bits(&self) -> Vec<u64> {
        match &self.engine {
            TenantEngine::Sequential(e) => e.trust_snapshot(),
            TenantEngine::Sharded(e) => e.trust_snapshot(),
        }
    }

    /// Trust index of one node, or `None` out of range.
    #[must_use]
    pub fn trust_of(&self, node: usize) -> Option<f64> {
        self.trust_bits().get(node).map(|&bits| f64::from_bits(bits))
    }

    /// FNV-1a digest over the bit-exact trust vector — a cheap
    /// whole-state fingerprint embedded in every decision line, so a
    /// diff catches divergence at the exact round it appears.
    #[must_use]
    pub fn trust_digest(&self) -> u64 {
        fnv1a_u64s(&self.trust_bits())
    }

    /// Applies one admitted report: runs the event round, refreshes the
    /// shared position view, and returns the decision line.
    pub fn apply(&mut self, report: &Report) -> String {
        let mut line = String::new();
        self.apply_into(report, &mut line);
        line
    }

    /// [`Self::apply`] appending the decision line to a caller-owned
    /// buffer (no trailing newline). The worker's per-record hot path:
    /// position refresh, trust digest, and line formatting all reuse
    /// scratch buffers, so a steady-state apply performs no heap
    /// allocation beyond what the engine round itself needs.
    pub fn apply_into(&mut self, report: &Report, out: &mut String) {
        let stimulus = Point::new(report.x, report.y);
        let result = match &mut self.engine {
            TenantEngine::Sequential(e) => e.run_event(stimulus),
            TenantEngine::Sharded(e) => e.run_event(stimulus),
        };
        match &self.engine {
            TenantEngine::Sequential(e) => e.position_snapshot_into(&mut self.pos_scratch),
            TenantEngine::Sharded(e) => e.position_snapshot_into(&mut self.pos_scratch),
        }
        {
            let mut pts = self.positions.lock();
            pts.clear();
            pts.extend(
                self.pos_scratch
                    .iter()
                    .map(|&(x, y)| (f64::from_bits(x), f64::from_bits(y))),
            );
        }
        self.decision_line_into(report, &result, out);
    }

    /// Formats the decision line for a completed round into `out`.
    /// Deterministic byte-for-byte: coordinates use shortest round-trip
    /// formatting, the digest pins the full trust state.
    fn decision_line_into(&mut self, report: &Report, result: &MultiRoundResult, out: &mut String) {
        use std::fmt::Write;
        let round = self.round();
        let _ = write!(out, "D {round} {} {} at=", report.src, report.seq);
        if result.declared.is_empty() {
            out.push('-');
        }
        for (i, p) in result.declared.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            let _ = write!(out, "{},{}", p.x, p.y);
        }
        out.push_str(" by=");
        if result.declaring_clusters.is_empty() {
            out.push('-');
        }
        for (i, c) in result.declaring_clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        match &self.engine {
            TenantEngine::Sequential(e) => e.trust_snapshot_into(&mut self.trust_scratch),
            TenantEngine::Sharded(e) => e.trust_snapshot_into(&mut self.trust_scratch),
        }
        let _ = write!(out, " trust={:016x}", fnv1a_u64s(&self.trust_scratch));
    }

    /// Serializes the engine to a checkpoint blob.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Snapshot`] on encoding failure.
    pub fn engine_blob(&self) -> Result<Vec<u8>, DaemonError> {
        match &self.engine {
            TenantEngine::Sequential(e) => {
                checkpoint::save_sequential(e).map_err(DaemonError::Snapshot)
            }
            TenantEngine::Sharded(e) => checkpoint::save_sharded(e).map_err(DaemonError::Snapshot),
        }
    }
}

/// Parses the round number out of a decision line (`D <round> ...`).
/// `None` for anything that is not a well-formed decision line —
/// including a partial line torn by a crash.
#[must_use]
pub fn decision_line_round(line: &str) -> Option<u64> {
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some("D") {
        return None;
    }
    let round = it.next()?.parse().ok()?;
    // A complete line has src, seq, at=, by=, trust=.
    let rest: Vec<&str> = it.collect();
    if rest.len() != 5 || !rest[4].starts_with("trust=") {
        return None;
    }
    Some(round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tibfit_experiments::replay::tenant_seed;

    fn small_scenario(seed: u64) -> FieldScenario {
        FieldScenario {
            nodes: 16,
            clusters: 2,
            field: 40.0,
            faulty: 4,
            noise_sigma: 1.0,
            loss: 0.0,
            drift_sigma: 0.3,
            reelect_every: 4,
            seed,
        }
    }

    fn report(seq: u64, x: f64, y: f64) -> Report {
        Report {
            tenant: 0,
            time: seq,
            src: 0,
            seq,
            x,
            y,
        }
    }

    #[test]
    fn engines_produce_identical_decision_lines() {
        let sc = small_scenario(tenant_seed(11, 0));
        let mut seq = Tenant::new(0, sc.clone(), EngineKind::Sequential, 1).unwrap();
        let mut par = Tenant::new(0, sc.clone(), EngineKind::Sharded, 2).unwrap();
        for (i, p) in sc.events(6).into_iter().enumerate() {
            let a = seq.apply(&report(i as u64 + 1, p.x, p.y));
            let b = par.apply(&report(i as u64 + 1, p.x, p.y));
            assert_eq!(a, b, "round {i}");
            assert!(a.starts_with(&format!("D {} ", i + 1)));
        }
    }

    #[test]
    fn blob_round_trip_resumes_identically() {
        let sc = small_scenario(5);
        let mut live = Tenant::new(0, sc.clone(), EngineKind::Sequential, 1).unwrap();
        let events = sc.events(8);
        for (i, p) in events[..4].iter().enumerate() {
            live.apply(&report(i as u64 + 1, p.x, p.y));
        }
        let blob = live.engine_blob().unwrap();
        let mut restored =
            Tenant::from_blob(0, sc.clone(), EngineKind::Sequential, 1, &blob).unwrap();
        assert_eq!(restored.round(), 4);
        for (i, p) in events[4..].iter().enumerate() {
            let a = live.apply(&report(i as u64 + 5, p.x, p.y));
            let b = restored.apply(&report(i as u64 + 5, p.x, p.y));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn impact_counts_in_range_nodes() {
        let sc = small_scenario(9);
        let tenant = Tenant::new(0, sc.clone(), EngineKind::Sequential, 1).unwrap();
        let view = tenant.positions();
        // The field is 40×40; a stimulus in the middle reaches more
        // nodes than one far outside.
        let center = view.impact_of(20.0, 20.0);
        let outside = view.impact_of(4000.0, 4000.0);
        assert!(center > 0);
        assert_eq!(outside, 0);
    }

    #[test]
    fn decision_round_parser_rejects_torn_lines() {
        assert_eq!(decision_line_round("D 7 0 9 at=1,2 by=0 trust=00000000deadbeef"), Some(7));
        assert_eq!(decision_line_round("D 7 0 9 at=1,2 by=0 trust"), None);
        assert_eq!(decision_line_round("D 7 0 9 at=1,2"), None);
        assert_eq!(decision_line_round("garbage"), None);
        assert_eq!(decision_line_round(""), None);
    }

    #[test]
    fn engine_kind_tags_round_trip() {
        for kind in [EngineKind::Sequential, EngineKind::Sharded] {
            assert_eq!(EngineKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(EngineKind::from_tag(9).is_err());
        assert_eq!(EngineKind::from_name("seq").unwrap(), EngineKind::Sequential);
        assert_eq!(EngineKind::from_name("sharded").unwrap(), EngineKind::Sharded);
        assert!(EngineKind::from_name("gpu").is_err());
    }
}
