//! Bounded per-tenant ingest queues with explicit backpressure,
//! deterministic load-shedding, idempotent dedup, and a recovery
//! replay buffer.
//!
//! ## Admission model
//!
//! Records accumulate in a *pending* set while a tick is open. When
//! the router sees a `T` frame it calls [`SharedQueue::end_tick`],
//! which:
//!
//! 1. **Waits** until the worker has fully applied every previously
//!    issued batch (explicit backpressure — the router stops consuming
//!    input, which propagates to the upstream socket, instead of
//!    letting the queue grow). Each wait is counted.
//! 2. **Admits** at most `tick_budget` pending records, chosen by
//!    highest *trust impact* (how many deployed nodes can sense the
//!    stimulus), ties broken by the stable `(time, src, seq)` key.
//!    Admitted records are applied in `(time, src, seq)` order.
//! 3. **Sheds** the rest, counting every one (and logging its key when
//!    shed recording is on).
//! 4. **Advances the dedup highwater of every offered record — shed or
//!    admitted.** This is the crash-replay linchpin: a restarted
//!    upstream re-streams the whole file, and a record that was shed in
//!    the first life must not be resurrected in the second (it would no
//!    longer compete against its original tick batch and the runs would
//!    diverge). Highwaters are snapshotted atomically with engine
//!    state, so the shed set is a function of `(seed, stream)` alone —
//!    independent of queue capacity (any capacity ≥ budget) and of
//!    where a crash lands.
//!
//! Because admission happens only after a full drain, the worker
//! observes every batch against the same engine state in every life of
//! the process — the property the differential shedding tests pin.
//!
//! ## Recovery buffer
//!
//! Every issued item is also appended to a *replay buffer* that is
//! cleared only when the worker commits a snapshot. If the worker
//! wedges or panics, the supervisor rebuilds the tenant from its last
//! snapshot and replays the buffer — zero records lost, no dependence
//! on the upstream still having them. Snapshots are suppressed while
//! replaying (the live highwater map is ahead of the buffer cursor, so
//! a mid-replay snapshot would pair an old engine state with future
//! highwaters).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::wire::{Query, Report};

/// Sizing and accounting policy for one tenant's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePolicy {
    /// Hard bound on issued-but-unapplied records.
    pub capacity: usize,
    /// Records admitted per tick; the rest of the tick's offers shed.
    pub tick_budget: usize,
    /// Keep a log of shed `(tick, src, seq)` keys (tests; costs memory
    /// proportional to total sheds).
    pub record_shed: bool,
}

impl QueuePolicy {
    /// Validates the policy: capacity must cover a full budget.
    ///
    /// # Errors
    ///
    /// A static description when `capacity < tick_budget` or either is
    /// zero.
    pub fn validated(self) -> Result<Self, &'static str> {
        if self.tick_budget == 0 {
            return Err("tick_budget must be at least 1");
        }
        if self.capacity < self.tick_budget {
            return Err("queue capacity must be at least the tick budget");
        }
        Ok(self)
    }

    /// Pending records tolerated while a tick is open; beyond this the
    /// newest offer is shed on arrival (arrival-order tail drop,
    /// deterministic for a deterministic stream).
    #[must_use]
    pub fn pending_cap(&self) -> usize {
        self.capacity.saturating_mul(16)
    }
}

/// One unit of work handed to a tenant worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkItem {
    /// Apply a sensor report to the engine.
    Record(Report),
    /// Tick boundary `n`: flush the decision log, maybe snapshot,
    /// acknowledge the drain.
    TickEnd(u64),
    /// Answer a read-only query on stdout.
    Query(Query),
    /// Flush, snapshot, and exit cleanly.
    Shutdown,
}

/// What happened to an offered record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Entered the pending set; admission decided at tick end.
    Pending,
    /// Already seen (at or below the dedup highwater, or already
    /// pending) — dropped idempotently.
    Duplicate,
    /// Pending set at cap — shed on arrival.
    Overflow,
}

/// Counters mirrored into snapshots and the final report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Records offered (post-parse, pre-dedup).
    pub offered: u64,
    /// Records admitted to the engine.
    pub admitted: u64,
    /// Records shed by budget admission at tick end.
    pub shed_budget: u64,
    /// Records shed on arrival by the pending cap.
    pub shed_overflow: u64,
    /// Idempotent duplicate drops.
    pub duplicates: u64,
    /// Times the router blocked waiting for the worker to drain.
    pub backpressure_waits: u64,
}

impl QueueStats {
    /// Total records shed for any reason.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_budget + self.shed_overflow
    }
}

/// Outcome of closing one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickAdmission {
    /// Records admitted this tick.
    pub admitted: usize,
    /// Records shed by budget this tick.
    pub shed: usize,
}

struct QueueState {
    pending: Vec<Report>,
    pending_keys: BTreeSet<(u64, u64)>,
    overflow_keys: Vec<(u64, u64)>,
    ready: VecDeque<WorkItem>,
    replay: Vec<WorkItem>,
    queries: Vec<Query>,
    highwater: BTreeMap<u64, u64>,
    issued_ticks: u64,
    completed_ticks: u64,
    stats: QueueStats,
    shed_log: Vec<(u64, u64, u64)>,
    closed: bool,
    /// Worker-incarnation fence. [`SharedQueue::recovery_view`] bumps
    /// it, after which the superseded incarnation's `pop`,
    /// `complete_tick`, and snapshot commits are rejected — a worker
    /// the watchdog has replaced (even a false positive under CPU
    /// starvation: it may still be running) can no longer consume
    /// items, acknowledge ticks, or clear the replay buffer out from
    /// under its replacement.
    generation: u64,
}

/// A tenant's ingest queue, shared between the router, its worker, and
/// the watchdog. All waits are condvar-based; poisoned locks are
/// recovered (state is reconstructed from snapshots on worker failure,
/// so a panicking lock-holder cannot corrupt an invariant that
/// matters).
pub struct SharedQueue {
    policy: QueuePolicy,
    state: Mutex<QueueState>,
    work_available: Condvar,
    drained: Condvar,
}

impl SharedQueue {
    /// Creates an empty queue under `policy`.
    #[must_use]
    pub fn new(policy: QueuePolicy) -> Self {
        SharedQueue {
            policy,
            state: Mutex::new(QueueState {
                pending: Vec::new(),
                pending_keys: BTreeSet::new(),
                overflow_keys: Vec::new(),
                ready: VecDeque::new(),
                replay: Vec::new(),
                queries: Vec::new(),
                highwater: BTreeMap::new(),
                issued_ticks: 0,
                completed_ticks: 0,
                stats: QueueStats::default(),
                shed_log: Vec::new(),
                closed: false,
                generation: 0,
            }),
            work_available: Condvar::new(),
            drained: Condvar::new(),
        }
    }

    /// The queue's sizing policy.
    #[must_use]
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Seeds the dedup highwaters (restore path: the snapshot's map).
    pub fn seed_highwater(&self, entries: impl IntoIterator<Item = (u64, u64)>) {
        let mut st = self.lock();
        for (src, seq) in entries {
            let hw = st.highwater.entry(src).or_insert(0);
            *hw = (*hw).max(seq);
        }
    }

    /// Seeds the mirrored counters (restore path).
    pub fn seed_stats(&self, stats: QueueStats) {
        self.lock().stats = stats;
    }

    /// Migration-restore path: marks `issued` ticks as
    /// issued-but-not-yet-complete, so the next [`SharedQueue::end_tick`]
    /// waits for the installed recovery buffer's replay (which completes
    /// ticks `1..=issued`) to settle the engine before admitting a new
    /// batch against it.
    pub fn seed_ticks(&self, issued: u64) {
        self.lock().issued_ticks = issued;
    }

    /// Removes and returns the open tick's pending records (migration
    /// capture). Their dedup highwaters are *not* advanced: a re-offer —
    /// whether by the local fallback after a failed transfer or by the
    /// receiving daemon installing the bundle — admits them normally, in
    /// the same tick batch they would have competed in.
    #[must_use]
    pub fn drain_pending(&self) -> Vec<Report> {
        let mut st = self.lock();
        st.pending_keys.clear();
        std::mem::take(&mut st.pending)
    }

    /// Offers a record. Never blocks.
    pub fn offer(&self, report: Report) -> Offer {
        let mut st = self.lock();
        st.stats.offered += 1;
        let key = (report.src, report.seq);
        let seen = st.highwater.get(&report.src).copied().unwrap_or(0) >= report.seq;
        if seen || st.pending_keys.contains(&key) {
            st.stats.duplicates += 1;
            return Offer::Duplicate;
        }
        if st.pending.len() >= self.policy.pending_cap() {
            st.stats.shed_overflow += 1;
            st.overflow_keys.push(key);
            if self.policy.record_shed {
                let tick = st.issued_ticks + 1;
                st.shed_log.push((tick, report.src, report.seq));
            }
            return Offer::Overflow;
        }
        st.pending.push(report);
        st.pending_keys.insert(key);
        Offer::Pending
    }

    /// Queues a read-only query; flushed to the worker at the next tick
    /// boundary (answers reflect end-of-tick state).
    pub fn offer_query(&self, query: Query) {
        self.lock().queries.push(query);
    }

    /// Closes tick `tick`: waits for the worker to drain all previously
    /// issued work (backpressure), admits up to the budget by greatest
    /// `impact`, sheds and highwaters the rest, then issues the batch.
    ///
    /// `impact` is evaluated after the drain, so it sees the engine's
    /// settled end-of-previous-tick positions — identical in every life
    /// of the process and in both engines.
    pub fn end_tick(&self, tick: u64, impact: impl Fn(&Report) -> u64) -> TickAdmission {
        let mut st = self.lock();
        if st.issued_ticks != st.completed_ticks {
            st.stats.backpressure_waits += 1;
            while st.issued_ticks != st.completed_ticks && !st.closed {
                st = self
                    .drained
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if st.closed {
            return TickAdmission::default();
        }

        // Merge arrival-overflow keys now that the worker is quiescent:
        // highwater mutations happen only here, strictly between the
        // worker's tick-boundary snapshots.
        let overflow: Vec<(u64, u64)> = std::mem::take(&mut st.overflow_keys);
        for (src, seq) in overflow {
            let hw = st.highwater.entry(src).or_insert(0);
            *hw = (*hw).max(seq);
        }

        let mut batch = std::mem::take(&mut st.pending);
        st.pending_keys.clear();
        let mut ranked: Vec<(u64, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, r)| (impact(r), i))
            .collect();
        ranked.sort_by(|(ia, a), (ib, b)| {
            ib.cmp(ia).then_with(|| {
                let ra = &batch[*a];
                let rb = &batch[*b];
                (ra.time, ra.src, ra.seq).cmp(&(rb.time, rb.src, rb.seq))
            })
        });
        let admit = self.policy.tick_budget.min(ranked.len());
        let mut admitted_idx: Vec<usize> = ranked[..admit].iter().map(|&(_, i)| i).collect();
        admitted_idx.sort_by_key(|&i| (batch[i].time, batch[i].src, batch[i].seq));

        let outcome = TickAdmission {
            admitted: admit,
            shed: ranked.len() - admit,
        };
        for &(_, i) in &ranked[admit..] {
            let r = &batch[i];
            let hw = st.highwater.entry(r.src).or_insert(0);
            *hw = (*hw).max(r.seq);
            if self.policy.record_shed {
                st.shed_log.push((tick, r.src, r.seq));
            }
        }
        st.stats.shed_budget += outcome.shed as u64;
        st.stats.admitted += outcome.admitted as u64;

        let mut items: Vec<WorkItem> = Vec::with_capacity(admit + 2);
        for i in admitted_idx {
            let r = std::mem::replace(
                &mut batch[i],
                Report {
                    tenant: 0,
                    time: 0,
                    src: 0,
                    seq: 0,
                    x: 0.0,
                    y: 0.0,
                },
            );
            let hw = st.highwater.entry(r.src).or_insert(0);
            *hw = (*hw).max(r.seq);
            items.push(WorkItem::Record(r));
        }
        let queries = std::mem::take(&mut st.queries);
        items.extend(queries.into_iter().map(WorkItem::Query));
        items.push(WorkItem::TickEnd(tick));

        for item in items {
            // Queries are transient reads: re-answering them after a
            // worker restart would double-print, so they stay out of
            // the recovery buffer.
            if !matches!(item, WorkItem::Query(_)) {
                st.replay.push(item.clone());
            }
            st.ready.push_back(item);
        }
        st.issued_ticks = tick;
        drop(st);
        self.work_available.notify_all();
        outcome
    }

    /// Blocks until a work item is available (or the queue is closed),
    /// then pops it. `None` means closed-and-empty — or a superseded
    /// `generation` — either way: exit. The generation check comes
    /// first so a replaced-but-still-running worker never steals items
    /// (including the final `Shutdown`) from its replacement.
    pub fn pop(&self, generation: u64) -> Option<WorkItem> {
        let mut st = self.lock();
        loop {
            if st.generation != generation {
                return None;
            }
            if let Some(item) = st.ready.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .work_available
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Worker acknowledgment that tick `tick` (and everything issued
    /// before it) is fully applied. Unblocks [`SharedQueue::end_tick`].
    /// Ignored from a superseded generation: only the live incarnation
    /// may acknowledge progress.
    pub fn complete_tick(&self, generation: u64, tick: u64) {
        let mut st = self.lock();
        if st.generation != generation {
            return;
        }
        st.completed_ticks = st.completed_ticks.max(tick);
        drop(st);
        self.drained.notify_all();
    }

    /// Commits a snapshot: runs `write` (the state-file write) and, on
    /// success, clears the replay buffer — atomically with respect to
    /// [`SharedQueue::recovery_view`], under the queue lock. Returns
    /// `Ok(false)` without writing if `generation` is superseded: a
    /// replaced worker must not publish a state file (or clear the
    /// buffer) that its replacement's respawn sequence no longer
    /// accounts for. The write is short (a rename-into-place of an
    /// already-encoded blob) and happens only at tick boundaries, so
    /// holding the lock across it is acceptable.
    pub fn commit_snapshot<E>(
        &self,
        generation: u64,
        write: impl FnOnce() -> Result<(), E>,
    ) -> Result<bool, E> {
        let mut st = self.lock();
        if st.generation != generation {
            return Ok(false);
        }
        write()?;
        st.replay.clear();
        Ok(true)
    }

    /// The dedup highwaters and counters, cloned for a snapshot. Only
    /// meaningful at a tick boundary (which is when workers call it).
    #[must_use]
    pub fn snapshot_view(&self) -> (Vec<(u64, u64)>, QueueStats) {
        let st = self.lock();
        (
            st.highwater.iter().map(|(&s, &q)| (s, q)).collect(),
            st.stats,
        )
    }

    /// Crash recovery: supersedes the current worker generation,
    /// clears undelivered work (the replacement regenerates it from
    /// the buffer), and returns the new generation plus a clone of the
    /// recovery buffer. The buffer itself is retained until the next
    /// snapshot commit, so repeated failures replay from the same
    /// base. Call this *before* reading the tenant state file: the
    /// generation bump is the fence that stops a still-running old
    /// incarnation from committing a newer snapshot after the read.
    #[must_use]
    pub fn recovery_view(&self) -> (u64, Vec<WorkItem>) {
        let mut st = self.lock();
        st.generation += 1;
        st.ready.clear();
        let view = (st.generation, st.replay.clone());
        drop(st);
        // Wake any superseded worker parked in `pop` so it notices the
        // fence and exits instead of sleeping until the next notify.
        self.work_available.notify_all();
        view
    }

    /// Closes the queue after pushing a [`WorkItem::Shutdown`]: the
    /// worker drains remaining work, then exits.
    pub fn close(&self) {
        let mut st = self.lock();
        st.ready.push_back(WorkItem::Shutdown);
        st.closed = true;
        drop(st);
        self.work_available.notify_all();
        self.drained.notify_all();
    }

    /// Whether issued work is still unapplied — the watchdog's "should
    /// the worker be making progress?" predicate.
    #[must_use]
    pub fn has_outstanding(&self) -> bool {
        let st = self.lock();
        st.issued_ticks != st.completed_ticks || !st.ready.is_empty()
    }

    /// Quarantine path: drops undelivered work and marks every issued
    /// tick complete so a router parked in [`SharedQueue::end_tick`]'s
    /// drain wait is released. The recovery buffer is kept — a later
    /// reintegration replays it — so nothing already admitted is lost.
    pub fn abandon_tick(&self) {
        let mut st = self.lock();
        st.ready.clear();
        st.completed_ticks = st.issued_ticks;
        drop(st);
        self.drained.notify_all();
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }

    /// The shed-key log `(tick, src, seq)` — empty unless
    /// [`QueuePolicy::record_shed`] is set.
    #[must_use]
    pub fn shed_log(&self) -> Vec<(u64, u64, u64)> {
        self.lock().shed_log.clone()
    }

    /// Pending records in the open tick (tests / drain accounting).
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.lock().pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: u64, seq: u64, x: f64) -> Report {
        Report {
            tenant: 0,
            time: 0,
            src,
            seq,
            x,
            y: 0.0,
        }
    }

    fn policy(capacity: usize, budget: usize) -> QueuePolicy {
        QueuePolicy {
            capacity,
            tick_budget: budget,
            record_shed: true,
        }
        .validated()
        .unwrap()
    }

    #[test]
    fn admission_prefers_impact_then_stream_order() {
        let q = SharedQueue::new(policy(8, 2));
        q.offer(report(1, 1, 1.0));
        q.offer(report(1, 2, 9.0));
        q.offer(report(1, 3, 9.0));
        q.offer(report(1, 4, 5.0));
        // impact = x as a stand-in metric.
        let out = q.end_tick(1, |r| r.x as u64);
        assert_eq!(out, TickAdmission { admitted: 2, shed: 2 });
        // The two x=9 records win; applied in (time, src, seq) order.
        assert_eq!(
            q.pop(0),
            Some(WorkItem::Record(report(1, 2, 9.0)))
        );
        assert_eq!(
            q.pop(0),
            Some(WorkItem::Record(report(1, 3, 9.0)))
        );
        assert_eq!(q.pop(0), Some(WorkItem::TickEnd(1)));
        assert_eq!(q.shed_log(), vec![(1, 1, 4), (1, 1, 1)]);
    }

    #[test]
    fn shed_records_raise_the_highwater() {
        let q = SharedQueue::new(policy(4, 1));
        q.offer(report(7, 1, 0.0));
        q.offer(report(7, 2, 5.0));
        q.end_tick(1, |r| r.x as u64);
        // seq 1 was shed — but re-offering it is still a duplicate.
        assert_eq!(q.offer(report(7, 1, 0.0)), Offer::Duplicate);
        assert_eq!(q.offer(report(7, 2, 5.0)), Offer::Duplicate);
        assert_eq!(q.offer(report(7, 3, 1.0)), Offer::Pending);
        assert_eq!(q.stats().duplicates, 2);
    }

    #[test]
    fn pending_dedup_catches_same_tick_replays() {
        let q = SharedQueue::new(policy(4, 4));
        assert_eq!(q.offer(report(1, 1, 0.0)), Offer::Pending);
        assert_eq!(q.offer(report(1, 1, 0.0)), Offer::Duplicate);
        assert_eq!(q.pending_len(), 1);
    }

    #[test]
    fn pending_overflow_sheds_on_arrival_and_dedups_later() {
        let q = SharedQueue::new(policy(1, 1));
        for seq in 1..=16 {
            assert_eq!(q.offer(report(1, seq, 0.0)), Offer::Pending);
        }
        assert_eq!(q.offer(report(1, 17, 0.0)), Offer::Overflow);
        let out = q.end_tick(1, |_| 0);
        assert_eq!(out.admitted, 1);
        assert_eq!(out.shed, 15);
        // The overflow-shed record is highwatered like any other.
        assert_eq!(q.offer(report(1, 17, 0.0)), Offer::Duplicate);
        assert_eq!(q.stats().shed_overflow, 1);
        assert_eq!(q.stats().shed_budget, 15);
    }

    #[test]
    fn recovery_buffer_replays_since_last_snapshot() {
        let q = SharedQueue::new(policy(8, 8));
        q.offer(report(1, 1, 0.0));
        q.end_tick(1, |_| 0);
        // Worker applies tick 1 and commits a snapshot.
        while let Some(item) = q.pop(0) {
            if matches!(item, WorkItem::TickEnd(_)) {
                break;
            }
        }
        q.complete_tick(0, 1);
        assert_eq!(q.commit_snapshot(0, || Ok::<(), ()>(())), Ok(true));
        // Tick 2 issued but the worker wedges mid-batch.
        q.offer(report(1, 2, 0.0));
        q.offer(report(1, 3, 0.0));
        q.end_tick(2, |_| 0);
        let _ = q.pop(0); // worker consumed one record, then died
        let (generation, buffer) = q.recovery_view();
        assert_eq!(generation, 1);
        assert_eq!(
            buffer,
            vec![
                WorkItem::Record(report(1, 2, 0.0)),
                WorkItem::Record(report(1, 3, 0.0)),
                WorkItem::TickEnd(2),
            ]
        );
        // Undelivered work was cleared — the replacement replays the
        // buffer instead.
        q.close();
        assert_eq!(q.pop(generation), Some(WorkItem::Shutdown));
        assert_eq!(q.pop(generation), None);
    }

    #[test]
    fn close_unblocks_pop_and_end_tick() {
        let q = std::sync::Arc::new(SharedQueue::new(policy(4, 1)));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Some(WorkItem::Shutdown));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.end_tick(5, |_| 0), TickAdmission::default());
    }

    #[test]
    fn queries_flush_at_tick_end_but_skip_the_replay_buffer() {
        let q = SharedQueue::new(policy(4, 4));
        q.offer_query(Query::Round { tenant: 0 });
        q.offer(report(1, 1, 0.0));
        q.end_tick(1, |_| 0);
        assert_eq!(q.pop(0), Some(WorkItem::Record(report(1, 1, 0.0))));
        assert_eq!(q.pop(0), Some(WorkItem::Query(Query::Round { tenant: 0 })));
        assert_eq!(q.pop(0), Some(WorkItem::TickEnd(1)));
        let (_, buffer) = q.recovery_view();
        assert!(!buffer.iter().any(|i| matches!(i, WorkItem::Query(_))));
    }

    #[test]
    fn superseded_generation_is_fenced_out() {
        let q = std::sync::Arc::new(SharedQueue::new(policy(8, 8)));
        q.offer(report(1, 1, 0.0));
        q.end_tick(1, |_| 0);
        let (generation, buffer) = q.recovery_view();
        assert_eq!(buffer.len(), 2); // record + tick end
        // The old incarnation (generation 0) can no longer consume
        // items, acknowledge ticks, or commit snapshots...
        assert_eq!(q.pop(0), None);
        q.complete_tick(0, 1);
        assert!(q.has_outstanding(), "stale complete_tick must be ignored");
        let mut wrote = false;
        assert_eq!(
            q.commit_snapshot(0, || {
                wrote = true;
                Ok::<(), ()>(())
            }),
            Ok(false)
        );
        assert!(!wrote, "stale snapshot write must not run");
        // ...while the replacement operates normally.
        q.complete_tick(generation, 1);
        assert!(!q.has_outstanding());
        assert_eq!(q.commit_snapshot(generation, || Ok::<(), ()>(())), Ok(true));
        let (_, buffer) = q.recovery_view();
        assert!(buffer.is_empty(), "commit cleared the replay buffer");
        // A stale worker parked in pop is woken by the fence.
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let _ = q.recovery_view();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn drained_pending_records_are_not_highwatered() {
        let q = SharedQueue::new(policy(4, 4));
        q.offer(report(1, 1, 0.0));
        q.offer(report(1, 2, 0.0));
        let captured = q.drain_pending();
        assert_eq!(captured.len(), 2);
        assert_eq!(q.pending_len(), 0);
        // Re-offering the captured records admits them normally.
        assert_eq!(q.offer(report(1, 1, 0.0)), Offer::Pending);
        assert_eq!(q.offer(report(1, 2, 0.0)), Offer::Pending);
    }

    #[test]
    fn seeded_ticks_make_end_tick_wait_for_replay_completion() {
        let q = std::sync::Arc::new(SharedQueue::new(policy(4, 4)));
        q.seed_ticks(3);
        assert!(q.has_outstanding());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.end_tick(4, |_| 0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Replay completing tick 3 releases the parked end_tick.
        q.complete_tick(0, 3);
        assert_eq!(h.join().unwrap(), TickAdmission::default());
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(QueuePolicy { capacity: 0, tick_budget: 1, record_shed: false }
            .validated()
            .is_err());
        assert!(QueuePolicy { capacity: 4, tick_budget: 0, record_shed: false }
            .validated()
            .is_err());
        assert!(QueuePolicy { capacity: 2, tick_budget: 4, record_shed: false }
            .validated()
            .is_err());
    }
}
