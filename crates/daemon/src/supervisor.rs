//! The daemon proper: per-tenant worker threads, the router that feeds
//! them, and the watchdog that restarts them.
//!
//! ## Threads
//!
//! - **Router** (the caller of [`Daemon::run`]): reads frames, offers
//!   records to tenant queues, closes ticks (which applies
//!   backpressure — see `queue`), and honours shutdown requests.
//! - **Workers** (one per tenant): pop admitted work, run engine
//!   rounds, append decision lines, snapshot on a tick cadence.
//! - **Watchdog**: an Impact-style failure detector. Each tenant
//!   carries a trust level `e^(-λ·v)` where `v` counts consecutive
//!   missed progress checks (a check is missed when the heartbeat did
//!   not advance *and* work is outstanding — an idle worker is
//!   healthy). A worker whose trust falls under the floor, or whose
//!   thread has died, is restarted from its last snapshot plus the
//!   queue's recovery buffer — zero admitted records lost. A tenant
//!   that keeps failing is quarantined (its ingest shed, its tick
//!   barrier released so other tenants keep flowing), then
//!   reintegrated on probation after a cool-down.
//!
//! ## Decision-log epochs
//!
//! A wedged worker may come back to life *after* its replacement has
//! truncated and reopened the decision log; its buffered lines must
//! not reach the file. All log writes go through a [`LogSink`] guarded
//! by an epoch number — writes from a superseded incarnation are
//! silently dropped.

use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tibfit_experiments::replay::{tenant_seed, FieldScenario};
use tibfit_faults::ProcessCrashPlan;
use tibfit_sim::shutdown;

use crate::backoff::JitteredBackoff;
use crate::latency;
use crate::queue::{QueuePolicy, QueueStats, SharedQueue, WorkItem};
use crate::state::{
    decision_log_path, encode_tenant_state, read_tenant_state, tenant_state_path,
    truncate_decision_log, write_tenant_state,
};
use crate::tenant::{EngineKind, PositionView, Tenant};
use crate::wire::{parse_line, Frame, IngestError, Query, Report};
use crate::DaemonError;

/// Impact-style watchdog tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogPolicy {
    /// Milliseconds between progress checks.
    pub check_interval_ms: u64,
    /// Trust decay per missed check: trust = `e^(-lambda * misses)`.
    pub lambda: f64,
    /// Suspect (and restart) a worker whose trust falls below this.
    pub trust_floor: f64,
    /// Sliding window, in checks, for counting restarts.
    pub crash_loop_window: u64,
    /// Restarts within the window that trigger quarantine.
    pub crash_loop_limit: usize,
    /// Quarantine cool-down and probation length, in checks.
    pub probation_checks: u64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            check_interval_ms: 20,
            lambda: 0.6,
            trust_floor: 0.25,
            crash_loop_window: 500,
            crash_loop_limit: 3,
            probation_checks: 25,
        }
    }
}

impl WatchdogPolicy {
    /// Checks a worker must miss before its trust crosses the floor.
    #[must_use]
    pub fn misses_to_suspect(&self) -> u32 {
        let mut v = 0u32;
        while (-self.lambda * f64::from(v + 1)).exp() >= self.trust_floor && v < 1_000 {
            v += 1;
        }
        v + 1
    }
}

/// Test-only fault injection for a tenant worker (compiled in, never
/// reachable from the CLI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFault {
    /// First incarnation wedges (stops heartbeating, holds no locks)
    /// just before applying this round.
    pub wedge_at_round: Option<u64>,
    /// Incarnations below `fail_incarnations` panic just before
    /// applying this round.
    pub panic_at_round: Option<u64>,
    /// How many incarnations the panic applies to (crash-loop length).
    pub fail_incarnations: u64,
}

/// Full daemon configuration.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Hosted field count.
    pub tenants: usize,
    /// Master seed; tenant `t` runs scenario seed
    /// [`tenant_seed`]`(master_seed, t)`.
    pub master_seed: u64,
    /// Engine flavor for every tenant.
    pub engine: EngineKind,
    /// Worker threads per sharded engine.
    pub threads: usize,
    /// Per-tenant queue sizing.
    pub queue: QueuePolicy,
    /// Snapshot every N ticks (≥ 1).
    pub snapshot_every: u64,
    /// Tenant state files live here.
    pub state_dir: PathBuf,
    /// Decision logs live here.
    pub decisions_dir: PathBuf,
    /// Watchdog tuning.
    pub watchdog: WatchdogPolicy,
    /// Builds a tenant's scenario from its seed (tests swap in smaller
    /// fields; production uses [`FieldScenario::mobile`]).
    pub scenario: fn(u64) -> FieldScenario,
    /// Deterministic process-kill hook (crash harness).
    pub crash_plan: ProcessCrashPlan,
    /// Stop ingesting and drain cleanly after this many ticks
    /// (rolling-restart harness).
    pub drain_after_ticks: Option<u64>,
    /// Per-tenant injected worker faults (tests).
    pub faults: Vec<(usize, WorkerFault)>,
}

impl DaemonConfig {
    /// A standard configuration rooted at `state_dir`.
    #[must_use]
    pub fn standard(tenants: usize, master_seed: u64, state_dir: PathBuf) -> Self {
        let decisions_dir = state_dir.join("decisions");
        DaemonConfig {
            tenants,
            master_seed,
            engine: EngineKind::Sequential,
            threads: 2,
            queue: QueuePolicy {
                capacity: 1024,
                tick_budget: 64,
                record_shed: false,
            },
            snapshot_every: 4,
            state_dir,
            decisions_dir,
            watchdog: WatchdogPolicy::default(),
            scenario: FieldScenario::mobile,
            crash_plan: ProcessCrashPlan::disabled(),
            drain_after_ticks: None,
            faults: Vec::new(),
        }
    }

    fn validated(&self) -> Result<(), DaemonError> {
        if self.tenants == 0 {
            return Err(DaemonError::Config("at least one tenant required".into()));
        }
        if self.threads == 0 {
            return Err(DaemonError::Config("threads must be at least 1".into()));
        }
        if self.snapshot_every == 0 {
            return Err(DaemonError::Config("snapshot-every must be at least 1".into()));
        }
        self.queue
            .validated()
            .map_err(|e| DaemonError::Config(e.into()))?;
        Ok(())
    }

    fn fault_for(&self, id: usize) -> WorkerFault {
        self.faults
            .iter()
            .find(|(t, _)| *t == id)
            .map(|&(_, f)| f)
            .unwrap_or_default()
    }
}

/// Epoch-guarded append sink for one tenant's decision log.
pub struct LogSink {
    path: PathBuf,
    epoch: u64,
    file: Option<BufWriter<File>>,
}

impl LogSink {
    fn new(path: PathBuf) -> Self {
        LogSink {
            path,
            epoch: 0,
            file: None,
        }
    }

    /// Supersedes the current epoch without opening a new file: the
    /// old incarnation's unflushed buffer is dropped and all its
    /// future writes rejected, while the log file itself stays
    /// untouched for the respawn sequence to truncate. `reopen` then
    /// picks up the truncated file (a fresh inode — truncation is
    /// rename-into-place) under yet another epoch.
    fn supersede(&mut self) {
        if let Some(old) = self.file.take() {
            let _ = old.into_parts();
        }
        self.epoch += 1;
    }

    /// Supersedes the current epoch (dropping its unflushed buffer —
    /// the recovery replay regenerates those lines) and reopens the
    /// file for appending. Returns the new epoch.
    fn reopen(&mut self) -> Result<u64, DaemonError> {
        // Drop, don't flush: the old buffer may hold lines the
        // truncation just removed.
        if let Some(old) = self.file.take() {
            let _ = old.into_parts();
        }
        self.epoch += 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(DaemonError::Io)?;
        self.file = Some(BufWriter::new(file));
        Ok(self.epoch)
    }

    /// Appends a pre-formatted block of newline-terminated decision
    /// lines. The worker batches lines locally and pushes one block per
    /// tick, so the per-record cost is a `String` append instead of a
    /// mutex acquisition; the epoch guard applies to the whole block,
    /// which keeps supersession all-or-nothing (a superseded worker's
    /// buffered lines vanish exactly like its dropped `BufWriter`
    /// contents used to — recovery replay regenerates them).
    fn write_block(&mut self, epoch: u64, block: &str) -> Result<(), DaemonError> {
        if epoch != self.epoch {
            return Ok(());
        }
        if let Some(f) = self.file.as_mut() {
            f.write_all(block.as_bytes()).map_err(DaemonError::Io)?;
        }
        Ok(())
    }

    fn flush(&mut self, epoch: u64) -> Result<(), DaemonError> {
        if epoch != self.epoch {
            return Ok(());
        }
        if let Some(f) = self.file.as_mut() {
            f.flush().map_err(DaemonError::Io)?;
        }
        Ok(())
    }
}

/// Health state byte shared with the router.
const HEALTH_ACTIVE: u8 = 0;
const HEALTH_QUARANTINED: u8 = 1;
const HEALTH_PROBATION: u8 = 2;

/// Counters and flags shared by router, worker, and watchdog.
struct SlotShared {
    heartbeat: AtomicU64,
    applied: AtomicU64,
    shed_quarantine: AtomicU64,
    health: AtomicU8,
    /// Wall-clock latency of each answered query, for the p99 figure.
    query_latency: latency::Histogram,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Active,
    Quarantined { until_check: u64 },
    Probation { until_check: u64 },
}

struct SlotCore {
    id: usize,
    queue: Arc<SharedQueue>,
    shared: Arc<SlotShared>,
    sink: Arc<Mutex<LogSink>>,
    positions: Arc<PositionView>,
    cancel: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<(), DaemonError>>>,
    health: Health,
    misses: u32,
    last_heartbeat: u64,
    incarnation: u64,
    restarts: u64,
    restart_checks: VecDeque<u64>,
    last_error: Option<String>,
}

struct SupervisorShared {
    slots: Mutex<Vec<SlotCore>>,
    stop: AtomicBool,
    /// Minimum observed Σ-trust across checks, as f64 bits.
    min_impact_bits: AtomicU64,
}

fn lock_slots(sup: &SupervisorShared) -> MutexGuard<'_, Vec<SlotCore>> {
    sup.slots.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-tenant wrap-up in the final report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant index.
    pub id: usize,
    /// Event rounds applied across all incarnations of this process.
    pub applied: u64,
    /// Queue counters (offered/admitted/shed/duplicates/waits).
    pub stats: QueueStats,
    /// Records dropped while the tenant was quarantined.
    pub shed_quarantine: u64,
    /// Worker restarts performed by the watchdog.
    pub restarts: u64,
    /// Whether the tenant ended the run quarantined.
    pub quarantined: bool,
    /// Last worker error, if any incarnation failed with one.
    pub last_error: Option<String>,
}

/// What a completed run did.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    /// Ticks closed.
    pub ticks: u64,
    /// Lines rejected by the parser, total.
    pub rejected: u64,
    /// Rejection breakdown by [`IngestError::kind`].
    pub rejected_by_kind: Vec<(String, u64)>,
    /// Per-tenant summaries, tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Whether ingest ended by a drain request (signal or
    /// `drain_after_ticks`) rather than end-of-stream.
    pub drained_early: bool,
    /// Minimum Σ(e^(-λ·v))/tenants the watchdog observed — 1.0 means
    /// no tenant ever missed a progress check.
    pub min_impact_trust: f64,
}

struct WorkerTask {
    incarnation: u64,
    /// Queue-generation fence: the worker passes this to every `pop`,
    /// `complete_tick`, and snapshot commit, so once the watchdog
    /// supersedes it (respawn bumps the queue generation) it can no
    /// longer consume work or publish state, even if still running.
    generation: u64,
    tenant: Tenant,
    queue: Arc<SharedQueue>,
    shared: Arc<SlotShared>,
    sink: Arc<Mutex<LogSink>>,
    epoch: u64,
    cancel: Arc<AtomicBool>,
    state_path: PathBuf,
    snapshot_every: u64,
    fault: WorkerFault,
    recovery: Vec<WorkItem>,
    backoff_seed: u64,
}

enum Step {
    Continue,
    Exit,
}

fn lock_sink(sink: &Mutex<LogSink>) -> MutexGuard<'_, LogSink> {
    sink.lock().unwrap_or_else(PoisonError::into_inner)
}

fn write_snapshot(task: &WorkerTask) -> Result<(), DaemonError> {
    let (highwater, stats) = task.queue.snapshot_view();
    let bytes = encode_tenant_state(&task.tenant, &highwater, stats)?;
    let mut backoff = JitteredBackoff::new(task.backoff_seed, 2, 64);
    let mut attempts = 0u32;
    loop {
        // The state-file write and the replay-buffer clear commit
        // atomically under the queue lock, fenced by generation: a
        // superseded worker must not publish a snapshot the respawn
        // sequence no longer accounts for (it already read the old
        // state file), nor clear the replay its replacement needs.
        match task.queue.commit_snapshot(task.generation, || {
            write_tenant_state(&task.state_path, &bytes)
        }) {
            Ok(_committed) => return Ok(()),
            Err(e) if attempts < 3 => {
                attempts += 1;
                std::thread::sleep(backoff.next_delay());
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

fn answer_query(tenant: &Tenant, query: Query) {
    match query {
        Query::Trust { tenant: id, node } => match tenant.trust_of(node) {
            Some(v) => println!("A trust {id} {node} {v}"),
            None => println!("A trust {id} {node} -"),
        },
        Query::Round { tenant: id } => println!("A round {id} {}", tenant.round()),
    }
}

/// Worker-local decision-line buffer above this size is pushed to the
/// sink mid-tick, bounding memory on record-dense ticks.
const LINE_BUFFER_FLUSH_BYTES: usize = 64 * 1024;

/// Pushes the worker's buffered decision lines to the sink as one
/// block and clears the buffer.
fn flush_lines(task: &WorkerTask, buf: &mut String) -> Result<(), DaemonError> {
    if !buf.is_empty() {
        lock_sink(&task.sink).write_block(task.epoch, buf)?;
        buf.clear();
    }
    Ok(())
}

fn process_item(
    task: &mut WorkerTask,
    item: WorkItem,
    live: bool,
    buf: &mut String,
) -> Result<Step, DaemonError> {
    match item {
        WorkItem::Record(r) => {
            let next_round = task.tenant.round() + 1;
            if task.fault.wedge_at_round == Some(next_round) && task.incarnation == 0 {
                while !task.cancel.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return Ok(Step::Exit);
            }
            if task.fault.panic_at_round == Some(next_round)
                && task.incarnation < task.fault.fail_incarnations
            {
                panic!(
                    "injected worker fault: tenant round {next_round}, incarnation {}",
                    task.incarnation
                );
            }
            // Buffer the line worker-side instead of taking the sink
            // mutex per record; blocks go to the sink at tick
            // boundaries (or at the size cap on record-dense ticks).
            task.tenant.apply_into(&r, buf);
            buf.push('\n');
            if buf.len() >= LINE_BUFFER_FLUSH_BYTES {
                flush_lines(task, buf)?;
            }
            task.shared.applied.fetch_add(1, Ordering::SeqCst);
            task.shared.heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        WorkItem::TickEnd(t) => {
            flush_lines(task, buf)?;
            lock_sink(&task.sink).flush(task.epoch)?;
            // Snapshots are suppressed during recovery replay: the live
            // highwater map is ahead of the replay cursor, and pairing
            // it with a mid-replay engine state would poison a later
            // process restart.
            if live && t % task.snapshot_every == 0 {
                write_snapshot(task)?;
            }
            task.queue.complete_tick(task.generation, t);
            task.shared.heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        WorkItem::Query(q) => {
            let started = Instant::now();
            answer_query(&task.tenant, q);
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            task.shared.query_latency.record(nanos);
            task.shared.heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        WorkItem::Shutdown => {
            flush_lines(task, buf)?;
            lock_sink(&task.sink).flush(task.epoch)?;
            write_snapshot(task)?;
            return Ok(Step::Exit);
        }
    }
    Ok(Step::Continue)
}

fn run_worker(mut task: WorkerTask) -> Result<(), DaemonError> {
    let mut buf = String::new();
    let recovery = std::mem::take(&mut task.recovery);
    for item in recovery {
        if let Step::Exit = process_item(&mut task, item, false, &mut buf)? {
            return Ok(());
        }
    }
    loop {
        let Some(item) = task.queue.pop(task.generation) else {
            // Queue closed (or this incarnation superseded) without a
            // Shutdown item reaching us: push what we have and flush
            // the sink to disk — nothing later will. A superseded
            // incarnation's block and flush are epoch-dropped.
            flush_lines(&task, &mut buf)?;
            lock_sink(&task.sink).flush(task.epoch)?;
            return Ok(());
        };
        if let Step::Exit = process_item(&mut task, item, true, &mut buf)? {
            return Ok(());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_incarnation(
    cfg: &DaemonConfig,
    id: usize,
    tenant: Tenant,
    queue: Arc<SharedQueue>,
    shared: Arc<SlotShared>,
    sink: Arc<Mutex<LogSink>>,
    epoch: u64,
    cancel: Arc<AtomicBool>,
    incarnation: u64,
    generation: u64,
    recovery: Vec<WorkItem>,
) -> JoinHandle<Result<(), DaemonError>> {
    let task = WorkerTask {
        incarnation,
        generation,
        tenant,
        queue,
        shared,
        sink,
        epoch,
        cancel,
        state_path: tenant_state_path(&cfg.state_dir, id),
        snapshot_every: cfg.snapshot_every,
        fault: cfg.fault_for(id),
        recovery,
        backoff_seed: cfg.master_seed ^ (id as u64) ^ (incarnation << 32),
    };
    std::thread::Builder::new()
        .name(format!("tibfit-tenant-{id}"))
        .spawn(move || run_worker(task))
        .expect("spawning a tenant worker thread")
}

/// Rebuilds a tenant for a replacement incarnation: last snapshot if
/// one exists, otherwise fresh from the scenario (the recovery buffer
/// then replays everything admitted since that base).
fn rebuild_tenant(cfg: &DaemonConfig, id: usize) -> Result<(Tenant, u64), DaemonError> {
    let scenario = (cfg.scenario)(tenant_seed(cfg.master_seed, id));
    let path = tenant_state_path(&cfg.state_dir, id);
    match read_tenant_state(&path)? {
        Some(state) => {
            if state.seed != scenario.seed {
                return Err(DaemonError::State(format!(
                    "tenant {id} state file has seed {} but the configuration expects {}",
                    state.seed, scenario.seed
                )));
            }
            let tenant = Tenant::from_blob(id, scenario, cfg.engine, cfg.threads, &state.blob)?;
            let round = state.round;
            Ok((tenant, round))
        }
        None => {
            let tenant = Tenant::new(id, scenario, cfg.engine, cfg.threads)?;
            Ok((tenant, 0))
        }
    }
}

/// Replaces a slot's worker: supersede the log epoch, rebuild the
/// tenant from its last snapshot, truncate the log to match, replay
/// the recovery buffer. On failure the tenant is quarantined instead.
fn respawn_slot(cfg: &DaemonConfig, slot: &mut SlotCore, probation_until: u64) {
    slot.cancel.store(true, Ordering::SeqCst);
    if let Some(handle) = slot.handle.take() {
        if handle.is_finished() {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => slot.last_error = Some(e.to_string()),
                Err(_) => {
                    slot.last_error = Some("worker panicked".into());
                }
            }
        }
        // A wedged (unfinished) handle is detached: its epoch is
        // superseded and its cancel flag set, so it can only exit.
    }
    let outcome: Result<(), DaemonError> = (|| {
        // Fence FIRST: bumping the queue generation stops a
        // still-running old incarnation (a wedge, or a watchdog false
        // positive under CPU starvation) from consuming items,
        // acknowledging ticks, or committing a snapshot after this
        // point. Only then is it safe to read the state file and
        // truncate the log — nothing can move them anymore.
        let (generation, recovery) = slot.queue.recovery_view();
        // Epoch-supersede the sink before truncating: a woken old
        // worker exits through its flush path, and its block must be
        // rejected rather than appended to a log we are about to (or
        // just did) truncate.
        lock_sink(&slot.sink).supersede();
        let (mut tenant, round) = rebuild_tenant(cfg, slot.id)?;
        let log_path = decision_log_path(&cfg.decisions_dir, slot.id);
        truncate_decision_log(&log_path, round)?;
        let epoch = lock_sink(&slot.sink).reopen()?;
        tenant.set_positions(Arc::clone(&slot.positions));
        slot.cancel = Arc::new(AtomicBool::new(false));
        slot.incarnation += 1;
        slot.handle = Some(spawn_incarnation(
            cfg,
            slot.id,
            tenant,
            Arc::clone(&slot.queue),
            Arc::clone(&slot.shared),
            Arc::clone(&slot.sink),
            epoch,
            Arc::clone(&slot.cancel),
            slot.incarnation,
            generation,
            recovery,
        ));
        Ok(())
    })();
    match outcome {
        Ok(()) => {
            slot.health = Health::Probation {
                until_check: probation_until,
            };
            slot.shared.health.store(HEALTH_PROBATION, Ordering::SeqCst);
            slot.misses = 0;
            slot.last_heartbeat = slot.shared.heartbeat.load(Ordering::SeqCst);
        }
        Err(e) => {
            slot.last_error = Some(e.to_string());
            slot.health = Health::Quarantined {
                until_check: probation_until,
            };
            slot.shared.health.store(HEALTH_QUARANTINED, Ordering::SeqCst);
            slot.queue.abandon_tick();
        }
    }
}

fn watchdog_check(cfg: &DaemonConfig, slot: &mut SlotCore, check_no: u64) -> f64 {
    let policy = cfg.watchdog;
    match slot.health {
        Health::Quarantined { until_check } => {
            if check_no >= until_check {
                slot.restarts += 1;
                respawn_slot(cfg, slot, check_no + policy.probation_checks);
            }
            return 0.0;
        }
        Health::Probation { until_check } => {
            if check_no >= until_check {
                slot.health = Health::Active;
                slot.shared.health.store(HEALTH_ACTIVE, Ordering::SeqCst);
            }
        }
        Health::Active => {}
    }

    let finished = slot.handle.as_ref().is_none_or(JoinHandle::is_finished);
    let heartbeat = slot.shared.heartbeat.load(Ordering::SeqCst);
    let advanced = heartbeat != slot.last_heartbeat;
    slot.last_heartbeat = heartbeat;
    let outstanding = slot.queue.has_outstanding();

    if finished {
        // A worker only returns cleanly at shutdown, and the watchdog
        // is stopped before shutdown begins: a finished thread here
        // died (panic or error).
        slot.misses = policy.misses_to_suspect();
    } else if advanced || !outstanding {
        slot.misses = slot.misses.saturating_sub(1);
    } else {
        slot.misses += 1;
    }

    let trust = (-policy.lambda * f64::from(slot.misses)).exp();
    if trust < policy.trust_floor || finished {
        slot.restart_checks.push_back(check_no);
        while slot
            .restart_checks
            .front()
            .is_some_and(|&c| c + policy.crash_loop_window < check_no)
        {
            slot.restart_checks.pop_front();
        }
        slot.restarts += 1;
        if slot.restart_checks.len() > policy.crash_loop_limit {
            slot.cancel.store(true, Ordering::SeqCst);
            if let Some(handle) = slot.handle.take() {
                if handle.is_finished() {
                    let _ = handle.join();
                }
            }
            slot.health = Health::Quarantined {
                until_check: check_no + policy.probation_checks,
            };
            slot.shared.health.store(HEALTH_QUARANTINED, Ordering::SeqCst);
            slot.queue.abandon_tick();
            return 0.0;
        }
        respawn_slot(cfg, slot, check_no + policy.probation_checks);
        // Report the trust observed at detection time — respawn resets
        // the miss counter, but this check still saw a failed worker.
        return trust;
    }
    trust
}

fn watchdog_loop(cfg: Arc<DaemonConfig>, sup: Arc<SupervisorShared>) {
    let interval = Duration::from_millis(cfg.watchdog.check_interval_ms.max(1));
    let mut check_no = 0u64;
    while !sup.stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        check_no += 1;
        let mut slots = lock_slots(&sup);
        let mut sum = 0.0;
        let n = slots.len().max(1);
        for slot in slots.iter_mut() {
            sum += watchdog_check(&cfg, slot, check_no);
        }
        drop(slots);
        let impact = sum / n as f64;
        let prev = f64::from_bits(sup.min_impact_bits.load(Ordering::SeqCst));
        if impact < prev {
            sup.min_impact_bits
                .store(impact.to_bits(), Ordering::SeqCst);
        }
    }
}

/// Router-side view of one tenant (no supervisor lock on the hot path).
struct RouterSlot {
    queue: Arc<SharedQueue>,
    positions: Arc<PositionView>,
    shared: Arc<SlotShared>,
}

/// The daemon: build with [`Daemon::new`] (which resumes from any
/// existing state directory), then feed it a frame stream with
/// [`Daemon::run`].
pub struct Daemon {
    cfg: Arc<DaemonConfig>,
    sup: Arc<SupervisorShared>,
    router: Vec<RouterSlot>,
    watchdog: Option<JoinHandle<()>>,
    ticks: u64,
}

impl Daemon {
    /// Builds (or resumes) every tenant and starts workers + watchdog.
    ///
    /// # Errors
    ///
    /// Configuration validation, state-file corruption or seed
    /// mismatch, engine construction failure, or I/O errors creating
    /// the state directories.
    pub fn new(cfg: DaemonConfig) -> Result<Self, DaemonError> {
        cfg.validated()?;
        std::fs::create_dir_all(&cfg.state_dir).map_err(DaemonError::Io)?;
        std::fs::create_dir_all(&cfg.decisions_dir).map_err(DaemonError::Io)?;
        let cfg = Arc::new(cfg);
        let mut slots = Vec::with_capacity(cfg.tenants);
        let mut router = Vec::with_capacity(cfg.tenants);
        for id in 0..cfg.tenants {
            let scenario = (cfg.scenario)(tenant_seed(cfg.master_seed, id));
            let path = tenant_state_path(&cfg.state_dir, id);
            let queue = Arc::new(SharedQueue::new(cfg.queue));
            let (tenant, round) = match read_tenant_state(&path)? {
                Some(state) => {
                    if state.seed != scenario.seed {
                        return Err(DaemonError::State(format!(
                            "tenant {id} state file has seed {} but the configuration expects {}",
                            state.seed, scenario.seed
                        )));
                    }
                    let tenant =
                        Tenant::from_blob(id, scenario, cfg.engine, cfg.threads, &state.blob)?;
                    queue.seed_highwater(state.highwater.iter().copied());
                    queue.seed_stats(state.stats);
                    (tenant, state.round)
                }
                None => (
                    Tenant::new(id, scenario, cfg.engine, cfg.threads)?,
                    0,
                ),
            };
            let log_path = decision_log_path(&cfg.decisions_dir, id);
            truncate_decision_log(&log_path, round)?;
            let sink = Arc::new(Mutex::new(LogSink::new(log_path)));
            let epoch = lock_sink(&sink).reopen()?;
            let positions = tenant.positions();
            let shared = Arc::new(SlotShared {
                heartbeat: AtomicU64::new(0),
                applied: AtomicU64::new(0),
                shed_quarantine: AtomicU64::new(0),
                health: AtomicU8::new(HEALTH_ACTIVE),
                query_latency: latency::Histogram::new(),
            });
            let cancel = Arc::new(AtomicBool::new(false));
            let handle = spawn_incarnation(
                &cfg,
                id,
                tenant,
                Arc::clone(&queue),
                Arc::clone(&shared),
                Arc::clone(&sink),
                epoch,
                Arc::clone(&cancel),
                0,
                0,
                Vec::new(),
            );
            router.push(RouterSlot {
                queue: Arc::clone(&queue),
                positions: Arc::clone(&positions),
                shared: Arc::clone(&shared),
            });
            slots.push(SlotCore {
                id,
                queue,
                shared,
                sink,
                positions,
                cancel,
                handle: Some(handle),
                health: Health::Active,
                misses: 0,
                last_heartbeat: 0,
                incarnation: 0,
                restarts: 0,
                restart_checks: VecDeque::new(),
                last_error: None,
            });
        }
        let sup = Arc::new(SupervisorShared {
            slots: Mutex::new(slots),
            stop: AtomicBool::new(false),
            min_impact_bits: AtomicU64::new(1.0f64.to_bits()),
        });
        let watchdog = std::thread::Builder::new()
            .name("tibfit-watchdog".into())
            .spawn({
                let cfg = Arc::clone(&cfg);
                let sup = Arc::clone(&sup);
                move || watchdog_loop(cfg, sup)
            })
            .expect("spawning the watchdog thread");
        Ok(Daemon {
            cfg,
            sup,
            router,
            watchdog: Some(watchdog),
            ticks: 0,
        })
    }

    /// Merged p99 query-answer latency across every tenant slot, in
    /// microseconds. Zero until the first query is answered.
    #[must_use]
    pub fn query_latency_p99_us(&self) -> f64 {
        let merged = latency::Histogram::new();
        for slot in &self.router {
            merged.merge_from(&slot.shared.query_latency);
        }
        #[allow(clippy::cast_precision_loss)]
        let ns = merged.percentile(99.0) as f64;
        ns / 1_000.0
    }

    fn close_tick(&mut self) {
        self.ticks += 1;
        let tick = self.ticks;
        for slot in &self.router {
            if slot.shared.health.load(Ordering::SeqCst) == HEALTH_QUARANTINED {
                continue;
            }
            let positions = Arc::clone(&slot.positions);
            slot.queue
                .end_tick(tick, move |r| positions.impact_of(r.x, r.y));
        }
    }

    /// Streams newline-framed input until end-of-stream, a shutdown
    /// signal, or the configured drain point; then drains every tenant
    /// (final snapshot included) and reports.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] on input failure; worker errors surface in
    /// the report, not here (the daemon outlives its workers). Call
    /// once: the run ends with a full drain and worker shutdown.
    pub fn run(&mut self, input: impl BufRead) -> Result<DaemonReport, DaemonError> {
        let mut rejected = 0u64;
        let mut rejected_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut drained_early = false;
        let mut input = input;
        let mut raw = Vec::new();
        loop {
            if shutdown::requested() {
                drained_early = true;
                break;
            }
            raw.clear();
            let n = input.read_until(b'\n', &mut raw).map_err(DaemonError::Io)?;
            if n == 0 {
                break;
            }
            let parsed = match std::str::from_utf8(&raw) {
                Ok(text) => parse_line(text.trim_end_matches('\n')),
                Err(_) => Err(IngestError::NotUtf8),
            };
            match parsed {
                Ok(None) => {}
                Ok(Some(Frame::Report(r))) => self.route_report(r, &mut rejected, &mut rejected_by_kind),
                Ok(Some(Frame::Query(q))) => self.route_query(q, &mut rejected, &mut rejected_by_kind),
                Ok(Some(Frame::Tick)) => {
                    self.close_tick();
                    if self.cfg.crash_plan.fires_after(self.ticks) {
                        self.cfg.crash_plan.execute();
                    }
                    if self
                        .cfg
                        .drain_after_ticks
                        .is_some_and(|d| self.ticks >= d)
                    {
                        drained_early = true;
                        break;
                    }
                }
                Err(e) => {
                    rejected += 1;
                    *rejected_by_kind.entry(e.kind()).or_insert(0) += 1;
                }
            }
        }
        self.finish(rejected, rejected_by_kind, drained_early)
    }

    fn route_report(
        &self,
        r: Report,
        rejected: &mut u64,
        by_kind: &mut BTreeMap<&'static str, u64>,
    ) {
        let Some(slot) = self.router.get(r.tenant) else {
            *rejected += 1;
            *by_kind.entry("unknown_tenant").or_insert(0) += 1;
            return;
        };
        if slot.shared.health.load(Ordering::SeqCst) == HEALTH_QUARANTINED {
            slot.shared.shed_quarantine.fetch_add(1, Ordering::SeqCst);
            return;
        }
        slot.queue.offer(r);
    }

    fn route_query(
        &self,
        q: Query,
        rejected: &mut u64,
        by_kind: &mut BTreeMap<&'static str, u64>,
    ) {
        let id = match q {
            Query::Trust { tenant, .. } | Query::Round { tenant } => tenant,
        };
        let Some(slot) = self.router.get(id) else {
            *rejected += 1;
            *by_kind.entry("unknown_tenant").or_insert(0) += 1;
            return;
        };
        if slot.shared.health.load(Ordering::SeqCst) == HEALTH_QUARANTINED {
            return;
        }
        slot.queue.offer_query(q);
    }

    fn finish(
        &mut self,
        rejected: u64,
        rejected_by_kind: BTreeMap<&'static str, u64>,
        drained_early: bool,
    ) -> Result<DaemonReport, DaemonError> {
        // A final tick flushes any open batch and pending queries, and
        // gives every worker a defined quiescent point before shutdown.
        self.close_tick();
        // Stop the watchdog before closing queues so it cannot
        // misread a cleanly exiting worker as a crash.
        self.sup.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        let mut slots = lock_slots(&self.sup);
        for slot in slots.iter() {
            slot.queue.close();
        }
        let mut tenants = Vec::with_capacity(slots.len());
        for slot in slots.iter_mut() {
            let quarantined = matches!(slot.health, Health::Quarantined { .. });
            if let Some(handle) = slot.handle.take() {
                if quarantined {
                    // No worker is listening on a quarantined queue;
                    // the handle (if any) is already dead or canceled.
                    if handle.is_finished() {
                        let _ = handle.join();
                    }
                } else {
                    match handle.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => slot.last_error = Some(e.to_string()),
                        Err(_) => slot.last_error = Some("worker panicked".into()),
                    }
                }
            }
            tenants.push(TenantSummary {
                id: slot.id,
                applied: slot.shared.applied.load(Ordering::SeqCst),
                stats: slot.queue.stats(),
                shed_quarantine: slot.shared.shed_quarantine.load(Ordering::SeqCst),
                restarts: slot.restarts,
                quarantined,
                last_error: slot.last_error.clone(),
            });
        }
        drop(slots);
        Ok(DaemonReport {
            ticks: self.ticks,
            rejected,
            rejected_by_kind: rejected_by_kind
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            tenants,
            drained_early,
            min_impact_trust: f64::from_bits(self.sup.min_impact_bits.load(Ordering::SeqCst)),
        })
    }

    /// The shed-key log of one tenant (tests; requires
    /// [`QueuePolicy::record_shed`]).
    #[must_use]
    pub fn shed_log_of(&self, tenant: usize) -> Vec<(u64, u64, u64)> {
        self.router
            .get(tenant)
            .map(|s| s.queue.shed_log())
            .unwrap_or_default()
    }
}

impl DaemonReport {
    /// Renders the trace-counter block (`daemon.*` keys) the CLI prints
    /// on exit.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("daemon.ticks".to_string(), self.ticks),
            ("daemon.ingest.rejected".to_string(), self.rejected),
        ];
        for (kind, n) in &self.rejected_by_kind {
            out.push((format!("daemon.ingest.rejected.{kind}"), *n));
        }
        for t in &self.tenants {
            let p = format!("daemon.t{}", t.id);
            out.push((format!("{p}.applied"), t.applied));
            out.push((format!("{p}.offered"), t.stats.offered));
            out.push((format!("{p}.admitted"), t.stats.admitted));
            out.push((format!("{p}.shed"), t.stats.shed_total()));
            out.push((format!("{p}.shed.quarantine"), t.shed_quarantine));
            out.push((format!("{p}.duplicates"), t.stats.duplicates));
            out.push((format!("{p}.backpressure.waits"), t.stats.backpressure_waits));
            out.push((format!("{p}.restarts"), t.restarts));
            out.push((format!("{p}.quarantined"), u64::from(t.quarantined)));
        }
        out
    }
}
