//! The daemon proper: per-tenant worker threads, the router that feeds
//! them, and the watchdog that restarts them.
//!
//! ## Threads
//!
//! - **Router** (the caller of [`Daemon::run`]): reads frames, offers
//!   records to tenant queues, closes ticks (which applies
//!   backpressure — see `queue`), and honours shutdown requests.
//! - **Workers** (one per tenant): pop admitted work, run engine
//!   rounds, append decision lines, snapshot on a tick cadence.
//! - **Watchdog**: an Impact-style failure detector. Each tenant
//!   carries a trust level `e^(-λ·v)` where `v` counts consecutive
//!   missed progress checks (a check is missed when the heartbeat did
//!   not advance *and* work is outstanding — an idle worker is
//!   healthy). A worker whose trust falls under the floor, or whose
//!   thread has died, is restarted from its last snapshot plus the
//!   queue's recovery buffer — zero admitted records lost. A tenant
//!   that keeps failing is quarantined (its ingest shed, its tick
//!   barrier released so other tenants keep flowing), then
//!   reintegrated on probation after a cool-down.
//!
//! ## Decision-log epochs
//!
//! A wedged worker may come back to life *after* its replacement has
//! truncated and reopened the decision log; its buffered lines must
//! not reach the file. All log writes go through a [`LogSink`] guarded
//! by an epoch number — writes from a superseded incarnation are
//! silently dropped.

use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tibfit_experiments::replay::{tenant_seed, FieldScenario};
use tibfit_faults::ProcessCrashPlan;
use tibfit_sim::shutdown;
use tibfit_sim::snapshot::read_framed;

use crate::backoff::JitteredBackoff;
use crate::fleet::{owner_of, FleetConfig, PeerState, PeerView};
use crate::latency;
use crate::migrate::{
    decode_bundle, encode_bundle, push_bundle, MigrateError, MigrationBundle, MAX_BUNDLE_BYTES,
};
use crate::queue::{QueuePolicy, QueueStats, SharedQueue, WorkItem};
use crate::state::{
    decision_log_path, decode_tenant_state, encode_tenant_state, read_tenant_state,
    tenant_state_path, truncate_decision_log, write_tenant_state,
};
use crate::tenant::{EngineKind, PositionView, Tenant};
use crate::wire::{parse_fleet_line, parse_line, FleetMsg, Frame, IngestError, Query, Report};
use crate::DaemonError;

/// Impact-style watchdog tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogPolicy {
    /// Milliseconds between progress checks.
    pub check_interval_ms: u64,
    /// Trust decay per missed check: trust = `e^(-lambda * misses)`.
    pub lambda: f64,
    /// Suspect (and restart) a worker whose trust falls below this.
    pub trust_floor: f64,
    /// Sliding window, in checks, for counting restarts.
    pub crash_loop_window: u64,
    /// Restarts within the window that trigger quarantine.
    pub crash_loop_limit: usize,
    /// Quarantine cool-down and probation length, in checks.
    pub probation_checks: u64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            check_interval_ms: 20,
            lambda: 0.6,
            trust_floor: 0.25,
            crash_loop_window: 500,
            crash_loop_limit: 3,
            probation_checks: 25,
        }
    }
}

impl WatchdogPolicy {
    /// Checks a worker must miss before its trust crosses the floor.
    #[must_use]
    pub fn misses_to_suspect(&self) -> u32 {
        let mut v = 0u32;
        while (-self.lambda * f64::from(v + 1)).exp() >= self.trust_floor && v < 1_000 {
            v += 1;
        }
        v + 1
    }
}

/// Test-only fault injection for a tenant worker (compiled in, never
/// reachable from the CLI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFault {
    /// First incarnation wedges (stops heartbeating, holds no locks)
    /// just before applying this round.
    pub wedge_at_round: Option<u64>,
    /// Incarnations below `fail_incarnations` panic just before
    /// applying this round.
    pub panic_at_round: Option<u64>,
    /// How many incarnations the panic applies to (crash-loop length).
    pub fail_incarnations: u64,
}

/// Full daemon configuration.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Hosted field count.
    pub tenants: usize,
    /// Master seed; tenant `t` runs scenario seed
    /// [`tenant_seed`]`(master_seed, t)`.
    pub master_seed: u64,
    /// Engine flavor for every tenant.
    pub engine: EngineKind,
    /// Worker threads per sharded engine.
    pub threads: usize,
    /// Per-tenant queue sizing.
    pub queue: QueuePolicy,
    /// Snapshot every N ticks (≥ 1).
    pub snapshot_every: u64,
    /// Tenant state files live here.
    pub state_dir: PathBuf,
    /// Decision logs live here.
    pub decisions_dir: PathBuf,
    /// Watchdog tuning.
    pub watchdog: WatchdogPolicy,
    /// Builds a tenant's scenario from its seed (tests swap in smaller
    /// fields; production uses [`FieldScenario::mobile`]).
    pub scenario: fn(u64) -> FieldScenario,
    /// Deterministic process-kill hook (crash harness).
    pub crash_plan: ProcessCrashPlan,
    /// Stop ingesting and drain cleanly after this many ticks
    /// (rolling-restart harness).
    pub drain_after_ticks: Option<u64>,
    /// Per-tenant injected worker faults (tests).
    pub faults: Vec<(usize, WorkerFault)>,
    /// Fleet membership: when set, this daemon hosts only the tenants
    /// rendezvous placement assigns it, probes its peers, adopts a dead
    /// peer's tenants, and serves live migration on its fleet port.
    pub fleet: Option<FleetConfig>,
}

impl DaemonConfig {
    /// A standard configuration rooted at `state_dir`.
    #[must_use]
    pub fn standard(tenants: usize, master_seed: u64, state_dir: PathBuf) -> Self {
        let decisions_dir = state_dir.join("decisions");
        DaemonConfig {
            tenants,
            master_seed,
            engine: EngineKind::Sequential,
            threads: 2,
            queue: QueuePolicy {
                capacity: 1024,
                tick_budget: 64,
                record_shed: false,
            },
            snapshot_every: 4,
            state_dir,
            decisions_dir,
            watchdog: WatchdogPolicy::default(),
            scenario: FieldScenario::mobile,
            crash_plan: ProcessCrashPlan::disabled(),
            drain_after_ticks: None,
            faults: Vec::new(),
            fleet: None,
        }
    }

    fn validated(&self) -> Result<(), DaemonError> {
        if self.tenants == 0 {
            return Err(DaemonError::Config("at least one tenant required".into()));
        }
        if self.threads == 0 {
            return Err(DaemonError::Config("threads must be at least 1".into()));
        }
        if self.snapshot_every == 0 {
            return Err(DaemonError::Config("snapshot-every must be at least 1".into()));
        }
        self.queue
            .validated()
            .map_err(|e| DaemonError::Config(e.into()))?;
        if let Some(fleet) = &self.fleet {
            fleet.clone().validated()?;
        }
        Ok(())
    }

    fn fault_for(&self, id: usize) -> WorkerFault {
        self.faults
            .iter()
            .find(|(t, _)| *t == id)
            .map(|&(_, f)| f)
            .unwrap_or_default()
    }
}

/// Epoch-guarded append sink for one tenant's decision log.
pub struct LogSink {
    path: PathBuf,
    epoch: u64,
    file: Option<BufWriter<File>>,
}

impl LogSink {
    fn new(path: PathBuf) -> Self {
        LogSink {
            path,
            epoch: 0,
            file: None,
        }
    }

    /// Supersedes the current epoch without opening a new file: the
    /// old incarnation's unflushed buffer is dropped and all its
    /// future writes rejected, while the log file itself stays
    /// untouched for the respawn sequence to truncate. `reopen` then
    /// picks up the truncated file (a fresh inode — truncation is
    /// rename-into-place) under yet another epoch.
    fn supersede(&mut self) {
        if let Some(old) = self.file.take() {
            let _ = old.into_parts();
        }
        self.epoch += 1;
    }

    /// Supersedes the current epoch (dropping its unflushed buffer —
    /// the recovery replay regenerates those lines) and reopens the
    /// file for appending. Returns the new epoch.
    fn reopen(&mut self) -> Result<u64, DaemonError> {
        // Drop, don't flush: the old buffer may hold lines the
        // truncation just removed.
        if let Some(old) = self.file.take() {
            let _ = old.into_parts();
        }
        self.epoch += 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(DaemonError::Io)?;
        self.file = Some(BufWriter::new(file));
        Ok(self.epoch)
    }

    /// Appends a pre-formatted block of newline-terminated decision
    /// lines. The worker batches lines locally and pushes one block per
    /// tick, so the per-record cost is a `String` append instead of a
    /// mutex acquisition; the epoch guard applies to the whole block,
    /// which keeps supersession all-or-nothing (a superseded worker's
    /// buffered lines vanish exactly like its dropped `BufWriter`
    /// contents used to — recovery replay regenerates them).
    fn write_block(&mut self, epoch: u64, block: &str) -> Result<(), DaemonError> {
        if epoch != self.epoch {
            return Ok(());
        }
        if let Some(f) = self.file.as_mut() {
            f.write_all(block.as_bytes()).map_err(DaemonError::Io)?;
        }
        Ok(())
    }

    fn flush(&mut self, epoch: u64) -> Result<(), DaemonError> {
        if epoch != self.epoch {
            return Ok(());
        }
        if let Some(f) = self.file.as_mut() {
            f.flush().map_err(DaemonError::Io)?;
        }
        Ok(())
    }
}

/// Health state byte shared with the router.
const HEALTH_ACTIVE: u8 = 0;
const HEALTH_QUARANTINED: u8 = 1;
const HEALTH_PROBATION: u8 = 2;

/// Counters and flags shared by router, worker, and watchdog.
struct SlotShared {
    heartbeat: AtomicU64,
    applied: AtomicU64,
    shed_quarantine: AtomicU64,
    health: AtomicU8,
    /// Wall-clock latency of each answered query, for the p99 figure.
    query_latency: latency::Histogram,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Active,
    Quarantined { until_check: u64 },
    Probation { until_check: u64 },
}

struct SlotCore {
    id: usize,
    queue: Arc<SharedQueue>,
    shared: Arc<SlotShared>,
    sink: Arc<Mutex<LogSink>>,
    positions: Arc<PositionView>,
    cancel: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<(), DaemonError>>>,
    health: Health,
    misses: u32,
    last_heartbeat: u64,
    incarnation: u64,
    restarts: u64,
    restart_checks: VecDeque<u64>,
    last_error: Option<String>,
}

struct SupervisorShared {
    slots: Mutex<Vec<SlotCore>>,
    stop: AtomicBool,
    /// Minimum observed Σ-trust across checks, as f64 bits.
    min_impact_bits: AtomicU64,
}

fn lock_slots(sup: &SupervisorShared) -> MutexGuard<'_, Vec<SlotCore>> {
    sup.slots.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-tenant wrap-up in the final report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant index.
    pub id: usize,
    /// Event rounds applied across all incarnations of this process.
    pub applied: u64,
    /// Queue counters (offered/admitted/shed/duplicates/waits).
    pub stats: QueueStats,
    /// Records dropped while the tenant was quarantined.
    pub shed_quarantine: u64,
    /// Worker restarts performed by the watchdog.
    pub restarts: u64,
    /// Whether the tenant ended the run quarantined.
    pub quarantined: bool,
    /// Last worker error, if any incarnation failed with one.
    pub last_error: Option<String>,
}

/// What a completed run did.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    /// Ticks closed.
    pub ticks: u64,
    /// Lines rejected by the parser, total.
    pub rejected: u64,
    /// Rejection breakdown by [`IngestError::kind`].
    pub rejected_by_kind: Vec<(String, u64)>,
    /// Per-tenant summaries, tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Whether ingest ended by a drain request (signal or
    /// `drain_after_ticks`) rather than end-of-stream.
    pub drained_early: bool,
    /// Minimum Σ(e^(-λ·v))/tenants the watchdog observed — 1.0 means
    /// no tenant ever missed a progress check.
    pub min_impact_trust: f64,
    /// Fleet wrap-up (peer trust, rebalances, migrations) when the
    /// daemon ran as a fleet member.
    pub fleet: Option<FleetSummary>,
}

/// Fleet-mode wrap-up in the final report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// This daemon's fleet id.
    pub id: usize,
    /// Tenants adopted from dead peers by failure rebalancing.
    pub adopted: Vec<usize>,
    /// Failure rebalances performed (tenants adopted).
    pub rebalances: u64,
    /// Migration bundles installed from peers (`MPUSH` accepted).
    pub migrations_in: u64,
    /// Tenants shipped out via operator `MIGRATE`.
    pub migrations_out: u64,
    /// Failed outbound migrations (source kept serving).
    pub migrate_failed: u64,
    /// Records ignored because placement assigned their tenant to a
    /// peer.
    pub foreign: u64,
    /// Final per-peer trust `(peer_id, e^(-λ·misses))`.
    pub peer_trust: Vec<(usize, f64)>,
}

struct WorkerTask {
    incarnation: u64,
    /// Queue-generation fence: the worker passes this to every `pop`,
    /// `complete_tick`, and snapshot commit, so once the watchdog
    /// supersedes it (respawn bumps the queue generation) it can no
    /// longer consume work or publish state, even if still running.
    generation: u64,
    tenant: Tenant,
    queue: Arc<SharedQueue>,
    shared: Arc<SlotShared>,
    sink: Arc<Mutex<LogSink>>,
    epoch: u64,
    cancel: Arc<AtomicBool>,
    state_path: PathBuf,
    snapshot_every: u64,
    fault: WorkerFault,
    recovery: Vec<WorkItem>,
    backoff_seed: u64,
}

enum Step {
    Continue,
    Exit,
}

fn lock_sink(sink: &Mutex<LogSink>) -> MutexGuard<'_, LogSink> {
    sink.lock().unwrap_or_else(PoisonError::into_inner)
}

fn write_snapshot(task: &WorkerTask) -> Result<(), DaemonError> {
    let (highwater, stats) = task.queue.snapshot_view();
    let bytes = encode_tenant_state(&task.tenant, &highwater, stats)?;
    let mut backoff = JitteredBackoff::new(task.backoff_seed, 2, 64);
    let mut attempts = 0u32;
    loop {
        // The state-file write and the replay-buffer clear commit
        // atomically under the queue lock, fenced by generation: a
        // superseded worker must not publish a snapshot the respawn
        // sequence no longer accounts for (it already read the old
        // state file), nor clear the replay its replacement needs.
        match task.queue.commit_snapshot(task.generation, || {
            write_tenant_state(&task.state_path, &bytes)
        }) {
            Ok(_committed) => return Ok(()),
            Err(e) if attempts < 3 => {
                attempts += 1;
                std::thread::sleep(backoff.next_delay());
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
}

fn answer_query(tenant: &Tenant, query: Query) {
    match query {
        Query::Trust { tenant: id, node } => match tenant.trust_of(node) {
            Some(v) => println!("A trust {id} {node} {v}"),
            None => println!("A trust {id} {node} -"),
        },
        Query::Round { tenant: id } => println!("A round {id} {}", tenant.round()),
        // Status is answered at the router (it spans every tenant and
        // the peer roster) and never enqueued to a worker.
        Query::Status => {}
    }
}

/// Worker-local decision-line buffer above this size is pushed to the
/// sink mid-tick, bounding memory on record-dense ticks.
const LINE_BUFFER_FLUSH_BYTES: usize = 64 * 1024;

/// Pushes the worker's buffered decision lines to the sink as one
/// block and clears the buffer.
fn flush_lines(task: &WorkerTask, buf: &mut String) -> Result<(), DaemonError> {
    if !buf.is_empty() {
        lock_sink(&task.sink).write_block(task.epoch, buf)?;
        buf.clear();
    }
    Ok(())
}

fn process_item(
    task: &mut WorkerTask,
    item: WorkItem,
    live: bool,
    buf: &mut String,
) -> Result<Step, DaemonError> {
    match item {
        WorkItem::Record(r) => {
            let next_round = task.tenant.round() + 1;
            if task.fault.wedge_at_round == Some(next_round) && task.incarnation == 0 {
                while !task.cancel.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return Ok(Step::Exit);
            }
            if task.fault.panic_at_round == Some(next_round)
                && task.incarnation < task.fault.fail_incarnations
            {
                panic!(
                    "injected worker fault: tenant round {next_round}, incarnation {}",
                    task.incarnation
                );
            }
            // Buffer the line worker-side instead of taking the sink
            // mutex per record; blocks go to the sink at tick
            // boundaries (or at the size cap on record-dense ticks).
            task.tenant.apply_into(&r, buf);
            buf.push('\n');
            if buf.len() >= LINE_BUFFER_FLUSH_BYTES {
                flush_lines(task, buf)?;
            }
            task.shared.applied.fetch_add(1, Ordering::SeqCst);
            task.shared.heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        WorkItem::TickEnd(t) => {
            flush_lines(task, buf)?;
            lock_sink(&task.sink).flush(task.epoch)?;
            // Snapshots are suppressed during recovery replay: the live
            // highwater map is ahead of the replay cursor, and pairing
            // it with a mid-replay engine state would poison a later
            // process restart.
            if live && t % task.snapshot_every == 0 {
                write_snapshot(task)?;
            }
            task.queue.complete_tick(task.generation, t);
            task.shared.heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        WorkItem::Query(q) => {
            let started = Instant::now();
            answer_query(&task.tenant, q);
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            task.shared.query_latency.record(nanos);
            task.shared.heartbeat.fetch_add(1, Ordering::SeqCst);
        }
        WorkItem::Shutdown => {
            flush_lines(task, buf)?;
            lock_sink(&task.sink).flush(task.epoch)?;
            write_snapshot(task)?;
            return Ok(Step::Exit);
        }
    }
    Ok(Step::Continue)
}

fn run_worker(mut task: WorkerTask) -> Result<(), DaemonError> {
    let mut buf = String::new();
    let recovery = std::mem::take(&mut task.recovery);
    for item in recovery {
        if let Step::Exit = process_item(&mut task, item, false, &mut buf)? {
            return Ok(());
        }
    }
    loop {
        let Some(item) = task.queue.pop(task.generation) else {
            // Queue closed (or this incarnation superseded) without a
            // Shutdown item reaching us: push what we have and flush
            // the sink to disk — nothing later will. A superseded
            // incarnation's block and flush are epoch-dropped.
            flush_lines(&task, &mut buf)?;
            lock_sink(&task.sink).flush(task.epoch)?;
            return Ok(());
        };
        if let Step::Exit = process_item(&mut task, item, true, &mut buf)? {
            return Ok(());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_incarnation(
    cfg: &DaemonConfig,
    id: usize,
    tenant: Tenant,
    queue: Arc<SharedQueue>,
    shared: Arc<SlotShared>,
    sink: Arc<Mutex<LogSink>>,
    epoch: u64,
    cancel: Arc<AtomicBool>,
    incarnation: u64,
    generation: u64,
    recovery: Vec<WorkItem>,
) -> JoinHandle<Result<(), DaemonError>> {
    let task = WorkerTask {
        incarnation,
        generation,
        tenant,
        queue,
        shared,
        sink,
        epoch,
        cancel,
        state_path: tenant_state_path(&cfg.state_dir, id),
        snapshot_every: cfg.snapshot_every,
        fault: cfg.fault_for(id),
        recovery,
        backoff_seed: cfg.master_seed ^ (id as u64) ^ (incarnation << 32),
    };
    std::thread::Builder::new()
        .name(format!("tibfit-tenant-{id}"))
        .spawn(move || run_worker(task))
        .expect("spawning a tenant worker thread")
}

/// Rebuilds a tenant for a replacement incarnation: last snapshot if
/// one exists, otherwise fresh from the scenario (the recovery buffer
/// then replays everything admitted since that base).
fn rebuild_tenant(cfg: &DaemonConfig, id: usize) -> Result<(Tenant, u64), DaemonError> {
    let scenario = (cfg.scenario)(tenant_seed(cfg.master_seed, id));
    let path = tenant_state_path(&cfg.state_dir, id);
    match read_tenant_state(&path)? {
        Some(state) => {
            if state.seed != scenario.seed {
                return Err(DaemonError::State(format!(
                    "tenant {id} state file has seed {} but the configuration expects {}",
                    state.seed, scenario.seed
                )));
            }
            let tenant = Tenant::from_blob(id, scenario, cfg.engine, cfg.threads, &state.blob)?;
            let round = state.round;
            Ok((tenant, round))
        }
        None => {
            let tenant = Tenant::new(id, scenario, cfg.engine, cfg.threads)?;
            Ok((tenant, 0))
        }
    }
}

/// Replaces a slot's worker: supersede the log epoch, rebuild the
/// tenant from its last snapshot, truncate the log to match, replay
/// the recovery buffer. On failure the tenant is quarantined instead.
fn respawn_slot(cfg: &DaemonConfig, slot: &mut SlotCore, probation_until: u64) {
    slot.cancel.store(true, Ordering::SeqCst);
    if let Some(handle) = slot.handle.take() {
        if handle.is_finished() {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => slot.last_error = Some(e.to_string()),
                Err(_) => {
                    slot.last_error = Some("worker panicked".into());
                }
            }
        }
        // A wedged (unfinished) handle is detached: its epoch is
        // superseded and its cancel flag set, so it can only exit.
    }
    let outcome: Result<(), DaemonError> = (|| {
        // Fence FIRST: bumping the queue generation stops a
        // still-running old incarnation (a wedge, or a watchdog false
        // positive under CPU starvation) from consuming items,
        // acknowledging ticks, or committing a snapshot after this
        // point. Only then is it safe to read the state file and
        // truncate the log — nothing can move them anymore.
        let (generation, recovery) = slot.queue.recovery_view();
        // Epoch-supersede the sink before truncating: a woken old
        // worker exits through its flush path, and its block must be
        // rejected rather than appended to a log we are about to (or
        // just did) truncate.
        lock_sink(&slot.sink).supersede();
        let (mut tenant, round) = rebuild_tenant(cfg, slot.id)?;
        let log_path = decision_log_path(&cfg.decisions_dir, slot.id);
        truncate_decision_log(&log_path, round)?;
        let epoch = lock_sink(&slot.sink).reopen()?;
        tenant.set_positions(Arc::clone(&slot.positions));
        slot.cancel = Arc::new(AtomicBool::new(false));
        slot.incarnation += 1;
        slot.handle = Some(spawn_incarnation(
            cfg,
            slot.id,
            tenant,
            Arc::clone(&slot.queue),
            Arc::clone(&slot.shared),
            Arc::clone(&slot.sink),
            epoch,
            Arc::clone(&slot.cancel),
            slot.incarnation,
            generation,
            recovery,
        ));
        Ok(())
    })();
    match outcome {
        Ok(()) => {
            slot.health = Health::Probation {
                until_check: probation_until,
            };
            slot.shared.health.store(HEALTH_PROBATION, Ordering::SeqCst);
            slot.misses = 0;
            slot.last_heartbeat = slot.shared.heartbeat.load(Ordering::SeqCst);
        }
        Err(e) => {
            slot.last_error = Some(e.to_string());
            slot.health = Health::Quarantined {
                until_check: probation_until,
            };
            slot.shared.health.store(HEALTH_QUARANTINED, Ordering::SeqCst);
            slot.queue.abandon_tick();
        }
    }
}

fn watchdog_check(cfg: &DaemonConfig, slot: &mut SlotCore, check_no: u64) -> f64 {
    let policy = cfg.watchdog;
    match slot.health {
        Health::Quarantined { until_check } => {
            if check_no >= until_check {
                slot.restarts += 1;
                respawn_slot(cfg, slot, check_no + policy.probation_checks);
            }
            return 0.0;
        }
        Health::Probation { until_check } => {
            if check_no >= until_check {
                slot.health = Health::Active;
                slot.shared.health.store(HEALTH_ACTIVE, Ordering::SeqCst);
            }
        }
        Health::Active => {}
    }

    let finished = slot.handle.as_ref().is_none_or(JoinHandle::is_finished);
    let heartbeat = slot.shared.heartbeat.load(Ordering::SeqCst);
    let advanced = heartbeat != slot.last_heartbeat;
    slot.last_heartbeat = heartbeat;
    let outstanding = slot.queue.has_outstanding();

    if finished {
        // A worker only returns cleanly at shutdown, and the watchdog
        // is stopped before shutdown begins: a finished thread here
        // died (panic or error).
        slot.misses = policy.misses_to_suspect();
    } else if advanced || !outstanding {
        slot.misses = slot.misses.saturating_sub(1);
    } else {
        slot.misses += 1;
    }

    let trust = (-policy.lambda * f64::from(slot.misses)).exp();
    if trust < policy.trust_floor || finished {
        slot.restart_checks.push_back(check_no);
        while slot
            .restart_checks
            .front()
            .is_some_and(|&c| c + policy.crash_loop_window < check_no)
        {
            slot.restart_checks.pop_front();
        }
        slot.restarts += 1;
        if slot.restart_checks.len() > policy.crash_loop_limit {
            slot.cancel.store(true, Ordering::SeqCst);
            if let Some(handle) = slot.handle.take() {
                if handle.is_finished() {
                    let _ = handle.join();
                }
            }
            slot.health = Health::Quarantined {
                until_check: check_no + policy.probation_checks,
            };
            slot.shared.health.store(HEALTH_QUARANTINED, Ordering::SeqCst);
            slot.queue.abandon_tick();
            return 0.0;
        }
        respawn_slot(cfg, slot, check_no + policy.probation_checks);
        // Report the trust observed at detection time — respawn resets
        // the miss counter, but this check still saw a failed worker.
        return trust;
    }
    trust
}

fn watchdog_loop(cfg: Arc<DaemonConfig>, sup: Arc<SupervisorShared>) {
    let interval = Duration::from_millis(cfg.watchdog.check_interval_ms.max(1));
    let mut check_no = 0u64;
    while !sup.stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        check_no += 1;
        let mut slots = lock_slots(&sup);
        let mut sum = 0.0;
        let n = slots.len().max(1);
        for slot in slots.iter_mut() {
            sum += watchdog_check(&cfg, slot, check_no);
        }
        drop(slots);
        let impact = sum / n as f64;
        let prev = f64::from_bits(sup.min_impact_bits.load(Ordering::SeqCst));
        if impact < prev {
            sup.min_impact_bits
                .store(impact.to_bits(), Ordering::SeqCst);
        }
    }
}

/// Router-side view of one tenant (no supervisor lock on the hot path).
struct RouterSlot {
    queue: Arc<SharedQueue>,
    positions: Arc<PositionView>,
    shared: Arc<SlotShared>,
    /// Per-tenant tick counter. Tenants join the daemon at different
    /// global ticks (adoption, migration), so each slot numbers its own
    /// ticks — the numbering every tenant's recovery replay and
    /// decision log is keyed to.
    ticks: Arc<AtomicU64>,
}

/// The live tenant routing table, shared with the fleet threads so
/// adoption and migration can add or remove tenants while the router
/// is streaming.
type RouterMap = Arc<RwLock<BTreeMap<usize, RouterSlot>>>;

fn read_router(router: &RouterMap) -> std::sync::RwLockReadGuard<'_, BTreeMap<usize, RouterSlot>> {
    router.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_router(
    router: &RouterMap,
) -> std::sync::RwLockWriteGuard<'_, BTreeMap<usize, RouterSlot>> {
    router.write().unwrap_or_else(PoisonError::into_inner)
}

/// Queue seeding for a slot built from a migration bundle: the live
/// highwaters/stats (ahead of the snapshot's), the recovery buffer to
/// replay, and how many renumbered ticks that buffer completes.
struct BundleSeed {
    live_highwater: Vec<(u64, u64)>,
    live_stats: QueueStats,
    recovery: Vec<WorkItem>,
    replay_ticks: u64,
}

/// Builds one tenant slot from the state directory: resume from the
/// tenant's snapshot if present (fresh otherwise), truncate its
/// decision log to the snapshot round, and spawn its worker. The shared
/// build path for startup, fleet adoption, and migration install.
fn build_slot(
    cfg: &DaemonConfig,
    id: usize,
    seed: Option<BundleSeed>,
) -> Result<(SlotCore, RouterSlot), DaemonError> {
    let scenario = (cfg.scenario)(tenant_seed(cfg.master_seed, id));
    let path = tenant_state_path(&cfg.state_dir, id);
    let queue = Arc::new(SharedQueue::new(cfg.queue));
    let (tenant, round) = match read_tenant_state(&path)? {
        Some(state) => {
            if state.seed != scenario.seed {
                return Err(DaemonError::State(format!(
                    "tenant {id} state file has seed {} but the configuration expects {}",
                    state.seed, scenario.seed
                )));
            }
            let tenant = Tenant::from_blob(id, scenario, cfg.engine, cfg.threads, &state.blob)?;
            queue.seed_highwater(state.highwater.iter().copied());
            queue.seed_stats(state.stats);
            (tenant, state.round)
        }
        None => (Tenant::new(id, scenario, cfg.engine, cfg.threads)?, 0),
    };
    let mut recovery = Vec::new();
    let mut initial_ticks = 0u64;
    if let Some(seed) = seed {
        queue.seed_highwater(seed.live_highwater);
        queue.seed_stats(seed.live_stats);
        // The replay completes ticks 1..=replay_ticks; marking them
        // issued makes the next end_tick wait for the replay to settle.
        queue.seed_ticks(seed.replay_ticks);
        recovery = seed.recovery;
        initial_ticks = seed.replay_ticks;
    }
    let log_path = decision_log_path(&cfg.decisions_dir, id);
    truncate_decision_log(&log_path, round)?;
    let sink = Arc::new(Mutex::new(LogSink::new(log_path)));
    let epoch = lock_sink(&sink).reopen()?;
    let positions = tenant.positions();
    let shared = Arc::new(SlotShared {
        heartbeat: AtomicU64::new(0),
        applied: AtomicU64::new(0),
        shed_quarantine: AtomicU64::new(0),
        health: AtomicU8::new(HEALTH_ACTIVE),
        query_latency: latency::Histogram::new(),
    });
    let cancel = Arc::new(AtomicBool::new(false));
    let handle = spawn_incarnation(
        cfg,
        id,
        tenant,
        Arc::clone(&queue),
        Arc::clone(&shared),
        Arc::clone(&sink),
        epoch,
        Arc::clone(&cancel),
        0,
        0,
        recovery,
    );
    let route = RouterSlot {
        queue: Arc::clone(&queue),
        positions: Arc::clone(&positions),
        shared: Arc::clone(&shared),
        ticks: Arc::new(AtomicU64::new(initial_ticks)),
    };
    let core = SlotCore {
        id,
        queue,
        shared,
        sink,
        positions,
        cancel,
        handle: Some(handle),
        health: Health::Active,
        misses: 0,
        last_heartbeat: 0,
        incarnation: 0,
        restarts: 0,
        restart_checks: VecDeque::new(),
        last_error: None,
    };
    Ok((core, route))
}

/// The daemon: build with [`Daemon::new`] (which resumes from any
/// existing state directory), then feed it a frame stream with
/// [`Daemon::run`].
pub struct Daemon {
    cfg: Arc<DaemonConfig>,
    sup: Arc<SupervisorShared>,
    router: RouterMap,
    watchdog: Option<JoinHandle<()>>,
    fleet: Option<FleetRuntime>,
    ticks: u64,
}

impl Daemon {
    /// Builds (or resumes) every hosted tenant and starts workers + the
    /// watchdog. In fleet mode only the tenants rendezvous placement
    /// assigns this member are built, and the fleet port + peer monitor
    /// are started.
    ///
    /// # Errors
    ///
    /// Configuration validation, state-file corruption or seed
    /// mismatch, engine construction failure, or I/O errors creating
    /// the state directories or binding the fleet port.
    pub fn new(cfg: DaemonConfig) -> Result<Self, DaemonError> {
        cfg.validated()?;
        std::fs::create_dir_all(&cfg.state_dir).map_err(DaemonError::Io)?;
        std::fs::create_dir_all(&cfg.decisions_dir).map_err(DaemonError::Io)?;
        let cfg = Arc::new(cfg);
        let owned: Vec<usize> = match &cfg.fleet {
            Some(fleet) => {
                let roster = fleet.roster();
                (0..cfg.tenants)
                    .filter(|&t| owner_of(fleet.seed, t, &roster) == Some(fleet.id))
                    .collect()
            }
            None => (0..cfg.tenants).collect(),
        };
        let mut slots = Vec::with_capacity(owned.len());
        let mut router = BTreeMap::new();
        for id in owned {
            let (core, route) = build_slot(&cfg, id, None)?;
            router.insert(id, route);
            slots.push(core);
        }
        let sup = Arc::new(SupervisorShared {
            slots: Mutex::new(slots),
            stop: AtomicBool::new(false),
            min_impact_bits: AtomicU64::new(1.0f64.to_bits()),
        });
        let router: RouterMap = Arc::new(RwLock::new(router));
        let watchdog = std::thread::Builder::new()
            .name("tibfit-watchdog".into())
            .spawn({
                let cfg = Arc::clone(&cfg);
                let sup = Arc::clone(&sup);
                move || watchdog_loop(cfg, sup)
            })
            .expect("spawning the watchdog thread");
        let fleet = match &cfg.fleet {
            Some(_) => Some(start_fleet(
                Arc::clone(&cfg),
                Arc::clone(&sup),
                Arc::clone(&router),
            )?),
            None => None,
        };
        Ok(Daemon {
            cfg,
            sup,
            router,
            watchdog: Some(watchdog),
            fleet,
            ticks: 0,
        })
    }

    /// The fleet port this daemon is serving on, if fleet mode is on
    /// (port 0 in the configuration resolves here).
    #[must_use]
    pub fn fleet_addr(&self) -> Option<std::net::SocketAddr> {
        self.fleet.as_ref().map(|f| f.local_addr)
    }

    /// Merged p99 query-answer latency across every tenant slot, in
    /// microseconds. Zero until the first query is answered.
    #[must_use]
    pub fn query_latency_p99_us(&self) -> f64 {
        let merged = latency::Histogram::new();
        for slot in read_router(&self.router).values() {
            merged.merge_from(&slot.shared.query_latency);
        }
        #[allow(clippy::cast_precision_loss)]
        let ns = merged.percentile(99.0) as f64;
        ns / 1_000.0
    }

    fn close_tick(&mut self) {
        self.ticks += 1;
        for slot in read_router(&self.router).values() {
            if slot.shared.health.load(Ordering::SeqCst) == HEALTH_QUARANTINED {
                continue;
            }
            // Per-slot numbering: an adopted or migrated-in tenant
            // joined mid-run and counts its own ticks.
            let tick = slot.ticks.fetch_add(1, Ordering::SeqCst) + 1;
            let positions = Arc::clone(&slot.positions);
            slot.queue
                .end_tick(tick, move |r| positions.impact_of(r.x, r.y));
        }
    }

    /// Streams newline-framed input until end-of-stream, a shutdown
    /// signal, or the configured drain point; then drains every tenant
    /// (final snapshot included) and reports.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] on input failure; worker errors surface in
    /// the report, not here (the daemon outlives its workers). Call
    /// once: the run ends with a full drain and worker shutdown.
    pub fn run(&mut self, input: impl BufRead) -> Result<DaemonReport, DaemonError> {
        let mut rejected = 0u64;
        let mut rejected_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut drained_early = false;
        let mut input = input;
        let mut raw = Vec::new();
        loop {
            if shutdown::requested() {
                drained_early = true;
                break;
            }
            raw.clear();
            let n = input.read_until(b'\n', &mut raw).map_err(DaemonError::Io)?;
            if n == 0 {
                break;
            }
            let parsed = match std::str::from_utf8(&raw) {
                Ok(text) => parse_line(text.trim_end_matches('\n')),
                Err(_) => Err(IngestError::NotUtf8),
            };
            match parsed {
                Ok(None) => {}
                Ok(Some(Frame::Report(r))) => self.route_report(r, &mut rejected, &mut rejected_by_kind),
                Ok(Some(Frame::Query(q))) => self.route_query(q, &mut rejected, &mut rejected_by_kind),
                Ok(Some(Frame::Tick)) => {
                    self.close_tick();
                    if self.cfg.crash_plan.fires_after(self.ticks) {
                        self.cfg.crash_plan.execute();
                    }
                    if self
                        .cfg
                        .drain_after_ticks
                        .is_some_and(|d| self.ticks >= d)
                    {
                        drained_early = true;
                        break;
                    }
                }
                Err(e) => {
                    rejected += 1;
                    *rejected_by_kind.entry(e.kind()).or_insert(0) += 1;
                }
            }
        }
        if !drained_early {
            self.linger();
        }
        self.finish(rejected, rejected_by_kind, drained_early)
    }

    /// Fleet mode keeps serving the fleet port after ingest EOF: peers
    /// may still be rebalancing onto us or migrating tenants in/out.
    /// The linger window restarts on every fleet event and ends early
    /// on a shutdown signal.
    fn linger(&self) {
        let Some(fleet) = &self.fleet else {
            return;
        };
        let linger_ms = fleet.shared.fcfg.linger_ms;
        fleet.shared.touch();
        while !shutdown::requested() && fleet.shared.idle_ms() < linger_ms {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn route_report(
        &self,
        r: Report,
        rejected: &mut u64,
        by_kind: &mut BTreeMap<&'static str, u64>,
    ) {
        let router = read_router(&self.router);
        let Some(slot) = router.get(&r.tenant) else {
            drop(router);
            if r.tenant < self.cfg.tenants {
                // Fleet mode: a valid tenant placed on a peer. Ignored
                // without touching any highwater — if this daemon ever
                // adopts the tenant, catch-up re-admits the record in
                // its original batch context.
                if let Some(fleet) = &self.fleet {
                    fleet.shared.foreign.fetch_add(1, Ordering::SeqCst);
                }
            } else {
                *rejected += 1;
                *by_kind.entry("unknown_tenant").or_insert(0) += 1;
            }
            return;
        };
        if slot.shared.health.load(Ordering::SeqCst) == HEALTH_QUARANTINED {
            slot.shared.shed_quarantine.fetch_add(1, Ordering::SeqCst);
            return;
        }
        slot.queue.offer(r);
    }

    fn route_query(
        &self,
        q: Query,
        rejected: &mut u64,
        by_kind: &mut BTreeMap<&'static str, u64>,
    ) {
        let id = match q {
            Query::Status => {
                // Spans every tenant and the peer roster: answered here,
                // immediately, not at a tick boundary.
                for line in self.status_lines() {
                    println!("{line}");
                }
                return;
            }
            Query::Trust { tenant, .. } | Query::Round { tenant } => tenant,
        };
        let router = read_router(&self.router);
        let Some(slot) = router.get(&id) else {
            drop(router);
            if id >= self.cfg.tenants {
                *rejected += 1;
                *by_kind.entry("unknown_tenant").or_insert(0) += 1;
            }
            return;
        };
        if slot.shared.health.load(Ordering::SeqCst) == HEALTH_QUARANTINED {
            return;
        }
        slot.queue.offer_query(q);
    }

    /// The `Q status` answer: self id, per-peer state + trust, and the
    /// current tenant placement as this daemon computes it.
    fn status_lines(&self) -> Vec<String> {
        match &self.fleet {
            Some(fleet) => status_dump("A status", &self.cfg, &fleet.shared, &self.router),
            None => {
                let mut out = vec!["A status self -".to_string()];
                for id in read_router(&self.router).keys() {
                    out.push(format!("A status tenant {id} self"));
                }
                out.push("A status end".to_string());
                out
            }
        }
    }

    fn finish(
        &mut self,
        rejected: u64,
        rejected_by_kind: BTreeMap<&'static str, u64>,
        drained_early: bool,
    ) -> Result<DaemonReport, DaemonError> {
        // Stop the fleet threads first: the monitor may be mid-adoption
        // and the listener mid-install; both finish their current
        // operation before exiting, so the slot set is stable below.
        let fleet_summary = self.fleet.take().map(FleetRuntime::stop);
        // A final tick flushes any open batch and pending queries, and
        // gives every worker a defined quiescent point before shutdown.
        self.close_tick();
        // Stop the watchdog before closing queues so it cannot
        // misread a cleanly exiting worker as a crash.
        self.sup.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        let mut slots = lock_slots(&self.sup);
        for slot in slots.iter() {
            slot.queue.close();
        }
        let mut tenants = Vec::with_capacity(slots.len());
        for slot in slots.iter_mut() {
            let quarantined = matches!(slot.health, Health::Quarantined { .. });
            if let Some(handle) = slot.handle.take() {
                if quarantined {
                    // No worker is listening on a quarantined queue;
                    // the handle (if any) is already dead or canceled.
                    if handle.is_finished() {
                        let _ = handle.join();
                    }
                } else {
                    match handle.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => slot.last_error = Some(e.to_string()),
                        Err(_) => slot.last_error = Some("worker panicked".into()),
                    }
                }
            }
            tenants.push(TenantSummary {
                id: slot.id,
                applied: slot.shared.applied.load(Ordering::SeqCst),
                stats: slot.queue.stats(),
                shed_quarantine: slot.shared.shed_quarantine.load(Ordering::SeqCst),
                restarts: slot.restarts,
                quarantined,
                last_error: slot.last_error.clone(),
            });
        }
        drop(slots);
        // Adopted slots were appended as they arrived; report in id
        // order regardless.
        tenants.sort_by_key(|t| t.id);
        Ok(DaemonReport {
            ticks: self.ticks,
            rejected,
            rejected_by_kind: rejected_by_kind
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            tenants,
            drained_early,
            min_impact_trust: f64::from_bits(self.sup.min_impact_bits.load(Ordering::SeqCst)),
            fleet: fleet_summary,
        })
    }

    /// The shed-key log of one tenant (tests; requires
    /// [`QueuePolicy::record_shed`]).
    #[must_use]
    pub fn shed_log_of(&self, tenant: usize) -> Vec<(u64, u64, u64)> {
        read_router(&self.router)
            .get(&tenant)
            .map(|s| s.queue.shed_log())
            .unwrap_or_default()
    }
}

/// State shared between the router, the fleet listener, and the peer
/// monitor.
struct FleetShared {
    fcfg: FleetConfig,
    peers: Mutex<Vec<PeerView>>,
    /// Serializes adopt/install/migrate so two administrative paths
    /// cannot race on the same tenant.
    admin: Mutex<()>,
    rebalances: AtomicU64,
    migrations_in: AtomicU64,
    migrations_out: AtomicU64,
    migrate_failed: AtomicU64,
    foreign: AtomicU64,
    adopted: Mutex<Vec<usize>>,
    start: Instant,
    last_activity_ms: AtomicU64,
    stop: AtomicBool,
}

impl FleetShared {
    fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Restarts the linger window (any fleet event counts as activity).
    fn touch(&self) {
        self.last_activity_ms
            .store(self.elapsed_ms(), Ordering::SeqCst);
    }

    fn idle_ms(&self) -> u64 {
        self.elapsed_ms()
            .saturating_sub(self.last_activity_ms.load(Ordering::SeqCst))
    }

    fn lock_peers(&self) -> MutexGuard<'_, Vec<PeerView>> {
        self.peers.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Alive member ids (self + peers counting as alive), sorted — the
/// roster placement is computed over.
fn alive_ids(fs: &FleetShared, peers: &[PeerView]) -> Vec<usize> {
    let mut ids: Vec<usize> = peers
        .iter()
        .filter(|p| p.is_alive())
        .map(|p| p.spec.id)
        .collect();
    ids.push(fs.fcfg.id);
    ids.sort_unstable();
    ids
}

/// Everything [`Daemon`] needs to shut fleet mode down and report.
struct FleetRuntime {
    shared: Arc<FleetShared>,
    local_addr: std::net::SocketAddr,
    monitor: Option<JoinHandle<()>>,
    listener: Option<JoinHandle<()>>,
}

impl FleetRuntime {
    fn stop(mut self) -> FleetSummary {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        let policy = self.shared.fcfg.policy;
        let peer_trust = self
            .shared
            .lock_peers()
            .iter()
            .map(|p| (p.spec.id, p.trust(&policy)))
            .collect();
        let adopted = self
            .shared
            .adopted
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        FleetSummary {
            id: self.shared.fcfg.id,
            adopted,
            rebalances: self.shared.rebalances.load(Ordering::SeqCst),
            migrations_in: self.shared.migrations_in.load(Ordering::SeqCst),
            migrations_out: self.shared.migrations_out.load(Ordering::SeqCst),
            migrate_failed: self.shared.migrate_failed.load(Ordering::SeqCst),
            foreign: self.shared.foreign.load(Ordering::SeqCst),
            peer_trust,
        }
    }
}

/// Shared handles the fleet threads operate on.
#[derive(Clone)]
struct FleetCtx {
    cfg: Arc<DaemonConfig>,
    sup: Arc<SupervisorShared>,
    router: RouterMap,
    fs: Arc<FleetShared>,
}

fn start_fleet(
    cfg: Arc<DaemonConfig>,
    sup: Arc<SupervisorShared>,
    router: RouterMap,
) -> Result<FleetRuntime, DaemonError> {
    let fcfg = cfg.fleet.clone().expect("start_fleet requires a fleet config");
    let listener = TcpListener::bind(&fcfg.listen).map_err(DaemonError::Io)?;
    listener.set_nonblocking(true).map_err(DaemonError::Io)?;
    let local_addr = listener.local_addr().map_err(DaemonError::Io)?;
    let peers: Vec<PeerView> = fcfg.peers.iter().cloned().map(PeerView::new).collect();
    let fs = Arc::new(FleetShared {
        fcfg,
        peers: Mutex::new(peers),
        admin: Mutex::new(()),
        rebalances: AtomicU64::new(0),
        migrations_in: AtomicU64::new(0),
        migrations_out: AtomicU64::new(0),
        migrate_failed: AtomicU64::new(0),
        foreign: AtomicU64::new(0),
        adopted: Mutex::new(Vec::new()),
        start: Instant::now(),
        last_activity_ms: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let ctx = FleetCtx {
        cfg,
        sup,
        router,
        fs: Arc::clone(&fs),
    };
    let listener_handle = std::thread::Builder::new()
        .name("tibfit-fleet-listen".into())
        .spawn({
            let ctx = ctx.clone();
            move || listener_loop(&ctx, &listener)
        })
        .expect("spawning the fleet listener thread");
    let monitor_handle = std::thread::Builder::new()
        .name("tibfit-fleet-monitor".into())
        .spawn(move || monitor_loop(&ctx))
        .expect("spawning the fleet monitor thread");
    Ok(FleetRuntime {
        shared: fs,
        local_addr,
        monitor: Some(monitor_handle),
        listener: Some(listener_handle),
    })
}

/// One probe round trip: `FPING <self>` → expect any `FPONG`.
fn probe_peer(addr: &str, self_id: usize, timeout: Duration) -> bool {
    let Ok(mut addrs) = addr.to_socket_addrs() else {
        return false;
    };
    let Some(sock) = addrs.next() else {
        return false;
    };
    let Ok(stream) = TcpStream::connect_timeout(&sock, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let mut w = &stream;
    if writeln!(w, "FPING {self_id}").is_err() || w.flush().is_err() {
        return false;
    }
    let mut line = String::new();
    if BufReader::new(&stream).read_line(&mut line).unwrap_or(0) == 0 {
        return false;
    }
    matches!(parse_fleet_line(&line), Ok(Some(FleetMsg::Pong { .. })))
}

/// A peer contacted *us* — as good as a probe success for its health
/// view (and it ends its boot grace).
fn mark_peer_alive(ctx: &FleetCtx, id: usize) {
    let policy = ctx.fs.fcfg.policy;
    let mut peers = ctx.fs.lock_peers();
    if let Some(view) = peers.iter_mut().find(|p| p.spec.id == id) {
        let _ = view.on_success(&policy);
    }
}

/// Probes every peer on the policy cadence; a peer whose trust crosses
/// the floor (confirmed by one slower re-probe) triggers deterministic
/// rebalancing of its tenants onto the survivors.
fn monitor_loop(ctx: &FleetCtx) {
    let policy = ctx.fs.fcfg.policy;
    let interval = Duration::from_millis(policy.check_interval_ms.max(1));
    let timeout = Duration::from_millis(policy.probe_timeout_ms.max(1));
    let self_id = ctx.fs.fcfg.id;
    while !ctx.fs.stop.load(Ordering::SeqCst) && !ctx.sup.stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        let in_grace = ctx.fs.elapsed_ms() < policy.grace_ms;
        let specs: Vec<(usize, String)> = ctx
            .fs
            .lock_peers()
            .iter()
            .map(|p| (p.spec.id, p.spec.addr.clone()))
            .collect();
        let mut rebalance_needed = false;
        for (id, addr) in specs {
            if ctx.fs.stop.load(Ordering::SeqCst) {
                return;
            }
            let ok = probe_peer(&addr, self_id, timeout);
            let newly_dead = {
                let mut peers = ctx.fs.lock_peers();
                let Some(view) = peers.iter_mut().find(|p| p.spec.id == id) else {
                    continue;
                };
                if ok {
                    let _ = view.on_success(&policy);
                    false
                } else {
                    view.on_miss(&policy, in_grace)
                }
            };
            if newly_dead {
                // Double-check with a slower probe before declaring a
                // peer dead: a single stall must not split ownership.
                if probe_peer(&addr, self_id, timeout * 2) {
                    let mut peers = ctx.fs.lock_peers();
                    if let Some(view) = peers.iter_mut().find(|p| p.spec.id == id) {
                        let _ = view.on_success(&policy);
                    }
                } else {
                    rebalance_needed = true;
                }
            }
        }
        if rebalance_needed {
            rebalance(ctx);
        }
    }
}

/// Adopts every tenant the reduced alive roster now places on this
/// daemon and that it does not already host.
fn rebalance(ctx: &FleetCtx) {
    let alive = {
        let peers = ctx.fs.lock_peers();
        alive_ids(&ctx.fs, &peers)
    };
    let seed = ctx.fs.fcfg.seed;
    let self_id = ctx.fs.fcfg.id;
    for tenant in 0..ctx.cfg.tenants {
        if owner_of(seed, tenant, &alive) != Some(self_id) {
            continue;
        }
        if read_router(&ctx.router).contains_key(&tenant) {
            continue;
        }
        if let Err(e) = adopt_tenant(ctx, tenant) {
            eprintln!("tibfit-daemon: fleet {self_id}: adopting tenant {tenant} failed: {e}");
        }
    }
}

/// Takes over a dead peer's tenant: resume from its shared state file
/// exactly as crash-restart does, then catch up to the head of the
/// stream by re-streaming the catch-up replay file through this slot
/// (dedup regenerates the decision-log suffix byte-identically). The
/// slot only becomes routable after catch-up, so the live router never
/// interleaves ticks with it.
fn adopt_tenant(ctx: &FleetCtx, tenant: usize) -> Result<(), DaemonError> {
    let _admin = ctx.fs.admin.lock().unwrap_or_else(PoisonError::into_inner);
    if read_router(&ctx.router).contains_key(&tenant) {
        return Ok(());
    }
    let (core, route) = build_slot(&ctx.cfg, tenant, None)?;
    let mut ticks = 0u64;
    if let Some(path) = &ctx.fs.fcfg.catchup_replay {
        let file = File::open(path).map_err(DaemonError::Io)?;
        let mut reader = BufReader::new(file);
        let mut raw = Vec::new();
        loop {
            raw.clear();
            if reader.read_until(b'\n', &mut raw).map_err(DaemonError::Io)? == 0 {
                break;
            }
            let Ok(text) = std::str::from_utf8(&raw) else {
                continue;
            };
            match parse_line(text.trim_end_matches('\n')) {
                Ok(Some(Frame::Report(r))) if r.tenant == tenant => {
                    route.queue.offer(r);
                }
                Ok(Some(Frame::Tick)) => {
                    ticks += 1;
                    let positions = Arc::clone(&route.positions);
                    route
                        .queue
                        .end_tick(ticks, move |r| positions.impact_of(r.x, r.y));
                }
                _ => {}
            }
        }
    }
    route.ticks.store(ticks, Ordering::SeqCst);
    write_router(&ctx.router).insert(tenant, route);
    lock_slots(&ctx.sup).push(core);
    ctx.fs.rebalances.fetch_add(1, Ordering::SeqCst);
    ctx.fs
        .adopted
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(tenant);
    ctx.fs.touch();
    Ok(())
}

/// Installs a pushed migration bundle: validate, persist the embedded
/// state file, rebuild the tenant from it, seed the live highwaters,
/// replay the renumbered recovery buffer, re-offer the pending
/// records, and only then make the tenant routable. Fail-closed: any
/// error installs nothing.
fn install_bundle(ctx: &FleetCtx, bundle: MigrationBundle) -> Result<(), MigrateError> {
    let _admin = ctx.fs.admin.lock().unwrap_or_else(PoisonError::into_inner);
    let cfg = &ctx.cfg;
    let tenant = bundle.tenant;
    if tenant >= cfg.tenants {
        return Err(MigrateError::Mismatch(format!(
            "tenant {tenant} is outside this fleet's 0..{} range",
            cfg.tenants
        )));
    }
    let scenario = (cfg.scenario)(tenant_seed(cfg.master_seed, tenant));
    if bundle.seed != scenario.seed {
        return Err(MigrateError::Mismatch(format!(
            "bundle seed {} does not match the configured scenario seed {}",
            bundle.seed, scenario.seed
        )));
    }
    if read_router(&ctx.router).contains_key(&tenant) {
        return Err(MigrateError::Mismatch(format!(
            "tenant {tenant} is already hosted here"
        )));
    }
    let path = tenant_state_path(&cfg.state_dir, tenant);
    if bundle.state_bytes.is_empty() {
        // The source never snapshotted: the replay buffer is the whole
        // history and must rebuild from a fresh engine.
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(MigrateError::Io(e)),
        }
    } else {
        let st = decode_tenant_state(&bundle.state_bytes)
            .map_err(|e| MigrateError::Mismatch(format!("embedded state: {e}")))?;
        if st.id != tenant || st.seed != scenario.seed || st.round != bundle.state_round {
            return Err(MigrateError::Mismatch(
                "embedded state disagrees with the bundle metadata".into(),
            ));
        }
        write_tenant_state(&path, &bundle.state_bytes)
            .map_err(|e| MigrateError::Mismatch(format!("state write: {e}")))?;
    }
    let replay_ticks = bundle
        .replay
        .iter()
        .filter(|i| matches!(i, WorkItem::TickEnd(_)))
        .count() as u64;
    let (core, route) = build_slot(
        cfg,
        tenant,
        Some(BundleSeed {
            live_highwater: bundle.live_highwater,
            live_stats: bundle.live_stats,
            recovery: bundle.replay,
            replay_ticks,
        }),
    )
    .map_err(|e| MigrateError::Mismatch(format!("install: {e}")))?;
    for r in bundle.pending {
        route.queue.offer(r);
    }
    write_router(&ctx.router).insert(tenant, route);
    lock_slots(&ctx.sup).push(core);
    ctx.fs.migrations_in.fetch_add(1, Ordering::SeqCst);
    ctx.fs.touch();
    Ok(())
}

fn wait_drained(queue: &SharedQueue, deadline: Duration) -> bool {
    let until = Instant::now() + deadline;
    while queue.has_outstanding() {
        if Instant::now() > until {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// Operator-driven live migration: quiesce the tenant, capture its
/// snapshot + live queue views + recovery buffer + pending records,
/// ship the bundle, and release the tenant only on the destination's
/// acknowledgement. Any failure re-offers the pending records,
/// respawns the worker, and keeps serving locally.
fn migrate_out(ctx: &FleetCtx, tenant: usize, dest: usize) -> Result<(), MigrateError> {
    let _admin = ctx.fs.admin.lock().unwrap_or_else(PoisonError::into_inner);
    let dest_addr = ctx
        .fs
        .fcfg
        .peers
        .iter()
        .find(|p| p.id == dest)
        .map(|p| p.addr.clone())
        .ok_or_else(|| MigrateError::Mismatch(format!("unknown destination daemon {dest}")))?;
    // Unroute first: no new records or ticks reach the tenant while it
    // is being captured.
    let Some(route) = write_router(&ctx.router).remove(&tenant) else {
        return Err(MigrateError::Mismatch(format!(
            "tenant {tenant} is not hosted here"
        )));
    };
    if !wait_drained(&route.queue, Duration::from_secs(10)) {
        write_router(&ctx.router).insert(tenant, route);
        return Err(MigrateError::Mismatch(format!(
            "tenant {tenant} did not drain in time"
        )));
    }
    // Detach the slot from the watchdog so the fenced worker below is
    // not mistaken for a crash and respawned mid-transfer.
    let core = {
        let mut slots = lock_slots(&ctx.sup);
        slots
            .iter()
            .position(|s| s.id == tenant)
            .map(|i| slots.remove(i))
    };
    let Some(mut core) = core else {
        write_router(&ctx.router).insert(tenant, route);
        return Err(MigrateError::Mismatch(format!(
            "tenant {tenant} has no supervisor slot"
        )));
    };
    // Fence the worker (it exits through its flush path) and capture
    // the stable views.
    let (_generation, replay) = core.queue.recovery_view();
    let pending = core.queue.drain_pending();
    let (live_highwater, live_stats) = core.queue.snapshot_view();
    if let Some(handle) = core.handle.take() {
        // Joining guarantees the worker's final flush hit the log file
        // before the destination truncates and regenerates it.
        let _ = handle.join();
    }
    let scenario = (ctx.cfg.scenario)(tenant_seed(ctx.cfg.master_seed, tenant));
    let state_path = tenant_state_path(&ctx.cfg.state_dir, tenant);
    let outcome = (|| -> Result<(), MigrateError> {
        let (state_bytes, state_round) = match std::fs::read(&state_path) {
            Ok(bytes) => {
                let st = decode_tenant_state(&bytes)
                    .map_err(|e| MigrateError::Mismatch(format!("state file: {e}")))?;
                let round = st.round;
                (bytes, round)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), 0),
            Err(e) => return Err(MigrateError::Io(e)),
        };
        let bundle = MigrationBundle {
            tenant,
            seed: scenario.seed,
            state_round,
            state_bytes,
            live_highwater,
            live_stats,
            replay,
            pending: pending.clone(),
        };
        push_bundle(&dest_addr, tenant, &encode_bundle(&bundle))
    })();
    match outcome {
        Ok(()) => {
            // Released: the destination owns the tenant (and its log
            // file) now. Supersede the sink so nothing stale can write.
            lock_sink(&core.sink).supersede();
            ctx.fs.migrations_out.fetch_add(1, Ordering::SeqCst);
            ctx.fs.touch();
            Ok(())
        }
        Err(e) => {
            // Keep serving locally: restore the pending records and
            // respawn the worker from snapshot + recovery buffer.
            for r in pending {
                core.queue.offer(r);
            }
            respawn_slot(&ctx.cfg, &mut core, 0);
            lock_slots(&ctx.sup).push(core);
            write_router(&ctx.router).insert(tenant, route);
            ctx.fs.migrate_failed.fetch_add(1, Ordering::SeqCst);
            ctx.fs.touch();
            Err(e)
        }
    }
}

/// Renders the status dump (fleet port `STATUS` and ingest `Q status`
/// share it, under different line prefixes).
fn status_dump(
    prefix: &str,
    cfg: &DaemonConfig,
    fs: &FleetShared,
    router: &RouterMap,
) -> Vec<String> {
    let policy = fs.fcfg.policy;
    let mut out = vec![format!("{prefix} self {}", fs.fcfg.id)];
    let alive = {
        let peers = fs.lock_peers();
        for p in peers.iter() {
            let state = match p.state {
                PeerState::Active => "active",
                PeerState::Quarantined => "quarantined",
                PeerState::Probation => "probation",
            };
            out.push(format!(
                "{prefix} peer {} {state} {:.6}",
                p.spec.id,
                p.trust(&policy)
            ));
        }
        alive_ids(fs, &peers)
    };
    let hosted = read_router(router);
    for tenant in 0..cfg.tenants {
        let owner = if hosted.contains_key(&tenant) {
            fs.fcfg.id.to_string()
        } else {
            owner_of(fs.fcfg.seed, tenant, &alive)
                .map_or_else(|| "-".to_string(), |o| o.to_string())
        };
        out.push(format!("{prefix} tenant {tenant} {owner}"));
    }
    out.push(format!("{prefix} end"));
    out
}

fn listener_loop(ctx: &FleetCtx, listener: &TcpListener) {
    // Accept latency lands on every fleet round trip (probe, STATUS,
    // and twice per MIGRATE: the command and the bundle push), so the
    // poll must stay well under the migrate-restore budget.
    const POLL: Duration = Duration::from_millis(1);
    while !ctx.fs.stop.load(Ordering::SeqCst) && !ctx.sup.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Connections are short-lived (one command each); a
                // thread per connection keeps probe replies prompt
                // while an install or migration is in flight.
                let ctx = ctx.clone();
                let _ = std::thread::Builder::new()
                    .name("tibfit-fleet-conn".into())
                    .spawn(move || handle_fleet_conn(&ctx, &stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One fleet-port connection: a single command line, an optional framed
/// payload (`MPUSH`), and a single reply line.
fn handle_fleet_conn(ctx: &FleetCtx, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    let mut w = stream;
    match parse_fleet_line(&line) {
        Ok(Some(FleetMsg::Ping { from })) => {
            mark_peer_alive(ctx, from);
            let _ = writeln!(w, "FPONG {}", ctx.fs.fcfg.id);
        }
        Ok(Some(FleetMsg::Status)) => {
            for l in status_dump("S", &ctx.cfg, &ctx.fs, &ctx.router) {
                let _ = writeln!(w, "{l}");
            }
        }
        Ok(Some(FleetMsg::Migrate { tenant, dest })) => match migrate_out(ctx, tenant, dest) {
            Ok(()) => {
                let _ = writeln!(w, "MOK {tenant}");
            }
            Err(e) => {
                let _ = writeln!(w, "MERR {e}");
            }
        },
        Ok(Some(FleetMsg::Push { tenant })) => {
            let installed = read_framed(&mut reader, MAX_BUNDLE_BYTES)
                .map_err(MigrateError::from)
                .and_then(|bytes| decode_bundle(&bytes))
                .and_then(|bundle| {
                    if bundle.tenant == tenant {
                        install_bundle(ctx, bundle)
                    } else {
                        Err(MigrateError::Mismatch(format!(
                            "MPUSH names tenant {tenant} but the bundle carries {}",
                            bundle.tenant
                        )))
                    }
                });
            match installed {
                Ok(()) => {
                    let _ = writeln!(w, "MOK {tenant}");
                }
                Err(e) => {
                    let _ = writeln!(w, "MERR {e}");
                }
            }
        }
        // Replies and noise are ignored; a reply line is never a
        // request.
        Ok(Some(FleetMsg::Pong { .. } | FleetMsg::PushOk { .. } | FleetMsg::PushErr(_)))
        | Ok(None) => {}
        Err(e) => {
            let _ = writeln!(w, "MERR {e}");
        }
    }
    let _ = w.flush();
}

impl DaemonReport {
    /// Renders the trace-counter block (`daemon.*` keys) the CLI prints
    /// on exit.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out = vec![
            ("daemon.ticks".to_string(), self.ticks),
            ("daemon.ingest.rejected".to_string(), self.rejected),
        ];
        for (kind, n) in &self.rejected_by_kind {
            out.push((format!("daemon.ingest.rejected.{kind}"), *n));
        }
        for t in &self.tenants {
            let p = format!("daemon.t{}", t.id);
            out.push((format!("{p}.applied"), t.applied));
            out.push((format!("{p}.offered"), t.stats.offered));
            out.push((format!("{p}.admitted"), t.stats.admitted));
            out.push((format!("{p}.shed"), t.stats.shed_total()));
            out.push((format!("{p}.shed.quarantine"), t.shed_quarantine));
            out.push((format!("{p}.duplicates"), t.stats.duplicates));
            out.push((format!("{p}.backpressure.waits"), t.stats.backpressure_waits));
            out.push((format!("{p}.restarts"), t.restarts));
            out.push((format!("{p}.quarantined"), u64::from(t.quarantined)));
        }
        if let Some(f) = &self.fleet {
            out.push(("fleet.rebalance.count".to_string(), f.rebalances));
            out.push((
                "fleet.migrations".to_string(),
                f.migrations_in + f.migrations_out,
            ));
            out.push(("fleet.migrations.in".to_string(), f.migrations_in));
            out.push(("fleet.migrations.out".to_string(), f.migrations_out));
            out.push(("fleet.migrate.failed".to_string(), f.migrate_failed));
            out.push(("fleet.foreign".to_string(), f.foreign));
            out.push(("fleet.adopted".to_string(), f.adopted.len() as u64));
            for (peer, trust) in &f.peer_trust {
                // Trust is reported in milli-units so it fits the u64
                // counter channel.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let millis = (trust * 1000.0).round().clamp(0.0, 1000.0) as u64;
                out.push((format!("fleet.peer_trust.p{peer}"), millis));
            }
        }
        out
    }
}
