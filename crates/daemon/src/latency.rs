//! Lock-free fixed-bucket latency histogram for the query path.
//!
//! An HDR-style layout over nanoseconds: values below [`SUBS`] land in
//! one bucket each (exact), and every power-of-two octave above that is
//! split into [`SUBS`] linear sub-buckets, bounding the relative error
//! of any reported quantile to `1 / SUBS` (≈6%). The bucket array is
//! plain `AtomicU64`s, so workers record with one relaxed increment and
//! readers take percentiles from a racing snapshot — good enough for a
//! monitoring figure, with no lock on the hot path.
//!
//! ```rust
//! use tibfit_daemon::latency::Histogram;
//!
//! let h = Histogram::new();
//! for ns in [250, 900, 1_200, 40_000] {
//!     h.record(ns);
//! }
//! assert_eq!(h.count(), 4);
//! assert!(h.percentile(50.0) >= 900);
//! assert!(h.percentile(100.0) >= 40_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (and the exact-count range `0..SUBS`).
const SUB_BITS: u32 = 4;
/// Number of sub-buckets each power-of-two octave is split into.
pub const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: `SUBS` exact buckets plus `SUBS` per octave for
/// the `64 - SUB_BITS` octaves a `u64` value can fall in.
const BUCKETS: usize = SUBS * (64 - SUB_BITS as usize + 1);

/// Bucket index for a nanosecond value. Total order is preserved:
/// `a <= b` implies `index(a) <= index(b)`.
fn index_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let major = 63 - v.leading_zeros(); // >= SUB_BITS
    let minor = (v >> (major - SUB_BITS)) & (SUBS as u64 - 1);
    (major - SUB_BITS + 1) as usize * SUBS + minor as usize
}

/// Largest value that maps into bucket `i` — what percentiles report,
/// so a quantile is never under-stated by bucketing.
fn upper_bound(i: usize) -> u64 {
    if i < SUBS {
        return i as u64;
    }
    let major = (i / SUBS) as u32 + SUB_BITS - 1;
    let minor = (i % SUBS) as u128;
    // The topmost bucket's bound is 2^64; widen so it saturates cleanly.
    let bound = ((SUBS as u128 + minor + 1) << (major - SUB_BITS)) - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

/// Concurrent fixed-bucket latency histogram over nanoseconds.
///
/// `record` is wait-free (one relaxed `fetch_add`); `percentile` and
/// `merge_from` read a racing snapshot, which is fine for reporting.
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. Allocates the full bucket array up front so
    /// recording never allocates.
    #[must_use]
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
        }
    }

    /// Records one sample, in nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.counts[index_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self` — how per-slot
    /// histograms combine into a daemon-wide figure.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The value (ns) at or below which `p` percent of samples fall,
    /// rounded up to its bucket's upper bound. Returns 0 when empty.
    /// `p` is clamped to `0.0..=100.0`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((p / 100.0 * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return upper_bound(i);
            }
        }
        // Racing recorders can make `total` run ahead of the bucket
        // sums; the last nonempty bucket is then the honest answer.
        upper_bound(
            self.counts
                .iter()
                .rposition(|c| c.load(Ordering::Relaxed) != 0)
                .unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut probes: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|j| (1u64 << shift).saturating_add(j)))
            .collect();
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let i = index_of(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
        assert_eq!(index_of(0), 0);
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bound_brackets_its_bucket() {
        for v in (0..4096u64).chain([1 << 20, 1 << 33, u64::MAX / 2, u64::MAX]) {
            let i = index_of(v);
            let ub = upper_bound(i);
            assert!(ub >= v, "upper bound {ub} below member {v}");
            assert_eq!(index_of(ub), i, "upper bound left its bucket for {v}");
        }
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let h = Histogram::new();
        // 99 samples at ~1µs, one at ~10ms.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(10_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0);
        assert!((1_000..2_000).contains(&p50), "p50 was {p50}");
        let p99 = h.percentile(99.0);
        assert!((1_000..2_000).contains(&p99), "p99 was {p99}");
        let p100 = h.percentile(100.0);
        assert!(p100 >= 10_000_000, "p100 was {p100}");
        assert!(p100 < 11_000_000, "p100 bucket too wide: {p100}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn merge_combines_slot_histograms() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..10 {
            a.record(500);
            b.record(2_000_000);
        }
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), 20);
        assert!(merged.percentile(25.0) < 1_000);
        assert!(merged.percentile(99.0) >= 2_000_000);
    }
}
