//! `tibfit-daemon` — a supervised, self-healing trust service.
//!
//! ```text
//! tibfit-daemon serve --replay results/exp1.replay --tenants 2 --seed 42
//! tibfit-daemon serve --listen 127.0.0.1:7700 --state-dir daemon-state
//! tibfit-daemon gen-replay --out results/exp1.replay --tenants 2 --seed 42 --ticks 40
//! tibfit-daemon stream --connect 127.0.0.1:7700 --replay results/exp1.replay
//! ```
//!
//! `serve` (the default when the first argument is a flag) ingests
//! newline-framed reports from a replay file, stdin, or a TCP
//! listener; snapshots every tenant on a tick cadence; restarts or
//! quarantines misbehaving workers; and on SIGINT/SIGTERM drains,
//! writes final snapshots, and exits 0 — a restart resumes
//! byte-identically from the state directory.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;

use tibfit_daemon::fleet::{FleetConfig, FleetPolicy, PeerSpec};
use tibfit_daemon::net_io::{stream_replay, FanInSource, ListenSource, DEFAULT_STREAM_DEADLINE_MS};
use tibfit_daemon::{Daemon, DaemonConfig, DaemonReport, EngineKind};
use tibfit_experiments::replay::{replay_records, write_replay};
use tibfit_faults::ProcessCrashPlan;
use tibfit_sim::shutdown;

fn usage() -> &'static str {
    "tibfit-daemon — supervised multi-tenant TIBFIT trust service

USAGE:
  tibfit-daemon [serve] [OPTIONS]      ingest and decide (default)
  tibfit-daemon gen-replay [OPTIONS]   write a replay file
  tibfit-daemon stream [OPTIONS]       stream a replay to a listener
  tibfit-daemon migrate [OPTIONS]      order a fleet daemon to move a tenant
  tibfit-daemon status [OPTIONS]       dump a fleet daemon's roster + placement

SERVE OPTIONS:
  --replay <FILE>          read frames from a replay file
  --stdin                  read frames from stdin (default)
  --listen <ADDR>          accept frame streams over TCP
  --max-conns <N>          end after N connections (listen mode)
  --fan-in <K>             merge K concurrent connections (listen mode)
  --tenants <N>            hosted fields [2]
  --seed <S>               master seed [42]
  --engine <seq|sharded>   engine flavor [seq]
  --threads <K>            sharded worker threads [2]
  --state-dir <DIR>        snapshots + manifest [daemon-state]
  --decisions <DIR>        decision logs [<state-dir>/decisions]
  --queue-cap <N>          per-tenant queue capacity [1024]
  --budget <N>             records admitted per tick [64]
  --snapshot-every <N>     snapshot cadence in ticks [4]
  --record-shed            keep the shed-key log (tests)
  --drain-after-ticks <N>  drain cleanly after N ticks (tests)
  --crash-after-ticks <N>  abort the process after N ticks (tests)
  --crash-seed <S> --crash-horizon <H>
                           abort at a seeded tick in [1, H) (tests)

FLEET SERVE OPTIONS (all fleet members share --fleet-seed):
  --fleet-id <N>           this daemon's fleet member id
  --fleet-listen <ADDR>    fleet port (heartbeats, STATUS, MIGRATE, MPUSH)
  --fleet-peer <ID=ADDR>   a peer's fleet port (repeat per peer)
  --fleet-seed <S>         placement seed [master seed]
  --fleet-catchup <FILE>   replay file re-streamed to catch adopted tenants up
  --fleet-linger-ms <MS>   idle window to wait for fleet events after EOF [3000]
  --fleet-grace-ms <MS>    boot grace before misses count [2000]
  --fleet-check-ms <MS>    peer probe cadence [50]
  --fleet-probe-ms <MS>    per-probe timeout [250]

GEN-REPLAY OPTIONS:
  --out <FILE> --tenants <N> --seed <S> --ticks <N> --per-tick <P>

STREAM OPTIONS:
  --connect <ADDR> --replay <FILE> [--retry-seed <S>]
  [--max-attempts <N>] [--drop-after-lines <N>] [--deadline-ms <MS>]

MIGRATE OPTIONS:
  --connect <ADDR> --tenant <T> --dest <ID>
                           ask the daemon at ADDR (fleet port) to hand
                           tenant T to fleet member ID

STATUS OPTIONS:
  --connect <ADDR>         dump roster, per-peer trust, and placement
"
}

struct ArgStream {
    args: Vec<String>,
    pos: usize,
}

impl ArgStream {
    fn next(&mut self) -> Option<String> {
        let v = self.args.get(self.pos).cloned();
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    fn value(&mut self, flag: &str) -> Result<String, String> {
        self.next().ok_or_else(|| format!("{flag} needs a value"))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
    }
}

enum Source {
    Stdin,
    Replay(PathBuf),
    Listen { addr: String, max_conns: Option<u32> },
    FanIn { addr: String, conns: u32 },
}

struct ServeOpts {
    source: Source,
    cfg: DaemonConfig,
}

/// `ID=ADDR`, e.g. `2=127.0.0.1:7802`.
fn parse_peer(raw: &str) -> Result<PeerSpec, String> {
    let (id, addr) = raw
        .split_once('=')
        .ok_or_else(|| format!("--fleet-peer expects ID=ADDR, got {raw:?}"))?;
    let id = id
        .parse()
        .map_err(|_| format!("--fleet-peer: cannot parse id in {raw:?}"))?;
    if addr.is_empty() {
        return Err(format!("--fleet-peer: empty address in {raw:?}"));
    }
    Ok(PeerSpec {
        id,
        addr: addr.to_string(),
    })
}

fn parse_serve(args: &mut ArgStream) -> Result<ServeOpts, String> {
    let mut cfg = DaemonConfig::standard(2, 42, PathBuf::from("daemon-state"));
    let mut source = Source::Stdin;
    let mut decisions: Option<PathBuf> = None;
    let mut max_conns: Option<u32> = None;
    let mut fan_in: Option<u32> = None;
    let mut crash_seed: Option<u64> = None;
    let mut crash_horizon: Option<u64> = None;
    let mut fleet_id: Option<usize> = None;
    let mut fleet_listen: Option<String> = None;
    let mut fleet_peers: Vec<PeerSpec> = Vec::new();
    let mut fleet_seed: Option<u64> = None;
    let mut fleet_catchup: Option<PathBuf> = None;
    let mut fleet_linger_ms = 3000u64;
    let mut fleet_policy = FleetPolicy::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--replay" => source = Source::Replay(PathBuf::from(args.value("--replay")?)),
            "--stdin" => source = Source::Stdin,
            "--listen" => {
                source = Source::Listen {
                    addr: args.value("--listen")?,
                    max_conns: None,
                }
            }
            "--max-conns" => max_conns = Some(args.parsed("--max-conns")?),
            "--fan-in" => fan_in = Some(args.parsed("--fan-in")?),
            "--fleet-id" => fleet_id = Some(args.parsed("--fleet-id")?),
            "--fleet-listen" => fleet_listen = Some(args.value("--fleet-listen")?),
            "--fleet-peer" => fleet_peers.push(parse_peer(&args.value("--fleet-peer")?)?),
            "--fleet-seed" => fleet_seed = Some(args.parsed("--fleet-seed")?),
            "--fleet-catchup" => {
                fleet_catchup = Some(PathBuf::from(args.value("--fleet-catchup")?));
            }
            "--fleet-linger-ms" => fleet_linger_ms = args.parsed("--fleet-linger-ms")?,
            "--fleet-grace-ms" => fleet_policy.grace_ms = args.parsed("--fleet-grace-ms")?,
            "--fleet-check-ms" => {
                fleet_policy.check_interval_ms = args.parsed("--fleet-check-ms")?;
            }
            "--fleet-probe-ms" => {
                fleet_policy.probe_timeout_ms = args.parsed("--fleet-probe-ms")?;
            }
            "--tenants" => cfg.tenants = args.parsed("--tenants")?,
            "--seed" => cfg.master_seed = args.parsed("--seed")?,
            "--engine" => {
                cfg.engine = EngineKind::from_name(&args.value("--engine")?)
                    .map_err(|e| e.to_string())?;
            }
            "--threads" => cfg.threads = args.parsed("--threads")?,
            "--state-dir" => cfg.state_dir = PathBuf::from(args.value("--state-dir")?),
            "--decisions" => decisions = Some(PathBuf::from(args.value("--decisions")?)),
            "--queue-cap" => cfg.queue.capacity = args.parsed("--queue-cap")?,
            "--budget" => cfg.queue.tick_budget = args.parsed("--budget")?,
            "--snapshot-every" => cfg.snapshot_every = args.parsed("--snapshot-every")?,
            "--record-shed" => cfg.queue.record_shed = true,
            "--drain-after-ticks" => {
                cfg.drain_after_ticks = Some(args.parsed("--drain-after-ticks")?);
            }
            "--crash-after-ticks" => {
                cfg.crash_plan = ProcessCrashPlan::at(args.parsed("--crash-after-ticks")?);
            }
            "--crash-seed" => crash_seed = Some(args.parsed("--crash-seed")?),
            "--crash-horizon" => crash_horizon = Some(args.parsed("--crash-horizon")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown serve flag {other:?}\n\n{}", usage())),
        }
    }
    if let (Some(seed), Some(horizon)) = (crash_seed, crash_horizon) {
        cfg.crash_plan = ProcessCrashPlan::seeded(seed, horizon);
    } else if crash_seed.is_some() || crash_horizon.is_some() {
        return Err("--crash-seed and --crash-horizon must be given together".into());
    }
    cfg.decisions_dir = decisions.unwrap_or_else(|| cfg.state_dir.join("decisions"));
    if let Some(conns) = fan_in {
        let Source::Listen { addr, .. } = source else {
            return Err("--fan-in requires --listen".into());
        };
        source = Source::FanIn { addr, conns };
    } else if let Source::Listen { max_conns: mc, .. } = &mut source {
        *mc = max_conns;
    }
    let fleet_flags_used = fleet_id.is_some()
        || fleet_listen.is_some()
        || !fleet_peers.is_empty()
        || fleet_seed.is_some()
        || fleet_catchup.is_some();
    if fleet_flags_used {
        let id = fleet_id.ok_or("fleet mode requires --fleet-id")?;
        let listen = fleet_listen.ok_or("fleet mode requires --fleet-listen")?;
        cfg.fleet = Some(FleetConfig {
            id,
            peers: fleet_peers,
            seed: fleet_seed.unwrap_or(cfg.master_seed),
            listen,
            linger_ms: fleet_linger_ms,
            catchup_replay: fleet_catchup,
            policy: fleet_policy,
        });
    }
    Ok(ServeOpts { source, cfg })
}

fn print_report(report: &DaemonReport) {
    for (key, value) in report.counters() {
        println!("{key} {value}");
    }
    println!("daemon.min_impact_trust {:.6}", report.min_impact_trust);
    println!(
        "daemon.exit {}",
        if report.drained_early { "drained" } else { "eof" }
    );
}

fn run_serve(opts: ServeOpts) -> Result<(), String> {
    shutdown::install_signal_handlers();
    let mut daemon = Daemon::new(opts.cfg).map_err(|e| e.to_string())?;
    if let Some(addr) = daemon.fleet_addr() {
        eprintln!("tibfit-daemon: fleet port on {addr}");
    }
    let report = match opts.source {
        Source::Stdin => daemon.run(std::io::stdin().lock()),
        Source::Replay(path) => {
            let file = std::fs::File::open(&path)
                .map_err(|e| format!("cannot open replay {}: {e}", path.display()))?;
            daemon.run(std::io::BufReader::new(file))
        }
        Source::Listen { addr, max_conns } => {
            let source = ListenSource::bind(&addr, max_conns).map_err(|e| e.to_string())?;
            let local = source.local_addr().map_err(|e| e.to_string())?;
            eprintln!("tibfit-daemon: listening on {local}");
            daemon.run(source)
        }
        Source::FanIn { addr, conns } => {
            let source = FanInSource::bind(&addr, conns).map_err(|e| e.to_string())?;
            let local = source.local_addr().map_err(|e| e.to_string())?;
            eprintln!("tibfit-daemon: listening on {local} (fan-in {conns})");
            daemon.run(source)
        }
    }
    .map_err(|e| e.to_string())?;
    print_report(&report);
    Ok(())
}

fn run_gen_replay(args: &mut ArgStream) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut tenants = 2usize;
    let mut seed = 42u64;
    let mut ticks = 40u64;
    let mut per_tick = 1u32;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(args.value("--out")?)),
            "--tenants" => tenants = args.parsed("--tenants")?,
            "--seed" => seed = args.parsed("--seed")?,
            "--ticks" => ticks = args.parsed("--ticks")?,
            "--per-tick" => per_tick = args.parsed("--per-tick")?,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown gen-replay flag {other:?}")),
        }
    }
    let out = out.ok_or("gen-replay requires --out")?;
    let records = replay_records(tenants, seed, ticks, per_tick);
    write_replay(&out, &records).map_err(|e| e.to_string())?;
    println!(
        "wrote {} records ({} tenants × {} ticks × {} per tick) to {}",
        records.len(),
        tenants,
        ticks,
        per_tick,
        out.display()
    );
    Ok(())
}

fn run_stream(args: &mut ArgStream) -> Result<(), String> {
    let mut connect: Option<String> = None;
    let mut replay: Option<PathBuf> = None;
    let mut retry_seed = 7u64;
    let mut max_attempts = 8u32;
    let mut drop_after_lines: Option<u64> = None;
    let mut deadline_ms = DEFAULT_STREAM_DEADLINE_MS;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => connect = Some(args.value("--connect")?),
            "--replay" => replay = Some(PathBuf::from(args.value("--replay")?)),
            "--retry-seed" => retry_seed = args.parsed("--retry-seed")?,
            "--max-attempts" => max_attempts = args.parsed("--max-attempts")?,
            "--drop-after-lines" => drop_after_lines = Some(args.parsed("--drop-after-lines")?),
            "--deadline-ms" => deadline_ms = args.parsed("--deadline-ms")?,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown stream flag {other:?}")),
        }
    }
    let connect = connect.ok_or("stream requires --connect")?;
    let replay = replay.ok_or("stream requires --replay")?;
    let outcome = stream_replay(
        &connect,
        &replay,
        retry_seed,
        max_attempts,
        drop_after_lines,
        deadline_ms,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "streamed {} lines over {} connection(s)",
        outcome.lines_sent, outcome.connections
    );
    Ok(())
}

/// Sends one fleet-port command line and returns the reply lines
/// (`limit` bounds how many are read; `None` reads until the `… end`
/// sentinel or EOF).
fn fleet_request(addr: &str, command: &str, limit: Option<usize>) -> Result<Vec<String>, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut w = &stream;
    writeln!(w, "{command}").map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(&stream);
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        let trimmed = line.trim_end().to_string();
        let is_end = trimmed.ends_with(" end");
        lines.push(trimmed);
        if is_end || limit.is_some_and(|n| lines.len() >= n) {
            break;
        }
    }
    Ok(lines)
}

fn run_migrate(args: &mut ArgStream) -> Result<(), String> {
    let mut connect: Option<String> = None;
    let mut tenant: Option<usize> = None;
    let mut dest: Option<usize> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => connect = Some(args.value("--connect")?),
            "--tenant" => tenant = Some(args.parsed("--tenant")?),
            "--dest" => dest = Some(args.parsed("--dest")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown migrate flag {other:?}")),
        }
    }
    let connect = connect.ok_or("migrate requires --connect")?;
    let tenant = tenant.ok_or("migrate requires --tenant")?;
    let dest = dest.ok_or("migrate requires --dest")?;
    let reply = fleet_request(&connect, &format!("MIGRATE {tenant} {dest}"), Some(1))?;
    match reply.first().map(String::as_str) {
        Some(ok) if ok == format!("MOK {tenant}") => {
            println!("migrated tenant {tenant} to daemon {dest}");
            Ok(())
        }
        Some(err) => Err(format!("migration refused: {err}")),
        None => Err("migration failed: connection closed without a reply".into()),
    }
}

fn run_status(args: &mut ArgStream) -> Result<(), String> {
    let mut connect: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => connect = Some(args.value("--connect")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown status flag {other:?}")),
        }
    }
    let connect = connect.ok_or("status requires --connect")?;
    for line in fleet_request(&connect, "STATUS", None)? {
        println!("{line}");
    }
    Ok(())
}

fn dispatch() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest_from) = match argv.first().map(String::as_str) {
        None => ("serve", 0),
        Some("serve") => ("serve", 1),
        Some("gen-replay") => ("gen-replay", 1),
        Some("stream") => ("stream", 1),
        Some("migrate") => ("migrate", 1),
        Some("status") => ("status", 1),
        Some("--help" | "-h") => return Err(usage().to_string()),
        Some(flag) if flag.starts_with("--") => ("serve", 0),
        Some(other) => {
            return Err(format!("unknown subcommand {other:?}\n\n{}", usage()));
        }
    };
    let mut args = ArgStream {
        args: argv,
        pos: rest_from,
    };
    match cmd {
        "serve" => run_serve(parse_serve(&mut args)?),
        "gen-replay" => run_gen_replay(&mut args),
        "stream" => run_stream(&mut args),
        "migrate" => run_migrate(&mut args),
        "status" => run_status(&mut args),
        _ => unreachable!("dispatch covers every command"),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
