//! Fleet membership: deterministic tenant placement and the
//! Impact-style peer health view.
//!
//! ## Placement
//!
//! Tenant → daemon assignment is rendezvous (highest-random-weight)
//! hashing over a shared placement seed: every daemon hashes
//! `(seed, tenant, daemon)` and the tenant belongs to the alive daemon
//! with the greatest hash. Placement is a *pure function* of the
//! `(seed, alive-roster)` pair — no coordinator, no state, and every
//! survivor computes the identical rebalance when a peer dies.
//!
//! ## Peer health
//!
//! Each daemon probes its peers on a fixed cadence and keeps the same
//! Impact-style trust the in-process watchdog keeps for workers:
//! `trust = e^(-λ · consecutive_misses)`, reset by any successful
//! contact. A peer whose trust crosses the floor is *quarantined*
//! (declared dead): its tenants are deterministically rebalanced onto
//! the survivors and, like a quarantined worker slot, ownership does
//! not bounce back — a reappearing peer walks the probation ladder
//! (consecutive successful probes) before it counts as alive again for
//! *future* placement decisions.
//!
//! Misses are only counted after a peer has been contacted at least
//! once or its startup grace has elapsed, so a fleet that boots in an
//! arbitrary order does not declare its slowest member dead on tick
//! one.

use std::path::PathBuf;

use crate::DaemonError;

/// Probing and trust policy for peer daemons — the fleet-level mirror
/// of the worker watchdog's policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPolicy {
    /// Milliseconds between peer probes.
    pub check_interval_ms: u64,
    /// Trust decay per consecutive missed probe.
    pub lambda: f64,
    /// Below this trust a peer is quarantined and its tenants
    /// rebalanced.
    pub trust_floor: f64,
    /// Milliseconds after fleet start before misses count against a
    /// never-contacted peer (boot-order tolerance).
    pub grace_ms: u64,
    /// Milliseconds to wait for one probe's reply.
    pub probe_timeout_ms: u64,
    /// Consecutive successful probes a quarantined peer needs to be
    /// considered alive again for future placement.
    pub probation_probes: u32,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            check_interval_ms: 50,
            lambda: 0.8,
            trust_floor: 0.05,
            grace_ms: 2_000,
            probe_timeout_ms: 250,
            probation_probes: 3,
        }
    }
}

impl FleetPolicy {
    /// Consecutive misses at which trust first dips under the floor —
    /// `ceil(-ln(floor) / λ)`, the fleet analogue of the watchdog's
    /// `misses_to_suspect`.
    #[must_use]
    pub fn misses_to_quarantine(&self) -> u32 {
        let mut misses = 0u32;
        let mut trust = 1.0f64;
        while trust >= self.trust_floor && misses < 1_000 {
            misses += 1;
            trust = (-self.lambda * f64::from(misses)).exp();
        }
        misses
    }
}

/// One peer daemon's identity and fleet address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSpec {
    /// Fleet id (stable across restarts; feeds the placement hash).
    pub id: usize,
    /// Fleet-port address, e.g. `127.0.0.1:7801`.
    pub addr: String,
}

/// Fleet membership configuration for one daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// This daemon's fleet id.
    pub id: usize,
    /// The other members (self excluded).
    pub peers: Vec<PeerSpec>,
    /// Shared placement seed — every member must agree.
    pub seed: u64,
    /// Address this daemon's fleet port listens on.
    pub listen: String,
    /// After ingest EOF, keep serving the fleet port this long (reset
    /// by fleet activity) so late rebalances and migrations land.
    pub linger_ms: u64,
    /// Replay file survivors re-stream to catch an adopted tenant up
    /// from its snapshot to the head of the stream.
    pub catchup_replay: Option<PathBuf>,
    /// Probe cadence and trust policy.
    pub policy: FleetPolicy,
}

impl FleetConfig {
    /// Validates ids are unique and the policy is sane.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] on duplicate ids, self-probing peers,
    /// or a non-positive λ/floor.
    pub fn validated(self) -> Result<Self, DaemonError> {
        let mut ids: Vec<usize> = self.peers.iter().map(|p| p.id).collect();
        ids.push(self.id);
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(DaemonError::Config("fleet ids must be unique".into()));
        }
        // partial_cmp so NaN fails validation rather than slipping by.
        let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.policy.lambda) || !positive(self.policy.trust_floor) {
            return Err(DaemonError::Config(
                "fleet lambda and trust floor must be positive".into(),
            ));
        }
        Ok(self)
    }

    /// Every member id in the configured roster (self included),
    /// sorted.
    #[must_use]
    pub fn roster(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.peers.iter().map(|p| p.id).collect();
        ids.push(self.id);
        ids.sort_unstable();
        ids
    }
}

/// SplitMix64-style finalizer — the placement hash's mixer. Chosen for
/// avalanche quality and because it is trivially reproducible in any
/// language an operator might recompute placement in.
#[must_use]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous weight of `(tenant, daemon)` under `seed`.
#[must_use]
pub fn placement_weight(seed: u64, tenant: usize, daemon: usize) -> u64 {
    mix64(seed ^ mix64(tenant as u64 ^ 0xA11C_E5ED) ^ mix64(daemon as u64 ^ 0xD0_0D1E))
}

/// Which alive daemon owns `tenant`: the rendezvous argmax, ties
/// broken toward the lower id. `None` iff the roster is empty.
#[must_use]
pub fn owner_of(seed: u64, tenant: usize, alive: &[usize]) -> Option<usize> {
    alive
        .iter()
        .copied()
        .max_by_key(|&d| (placement_weight(seed, tenant, d), std::cmp::Reverse(d)))
}

/// Where a peer stands in the quarantine lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Healthy (or within grace): counts as alive for placement.
    Active,
    /// Trust crossed the floor: declared dead, tenants rebalanced.
    Quarantined,
    /// A quarantined peer answering probes again; climbing the
    /// probation ladder back to Active.
    Probation,
}

/// One peer's Impact-style health view.
#[derive(Debug, Clone)]
pub struct PeerView {
    /// The peer's identity.
    pub spec: PeerSpec,
    /// Lifecycle state.
    pub state: PeerState,
    /// Consecutive missed probes.
    pub misses: u32,
    /// Whether any probe has ever succeeded.
    pub contacted: bool,
    /// Consecutive successes while in probation.
    pub probation_successes: u32,
}

impl PeerView {
    /// A fresh view of `spec`, fully trusted.
    #[must_use]
    pub fn new(spec: PeerSpec) -> Self {
        PeerView {
            spec,
            state: PeerState::Active,
            misses: 0,
            contacted: false,
            probation_successes: 0,
        }
    }

    /// Current trust: `e^(-λ · misses)`.
    #[must_use]
    pub fn trust(&self, policy: &FleetPolicy) -> f64 {
        (-policy.lambda * f64::from(self.misses)).exp()
    }

    /// Records a successful probe. Returns `true` if the peer just
    /// completed probation and is alive again for future placement.
    pub fn on_success(&mut self, policy: &FleetPolicy) -> bool {
        self.contacted = true;
        self.misses = 0;
        match self.state {
            PeerState::Active => false,
            PeerState::Quarantined | PeerState::Probation => {
                self.state = PeerState::Probation;
                self.probation_successes += 1;
                if self.probation_successes >= policy.probation_probes {
                    self.state = PeerState::Active;
                    self.probation_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a missed probe. `in_grace` suppresses misses for a
    /// never-contacted peer (boot-order tolerance). Returns `true` if
    /// this miss pushed an Active peer under the floor — the caller's
    /// cue to rebalance.
    pub fn on_miss(&mut self, policy: &FleetPolicy, in_grace: bool) -> bool {
        if !self.contacted && in_grace {
            return false;
        }
        self.misses = self.misses.saturating_add(1);
        match self.state {
            PeerState::Active => {
                if self.trust(policy) < policy.trust_floor {
                    self.state = PeerState::Quarantined;
                    true
                } else {
                    false
                }
            }
            PeerState::Probation => {
                // A miss during probation sends the peer back to the
                // bottom of the ladder.
                self.state = PeerState::Quarantined;
                self.probation_successes = 0;
                false
            }
            PeerState::Quarantined => false,
        }
    }

    /// Whether this peer counts as alive for placement decisions.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.state == PeerState::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_total_and_deterministic() {
        let alive = vec![0, 1, 2];
        for tenant in 0..64 {
            let a = owner_of(42, tenant, &alive).unwrap();
            let b = owner_of(42, tenant, &alive).unwrap();
            assert_eq!(a, b);
            assert!(alive.contains(&a));
        }
        assert_eq!(owner_of(42, 0, &[]), None);
        // Roster order must not matter.
        for tenant in 0..64 {
            assert_eq!(
                owner_of(7, tenant, &[2, 0, 1]),
                owner_of(7, tenant, &[0, 1, 2])
            );
        }
    }

    #[test]
    fn placement_spreads_tenants() {
        let alive = vec![0, 1, 2];
        let mut counts = [0usize; 3];
        for tenant in 0..300 {
            counts[owner_of(9, tenant, &alive).unwrap()] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert!(c > 50, "daemon {id} owns only {c} of 300 tenants");
        }
    }

    #[test]
    fn removing_a_daemon_only_moves_its_tenants() {
        // The rendezvous property: tenants owned by survivors stay put
        // when a member dies.
        let full = vec![0, 1, 2];
        let without_1 = vec![0, 2];
        for tenant in 0..200 {
            let before = owner_of(11, tenant, &full).unwrap();
            let after = owner_of(11, tenant, &without_1).unwrap();
            if before != 1 {
                assert_eq!(before, after, "tenant {tenant} moved needlessly");
            } else {
                assert!(without_1.contains(&after));
            }
        }
    }

    #[test]
    fn trust_decays_and_quarantines_at_the_floor() {
        let policy = FleetPolicy::default();
        let mut peer = PeerView::new(PeerSpec { id: 1, addr: "x".into() });
        peer.contacted = true;
        let expected = policy.misses_to_quarantine();
        let mut died_at = 0;
        for miss in 1..=expected {
            if peer.on_miss(&policy, false) {
                died_at = miss;
            }
        }
        assert_eq!(died_at, expected);
        assert_eq!(peer.state, PeerState::Quarantined);
        assert!(peer.trust(&policy) < policy.trust_floor);
    }

    #[test]
    fn grace_suppresses_misses_until_first_contact() {
        let policy = FleetPolicy::default();
        let mut peer = PeerView::new(PeerSpec { id: 1, addr: "x".into() });
        for _ in 0..100 {
            assert!(!peer.on_miss(&policy, true));
        }
        assert_eq!(peer.misses, 0);
        assert!(peer.is_alive());
        // After first contact, grace no longer applies.
        assert!(!peer.on_success(&policy));
        assert!(!peer.on_miss(&policy, true));
        assert_eq!(peer.misses, 1);
    }

    #[test]
    fn probation_ladder_reintegrates_and_resets_on_miss() {
        let policy = FleetPolicy { probation_probes: 2, ..FleetPolicy::default() };
        let mut peer = PeerView::new(PeerSpec { id: 1, addr: "x".into() });
        peer.contacted = true;
        while peer.state == PeerState::Active {
            peer.on_miss(&policy, false);
        }
        assert!(!peer.on_success(&policy));
        assert_eq!(peer.state, PeerState::Probation);
        // A miss mid-probation falls back to quarantine.
        assert!(!peer.on_miss(&policy, false));
        assert_eq!(peer.state, PeerState::Quarantined);
        // Two clean successes reintegrate.
        assert!(!peer.on_success(&policy));
        assert!(peer.on_success(&policy));
        assert_eq!(peer.state, PeerState::Active);
        assert!((peer.trust(&policy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation_catches_duplicates() {
        let cfg = FleetConfig {
            id: 0,
            peers: vec![PeerSpec { id: 0, addr: "x".into() }],
            seed: 1,
            listen: "127.0.0.1:0".into(),
            linger_ms: 100,
            catchup_replay: None,
            policy: FleetPolicy::default(),
        };
        assert!(cfg.validated().is_err());
        let cfg = FleetConfig {
            id: 0,
            peers: vec![
                PeerSpec { id: 1, addr: "x".into() },
                PeerSpec { id: 2, addr: "y".into() },
            ],
            seed: 1,
            listen: "127.0.0.1:0".into(),
            linger_ms: 100,
            catchup_replay: None,
            policy: FleetPolicy::default(),
        };
        assert_eq!(cfg.clone().validated().unwrap().roster(), vec![0, 1, 2]);
    }
}
