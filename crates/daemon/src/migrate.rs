//! Live-migration bundles: everything one tenant needs to move between
//! daemons with zero record loss, packed in the PR-5 snapshot
//! container and shipped as one CRC-framed blob.
//!
//! A bundle carries three things:
//!
//! 1. **The tenant's durable state file bytes** — the same `TBSN`
//!    container [`crate::state`] writes to disk, embedded verbatim, so
//!    the receiver resumes it *exactly* as crash-resume does today
//!    (decode, rebuild engine, truncate the decision log to the
//!    snapshot round).
//! 2. **The live dedup highwaters and counters** — ahead of the
//!    embedded snapshot's, covering records the source admitted *or
//!    shed* since its last snapshot. Seeding these before any catch-up
//!    stream is what prevents both double-apply and shed-record
//!    resurrection on the new owner.
//! 3. **The recovery replay buffer** — records and tick boundaries
//!    issued since the last snapshot, with tick numbers renumbered to
//!    `1..=k` so the receiver's fresh per-slot tick counter accepts
//!    them. Replaying it regenerates the decision-log suffix
//!    byte-identically, exactly like a watchdog respawn.
//!
//! Every decode failure is a typed [`MigrateError`]; nothing panics,
//! and a failed transfer leaves the source tenant untouched (the
//! source only releases a tenant after the receiver acknowledges the
//! install).

use std::fmt;
use std::io::{BufRead, Write};

use tibfit_sim::snapshot::{FrameError, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::queue::{QueueStats, WorkItem};
use crate::wire::Report;

/// Section tag: bundle metadata (tenant id, seed, snapshot round).
const TAG_MIGRATE_META: u8 = 30;
/// Section tag: embedded tenant state-file container bytes.
const TAG_MIGRATE_STATE: u8 = 31;
/// Section tag: live dedup highwaters + live queue counters.
const TAG_MIGRATE_LIVE: u8 = 32;
/// Section tag: renumbered recovery replay buffer.
const TAG_MIGRATE_REPLAY: u8 = 33;
/// Section tag: the open tick's pending (offered, not yet admitted)
/// records, captured un-highwatered so the receiver re-offers them
/// into the same batch they would have competed in.
const TAG_MIGRATE_PENDING: u8 = 34;

/// Hard bound on a framed bundle accepted off a socket — keeps a
/// corrupt or hostile length field from driving a huge allocation.
pub const MAX_BUNDLE_BYTES: u64 = 256 * 1024 * 1024;

/// Replay-item tag inside [`TAG_MIGRATE_REPLAY`].
const ITEM_RECORD: u8 = 0;
const ITEM_TICK_END: u8 = 1;

/// Every way a live migration can fail. The transfer protocol is
/// fail-closed: any variant means the receiver installed nothing and
/// the source keeps serving.
#[derive(Debug)]
pub enum MigrateError {
    /// The framed socket transfer failed (disconnect, bad magic,
    /// length bound, CRC).
    Frame(FrameError),
    /// The bundle container (or a field inside it) is malformed.
    Container(SnapshotError),
    /// The bundle is structurally valid but contradicts itself or the
    /// receiver's configuration (wrong tenant, seed mismatch, ...).
    Mismatch(String),
    /// Socket or filesystem I/O outside the framed transfer.
    Io(std::io::Error),
    /// The peer refused the transfer (its `MERR` reason).
    Refused(String),
}

impl MigrateError {
    /// Stable counter key for the failure breakdown
    /// (`fleet.migrate.failed.<kind>`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MigrateError::Frame(_) => "frame",
            MigrateError::Container(_) => "container",
            MigrateError::Mismatch(_) => "mismatch",
            MigrateError::Io(_) => "io",
            MigrateError::Refused(_) => "refused",
        }
    }
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::Frame(e) => write!(f, "framed transfer: {e}"),
            MigrateError::Container(e) => write!(f, "malformed bundle: {e}"),
            MigrateError::Mismatch(msg) => write!(f, "bundle mismatch: {msg}"),
            MigrateError::Io(e) => write!(f, "transfer I/O: {e}"),
            MigrateError::Refused(reason) => write!(f, "peer refused: {reason}"),
        }
    }
}

impl std::error::Error for MigrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MigrateError::Frame(e) => Some(e),
            MigrateError::Container(e) => Some(e),
            MigrateError::Io(e) => Some(e),
            MigrateError::Mismatch(_) | MigrateError::Refused(_) => None,
        }
    }
}

impl From<FrameError> for MigrateError {
    fn from(e: FrameError) -> Self {
        MigrateError::Frame(e)
    }
}

impl From<SnapshotError> for MigrateError {
    fn from(e: SnapshotError) -> Self {
        MigrateError::Container(e)
    }
}

/// One tenant, packed for transport.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationBundle {
    /// Tenant index.
    pub tenant: usize,
    /// The tenant's scenario seed (validated against the receiver's
    /// configuration before anything is installed).
    pub seed: u64,
    /// Engine round of the embedded snapshot — the round the receiver
    /// truncates the decision log to before replaying the buffer.
    pub state_round: u64,
    /// The tenant's durable state file, byte-for-byte.
    pub state_bytes: Vec<u8>,
    /// Live dedup highwaters `(src, max_seq)` — at or ahead of the
    /// embedded snapshot's map.
    pub live_highwater: Vec<(u64, u64)>,
    /// Live queue counters.
    pub live_stats: QueueStats,
    /// Recovery buffer since the last snapshot: records and tick
    /// boundaries, tick numbers renumbered to `1..=k` by
    /// [`encode_bundle`].
    pub replay: Vec<WorkItem>,
    /// The open tick's pending records, drained from the source queue
    /// without advancing its highwaters. The receiver offers them after
    /// seeding the live highwaters; the next tick boundary admits them.
    pub pending: Vec<Report>,
}

fn put_report(s: &mut tibfit_sim::snapshot::SectionBuf, r: &Report) {
    s.put_usize(r.tenant);
    s.put_u64(r.time);
    s.put_u64(r.src);
    s.put_u64(r.seq);
    s.put_f64(r.x);
    s.put_f64(r.y);
}

fn take_report(s: &mut tibfit_sim::snapshot::SectionReader<'_>) -> Result<Report, SnapshotError> {
    Ok(Report {
        tenant: s.take_usize()?,
        time: s.take_u64()?,
        src: s.take_u64()?,
        seq: s.take_u64()?,
        x: s.take_f64()?,
        y: s.take_f64()?,
    })
}

/// Encodes a bundle. Replay tick boundaries are renumbered to `1..=k`
/// in encounter order so the receiver's fresh tick counter lines up;
/// queries and shutdown markers never appear in a recovery buffer and
/// are skipped defensively.
#[must_use]
pub fn encode_bundle(bundle: &MigrationBundle) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.section(TAG_MIGRATE_META, |s| {
        s.put_usize(bundle.tenant);
        s.put_u64(bundle.seed);
        s.put_u64(bundle.state_round);
    });
    w.section(TAG_MIGRATE_STATE, |s| s.put_bytes(&bundle.state_bytes));
    w.section(TAG_MIGRATE_LIVE, |s| {
        s.put_usize(bundle.live_highwater.len());
        for &(src, seq) in &bundle.live_highwater {
            s.put_u64(src);
            s.put_u64(seq);
        }
        s.put_u64(bundle.live_stats.offered);
        s.put_u64(bundle.live_stats.admitted);
        s.put_u64(bundle.live_stats.shed_budget);
        s.put_u64(bundle.live_stats.shed_overflow);
        s.put_u64(bundle.live_stats.duplicates);
        s.put_u64(bundle.live_stats.backpressure_waits);
    });
    w.section(TAG_MIGRATE_PENDING, |s| {
        s.put_usize(bundle.pending.len());
        for r in &bundle.pending {
            put_report(s, r);
        }
    });
    w.section(TAG_MIGRATE_REPLAY, |s| {
        let items: Vec<&WorkItem> = bundle
            .replay
            .iter()
            .filter(|i| matches!(i, WorkItem::Record(_) | WorkItem::TickEnd(_)))
            .collect();
        s.put_usize(items.len());
        let mut next_tick = 0u64;
        for item in items {
            match item {
                WorkItem::Record(r) => {
                    s.put_u8(ITEM_RECORD);
                    put_report(s, r);
                }
                WorkItem::TickEnd(_) => {
                    next_tick += 1;
                    s.put_u8(ITEM_TICK_END);
                    s.put_u64(next_tick);
                }
                WorkItem::Query(_) | WorkItem::Shutdown => unreachable!("filtered above"),
            }
        }
    });
    w.finish()
}

/// Decodes a bundle. Purely structural — semantic checks (tenant
/// identity, seed agreement) happen at install time, where the
/// receiver's configuration is in scope.
///
/// # Errors
///
/// [`MigrateError::Container`] for any malformed byte,
/// [`MigrateError::Mismatch`] for a replay item with an unknown tag.
pub fn decode_bundle(bytes: &[u8]) -> Result<MigrationBundle, MigrateError> {
    let mut r = SnapshotReader::new(bytes)?;
    let mut s = r.section(TAG_MIGRATE_META)?;
    let tenant = s.take_usize()?;
    let seed = s.take_u64()?;
    let state_round = s.take_u64()?;
    s.end()?;
    let mut s = r.section(TAG_MIGRATE_STATE)?;
    let state_bytes = s.take_bytes()?;
    s.end()?;
    let mut s = r.section(TAG_MIGRATE_LIVE)?;
    let n = s.take_count(16)?;
    let mut live_highwater = Vec::with_capacity(n);
    for _ in 0..n {
        let src = s.take_u64()?;
        let seq = s.take_u64()?;
        live_highwater.push((src, seq));
    }
    let live_stats = QueueStats {
        offered: s.take_u64()?,
        admitted: s.take_u64()?,
        shed_budget: s.take_u64()?,
        shed_overflow: s.take_u64()?,
        duplicates: s.take_u64()?,
        backpressure_waits: s.take_u64()?,
    };
    s.end()?;
    let mut s = r.section(TAG_MIGRATE_PENDING)?;
    let n = s.take_count(48)?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(take_report(&mut s)?);
    }
    s.end()?;
    let mut s = r.section(TAG_MIGRATE_REPLAY)?;
    let n = s.take_count(2)?;
    let mut replay = Vec::with_capacity(n);
    let mut last_tick = 0u64;
    for _ in 0..n {
        match s.take_u8()? {
            ITEM_RECORD => {
                replay.push(WorkItem::Record(take_report(&mut s)?));
            }
            ITEM_TICK_END => {
                let tick = s.take_u64()?;
                if tick != last_tick + 1 {
                    return Err(MigrateError::Mismatch(format!(
                        "replay tick {tick} breaks the 1..=k renumbering"
                    )));
                }
                last_tick = tick;
                replay.push(WorkItem::TickEnd(tick));
            }
            other => {
                return Err(MigrateError::Mismatch(format!(
                    "unknown replay item tag {other}"
                )))
            }
        }
    }
    s.end()?;
    r.finish()?;
    Ok(MigrationBundle {
        tenant,
        seed,
        state_round,
        state_bytes,
        live_highwater,
        live_stats,
        replay,
        pending,
    })
}

/// Ships an encoded bundle to a peer's fleet port: `MPUSH <tenant>`,
/// the framed bytes, then waits for `MOK <tenant>` / `MERR <reason>`.
///
/// # Errors
///
/// [`MigrateError::Io`] / [`MigrateError::Frame`] on transport
/// failure, [`MigrateError::Refused`] if the peer answers `MERR` (or
/// anything other than a matching `MOK`).
pub fn push_bundle(addr: &str, tenant: usize, encoded: &[u8]) -> Result<(), MigrateError> {
    let stream = std::net::TcpStream::connect(addr).map_err(MigrateError::Io)?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(MigrateError::Io)?;
    let mut writer = std::io::BufWriter::new(&stream);
    writeln!(writer, "MPUSH {tenant}").map_err(MigrateError::Io)?;
    tibfit_sim::snapshot::write_framed(&mut writer, encoded)?;
    drop(writer);
    let mut reply = String::new();
    std::io::BufReader::new(&stream)
        .read_line(&mut reply)
        .map_err(MigrateError::Io)?;
    match crate::wire::parse_fleet_line(&reply) {
        Ok(Some(crate::wire::FleetMsg::PushOk { tenant: t })) if t == tenant => Ok(()),
        Ok(Some(crate::wire::FleetMsg::PushErr(reason))) => Err(MigrateError::Refused(reason)),
        _ => Err(MigrateError::Refused(format!(
            "unexpected reply {:?}",
            reply.trim_end()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> MigrationBundle {
        MigrationBundle {
            tenant: 3,
            seed: 0xFEED,
            state_round: 12,
            state_bytes: vec![1, 2, 3, 4, 5],
            live_highwater: vec![(3, 40), (7, 41)],
            live_stats: QueueStats {
                offered: 50,
                admitted: 40,
                shed_budget: 6,
                shed_overflow: 1,
                duplicates: 3,
                backpressure_waits: 2,
            },
            replay: vec![
                WorkItem::Record(Report {
                    tenant: 3,
                    time: 12,
                    src: 3,
                    seq: 40,
                    x: 1.5,
                    y: -0.25,
                }),
                WorkItem::TickEnd(1),
                WorkItem::Record(Report {
                    tenant: 3,
                    time: 13,
                    src: 7,
                    seq: 41,
                    x: 0.0,
                    y: 9.0,
                }),
                WorkItem::TickEnd(2),
            ],
            pending: vec![Report {
                tenant: 3,
                time: 14,
                src: 3,
                seq: 42,
                x: 2.5,
                y: 0.5,
            }],
        }
    }

    #[test]
    fn bundle_round_trips() {
        let bundle = sample_bundle();
        let bytes = encode_bundle(&bundle);
        let back = decode_bundle(&bytes).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn encode_renumbers_ticks_from_one() {
        let mut bundle = sample_bundle();
        // Source tick numbers are arbitrary — 17 and 18, say.
        bundle.replay[1] = WorkItem::TickEnd(17);
        bundle.replay[3] = WorkItem::TickEnd(18);
        let back = decode_bundle(&encode_bundle(&bundle)).unwrap();
        assert_eq!(back.replay[1], WorkItem::TickEnd(1));
        assert_eq!(back.replay[3], WorkItem::TickEnd(2));
    }

    #[test]
    fn any_bit_flip_is_a_typed_error() {
        let bytes = encode_bundle(&sample_bundle());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            if corrupt == bytes {
                continue;
            }
            // Either a typed error or (for a flip in slack-free fields
            // like the seed) a decode to different-but-valid content —
            // never a panic. Structural fields must error.
            let _ = decode_bundle(&corrupt);
        }
        // A CRC-covered payload flip specifically must error.
        let mut corrupt = bytes.clone();
        corrupt[10] ^= 0x01;
        assert!(decode_bundle(&corrupt).is_err());
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let bytes = encode_bundle(&sample_bundle());
        for cut in 0..bytes.len() {
            assert!(decode_bundle(&bytes[..cut]).is_err(), "cut at {cut} slipped through");
        }
    }

    #[test]
    fn broken_renumbering_is_rejected() {
        let mut bundle = sample_bundle();
        bundle.replay.truncate(2);
        let mut bytes = encode_bundle(&bundle);
        // Rewrite the single TickEnd's number from 1 to 2 and fix the
        // section CRC so only the semantic check can catch it.
        let pos = bytes.len() - 4 - 8; // CRC32 + tick u64
        bytes[pos] = 2;
        let crc_pos = bytes.len() - 4;
        let payload_start = crc_pos
            - (8 /* count */ + 1 + 8 /* count+record fields */ + 8 * 5 + 1 + 8);
        let crc = tibfit_sim::snapshot::crc32(&bytes[payload_start..crc_pos]);
        bytes[crc_pos..].copy_from_slice(&crc.to_le_bytes());
        match decode_bundle(&bytes) {
            Err(MigrateError::Mismatch(msg)) => assert!(msg.contains("renumbering")),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_and_kind() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        for (e, kind) in [
            (MigrateError::Frame(FrameError::BadMagic), "frame"),
            (MigrateError::Container(SnapshotError::Truncated), "container"),
            (MigrateError::Mismatch("x".into()), "mismatch"),
            (MigrateError::Io(eof), "io"),
            (MigrateError::Refused("busy".into()), "refused"),
        ] {
            assert!(!e.to_string().is_empty());
            assert_eq!(e.kind(), kind);
        }
    }
}
