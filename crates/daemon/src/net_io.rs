//! Socket ingest: a shutdown-aware listening source for the daemon and
//! a reconnecting replay streamer for flaky upstreams.
//!
//! The listener accepts one connection at a time (reports are a single
//! logical stream; fan-in belongs upstream) and splices consecutive
//! connections into one continuous frame stream — a client that drops
//! and reconnects *resumes the same daemon run*. Combined with
//! `(src, seq)` dedup, a client that cannot remember where it stopped
//! can simply resend the whole replay: everything already seen is
//! idempotently dropped.
//!
//! [`stream_replay`] is that client: it connects with seeded, jittered
//! exponential backoff ([`crate::backoff::JitteredBackoff`]) and
//! resends the full file on every (re)connection.

use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::time::Duration;

use tibfit_sim::shutdown;

use crate::backoff::JitteredBackoff;
use crate::DaemonError;

/// How long the accept loop sleeps between polls (the listener runs
/// non-blocking so shutdown signals are honoured promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A `BufRead` over consecutive TCP connections: EOF on one connection
/// rolls over to accepting the next, until the connection budget is
/// exhausted or shutdown is requested.
pub struct ListenSource {
    listener: TcpListener,
    conn: Option<io::BufReader<TcpStream>>,
    remaining_conns: Option<u32>,
}

impl ListenSource {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and returns the source.
    /// `max_conns` bounds how many connections are accepted before the
    /// stream reports EOF — `None` keeps accepting until a shutdown
    /// signal.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] if binding fails.
    pub fn bind(addr: &str, max_conns: Option<u32>) -> Result<Self, DaemonError> {
        let listener = TcpListener::bind(addr).map_err(DaemonError::Io)?;
        listener.set_nonblocking(true).map_err(DaemonError::Io)?;
        Ok(ListenSource {
            listener,
            conn: None,
            remaining_conns: max_conns,
        })
    }

    /// The bound address (port 0 resolves here).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] if the socket is unusable.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.listener.local_addr().map_err(DaemonError::Io)
    }

    fn accept_next(&mut self) -> io::Result<bool> {
        loop {
            if shutdown::requested() {
                return Ok(false);
            }
            if self.remaining_conns == Some(0) {
                return Ok(false);
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    if let Some(n) = self.remaining_conns.as_mut() {
                        *n -= 1;
                    }
                    self.conn = Some(io::BufReader::new(stream));
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Read for ListenSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.conn.is_none() && !self.accept_next()? {
                return Ok(0);
            }
            if let Some(conn) = self.conn.as_mut() {
                match conn.read(buf) {
                    Ok(0) => {
                        self.conn = None;
                    }
                    other => return other,
                }
            }
        }
    }
}

impl BufRead for ListenSource {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        loop {
            if self.conn.is_none() && !self.accept_next()? {
                return Ok(&[]);
            }
            // Borrow dance: probe for EOF first, then reborrow.
            let eof = {
                let conn = self.conn.as_mut().expect("connection present");
                conn.fill_buf()?.is_empty()
            };
            if eof {
                self.conn = None;
                continue;
            }
            return self.conn.as_mut().expect("connection present").fill_buf();
        }
    }

    fn consume(&mut self, amt: usize) {
        if let Some(conn) = self.conn.as_mut() {
            conn.consume(amt);
        }
    }
}

/// Outcome of [`stream_replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Connections established (1 = no reconnects needed).
    pub connections: u32,
    /// Lines sent across all connections (resends included).
    pub lines_sent: u64,
}

/// Streams a replay file to `addr`, reconnecting with jittered backoff
/// on connect failure or mid-stream disconnect, resending the whole
/// file each time (the daemon's dedup makes resends idempotent).
/// `drop_after_lines` force-closes the first connection after that
/// many lines — the test hook proving reconnect-and-resend safety.
///
/// # Errors
///
/// [`DaemonError::Io`] after `max_attempts` consecutive failed
/// connection attempts, or if the replay file cannot be read.
pub fn stream_replay(
    addr: &str,
    replay: &Path,
    retry_seed: u64,
    max_attempts: u32,
    drop_after_lines: Option<u64>,
) -> Result<StreamOutcome, DaemonError> {
    let text = std::fs::read_to_string(replay).map_err(DaemonError::Io)?;
    let mut backoff = JitteredBackoff::new(retry_seed, 5, 500);
    let mut failures = 0u32;
    let mut outcome = StreamOutcome {
        connections: 0,
        lines_sent: 0,
    };
    loop {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                if failures >= max_attempts {
                    return Err(DaemonError::Io(e));
                }
                std::thread::sleep(backoff.next_delay());
                continue;
            }
        };
        failures = 0;
        backoff.reset();
        outcome.connections += 1;
        let forced_drop = drop_after_lines.filter(|_| outcome.connections == 1);
        let mut writer = io::BufWriter::new(stream);
        let mut sent_this_conn = 0u64;
        let mut interrupted = false;
        for line in text.lines() {
            if let Some(limit) = forced_drop {
                if sent_this_conn >= limit {
                    interrupted = true;
                    break;
                }
            }
            let io_result = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"));
            match io_result {
                Ok(()) => {
                    sent_this_conn += 1;
                    outcome.lines_sent += 1;
                }
                Err(_) => {
                    interrupted = true;
                    break;
                }
            }
        }
        let flushed = writer.flush();
        if interrupted || flushed.is_err() {
            // Dropped mid-stream (or we forced it): reconnect and
            // resend from the top.
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        return Ok(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn listen_source_splices_two_connections() {
        let mut source = ListenSource::bind("127.0.0.1:0", Some(2)).unwrap();
        let addr = source.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            for chunk in ["alpha\nbra", "vo\nlast\n"] {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(chunk.as_bytes()).unwrap();
            }
        });
        let mut lines = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if source.read_line(&mut line).unwrap() == 0 {
                break;
            }
            lines.push(line.trim_end().to_string());
        }
        sender.join().unwrap();
        // The torn "bra" / "vo" halves arrive as separate reads across
        // the connection boundary; line framing is the daemon's
        // parser's job, and a torn line is just two fragments.
        assert_eq!(lines.concat().replace('\n', ""), "alphabravolast");
    }

    #[test]
    fn stream_replay_resends_after_forced_drop() {
        let dir = std::env::temp_dir().join(format!("tibfit-netio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("stream.replay");
        std::fs::write(&file, "R 0 0 0 1 1 1\nT\nR 0 1 0 2 2 2\nT\n").unwrap();
        let mut source = ListenSource::bind("127.0.0.1:0", Some(2)).unwrap();
        let addr = source.local_addr().unwrap().to_string();
        let reader = std::thread::spawn(move || {
            let mut text = String::new();
            source.read_to_string(&mut text).unwrap();
            text
        });
        let outcome = stream_replay(&addr, &file, 7, 5, Some(1)).unwrap();
        assert_eq!(outcome.connections, 2);
        assert_eq!(outcome.lines_sent, 1 + 4);
        let text = reader.join().unwrap();
        assert!(text.contains("R 0 1 0 2 2 2"));
    }

    #[test]
    fn unreachable_address_errors_after_max_attempts() {
        let dir = std::env::temp_dir().join(format!("tibfit-netio-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("noop.replay");
        std::fs::write(&file, "T\n").unwrap();
        // Port 1 on localhost: connection refused.
        let err = stream_replay("127.0.0.1:1", &file, 3, 2, None);
        assert!(err.is_err());
    }
}
