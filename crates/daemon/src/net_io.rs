//! Socket ingest: a shutdown-aware listening source for the daemon and
//! a reconnecting replay streamer for flaky upstreams.
//!
//! The listener accepts one connection at a time (reports are a single
//! logical stream; fan-in belongs upstream) and splices consecutive
//! connections into one continuous frame stream — a client that drops
//! and reconnects *resumes the same daemon run*. Combined with
//! `(src, seq)` dedup, a client that cannot remember where it stopped
//! can simply resend the whole replay: everything already seen is
//! idempotently dropped.
//!
//! [`stream_replay`] is that client: it connects with seeded, jittered
//! exponential backoff ([`crate::backoff::JitteredBackoff`]) and
//! resends the full file on every (re)connection.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use tibfit_sim::shutdown;

use crate::backoff::RetryBudget;
use crate::wire::{parse_line, Frame};
use crate::DaemonError;

/// How long the accept loop sleeps between polls (the listener runs
/// non-blocking so shutdown signals are honoured promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A `BufRead` over consecutive TCP connections: EOF on one connection
/// rolls over to accepting the next, until the connection budget is
/// exhausted or shutdown is requested.
pub struct ListenSource {
    listener: TcpListener,
    conn: Option<io::BufReader<TcpStream>>,
    remaining_conns: Option<u32>,
}

impl ListenSource {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and returns the source.
    /// `max_conns` bounds how many connections are accepted before the
    /// stream reports EOF — `None` keeps accepting until a shutdown
    /// signal.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] if binding fails.
    pub fn bind(addr: &str, max_conns: Option<u32>) -> Result<Self, DaemonError> {
        let listener = TcpListener::bind(addr).map_err(DaemonError::Io)?;
        listener.set_nonblocking(true).map_err(DaemonError::Io)?;
        Ok(ListenSource {
            listener,
            conn: None,
            remaining_conns: max_conns,
        })
    }

    /// The bound address (port 0 resolves here).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] if the socket is unusable.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.listener.local_addr().map_err(DaemonError::Io)
    }

    fn accept_next(&mut self) -> io::Result<bool> {
        loop {
            if shutdown::requested() {
                return Ok(false);
            }
            if self.remaining_conns == Some(0) {
                return Ok(false);
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    if let Some(n) = self.remaining_conns.as_mut() {
                        *n -= 1;
                    }
                    self.conn = Some(io::BufReader::new(stream));
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Read for ListenSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.conn.is_none() && !self.accept_next()? {
                return Ok(0);
            }
            if let Some(conn) = self.conn.as_mut() {
                match conn.read(buf) {
                    Ok(0) => {
                        self.conn = None;
                    }
                    other => return other,
                }
            }
        }
    }
}

impl BufRead for ListenSource {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        loop {
            if self.conn.is_none() && !self.accept_next()? {
                return Ok(&[]);
            }
            // Borrow dance: probe for EOF first, then reborrow.
            let eof = {
                let conn = self.conn.as_mut().expect("connection present");
                conn.fill_buf()?.is_empty()
            };
            if eof {
                self.conn = None;
                continue;
            }
            return self.conn.as_mut().expect("connection present").fill_buf();
        }
    }

    fn consume(&mut self, amt: usize) {
        if let Some(conn) = self.conn.as_mut() {
            conn.consume(amt);
        }
    }
}

/// Per-connection merge state for [`FanInSource`].
struct FanConn {
    /// Tick segments sealed by a `T` line, awaiting the merge barrier.
    segments: VecDeque<Vec<String>>,
    /// Report lines of the connection's current (open) tick.
    current: Vec<String>,
    /// The connection reached EOF.
    done: bool,
}

struct FanState {
    conns: Vec<FanConn>,
}

type FanShared = (Mutex<FanState>, Condvar);

fn lock_fan(shared: &FanShared) -> std::sync::MutexGuard<'_, FanState> {
    shared.0.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A `BufRead` over *concurrent* TCP connections carrying one logical
/// report stream split across senders.
///
/// Every connection gets its own reader thread and its own
/// `(time, src, seq)` highwater per `(tenant, src)` — a sender that
/// resends (reconnect recovery, overlap at a split point) has its
/// stale lines dropped before they ever reach the merge. Tick (`T`)
/// lines act as the merge barrier: tick `k` is released downstream
/// only once every participating connection has sealed its `k`-th
/// segment, so the daemon admits exactly the same per-tick report sets
/// as it would from the unsplit stream — and admission itself is
/// arrival-order-independent, which makes the merged decisions
/// deterministic.
///
/// The discipline senders must follow: each connection carries a
/// subset of the `R` lines of every tick and **all** of the `T`
/// lines. (A connection may close early; it simply stops participating
/// in the barrier once its sealed segments are consumed.)
pub struct FanInSource {
    listener: Option<TcpListener>,
    want_conns: u32,
    shared: Arc<FanShared>,
    threads: Vec<JoinHandle<()>>,
    out: Vec<u8>,
    pos: usize,
}

impl FanInSource {
    /// Binds `addr` and prepares to merge exactly `conns` concurrent
    /// connections. Accepting is lazy: the first read waits
    /// (shutdown-aware) until all `conns` senders have connected.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] if binding fails.
    pub fn bind(addr: &str, conns: u32) -> Result<Self, DaemonError> {
        let listener = TcpListener::bind(addr).map_err(DaemonError::Io)?;
        listener.set_nonblocking(true).map_err(DaemonError::Io)?;
        Ok(FanInSource {
            listener: Some(listener),
            want_conns: conns.max(1),
            shared: Arc::new((
                Mutex::new(FanState { conns: Vec::new() }),
                Condvar::new(),
            )),
            threads: Vec::new(),
            out: Vec::new(),
            pos: 0,
        })
    }

    /// The bound address (port 0 resolves here).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] if the socket is unusable.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.listener
            .as_ref()
            .expect("local_addr before the first read")
            .local_addr()
            .map_err(DaemonError::Io)
    }

    fn accept_all(&mut self) -> io::Result<()> {
        let Some(listener) = self.listener.take() else {
            return Ok(());
        };
        let mut accepted = 0u32;
        while accepted < self.want_conns {
            if shutdown::requested() {
                // Mark the missing slots done so the merge terminates.
                let mut st = lock_fan(&self.shared);
                while st.conns.len() < self.want_conns as usize {
                    st.conns.push(FanConn {
                        segments: VecDeque::new(),
                        current: Vec::new(),
                        done: true,
                    });
                }
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let idx = {
                        let mut st = lock_fan(&self.shared);
                        st.conns.push(FanConn {
                            segments: VecDeque::new(),
                            current: Vec::new(),
                            done: false,
                        });
                        st.conns.len() - 1
                    };
                    let shared = Arc::clone(&self.shared);
                    let handle = std::thread::Builder::new()
                        .name(format!("tibfit-fanin-{idx}"))
                        .spawn(move || fan_conn_reader(idx, stream, &shared))
                        .expect("spawning a fan-in reader thread");
                    self.threads.push(handle);
                    accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Assembles the next released batch of lines: one full tick
    /// segment (`R` lines of tick `k` from every connection, then one
    /// `T`), or the trailing un-ticked lines once every connection has
    /// finished. Empty means EOF.
    fn next_batch(&mut self) -> io::Result<Vec<String>> {
        self.accept_all()?;
        let shared = Arc::clone(&self.shared);
        let (_, cvar) = &*shared;
        let mut st = lock_fan(&shared);
        loop {
            if shutdown::requested() {
                return Ok(Vec::new());
            }
            // Barrier: every connection still participating (not
            // drained-and-done) must have sealed a segment.
            let mut any = false;
            let mut have_all = true;
            for c in &st.conns {
                if c.done && c.segments.is_empty() {
                    continue;
                }
                any = true;
                if c.segments.is_empty() {
                    have_all = false;
                }
            }
            if any && have_all {
                let mut batch = Vec::new();
                for c in &mut st.conns {
                    if let Some(seg) = c.segments.pop_front() {
                        batch.extend(seg);
                    }
                }
                batch.push("T".to_string());
                return Ok(batch);
            }
            if st.conns.iter().all(|c| c.done && c.segments.is_empty()) {
                // Trailing lines after the final tick, then EOF.
                let mut batch = Vec::new();
                for c in &mut st.conns {
                    batch.append(&mut c.current);
                }
                return Ok(batch);
            }
            let (guard, _timeout) = cvar
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn join_threads(&mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn fan_conn_reader(idx: usize, stream: TcpStream, shared: &FanShared) {
    let mut reader = io::BufReader::new(stream);
    // Per-connection dedup window: the newest (time, seq) seen per
    // (tenant, src) on *this* connection.
    let mut highwater: HashMap<(usize, u64), (u64, u64)> = HashMap::new();
    let (lock, cvar) = shared;
    let mut raw = String::new();
    loop {
        raw.clear();
        if reader.read_line(&mut raw).unwrap_or(0) == 0 {
            break;
        }
        let line = raw.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        let mut is_tick = false;
        match parse_line(line) {
            Ok(Some(Frame::Tick)) => is_tick = true,
            Ok(Some(Frame::Report(r))) => {
                let key = (r.tenant, r.src);
                if let Some(&(time, seq)) = highwater.get(&key) {
                    if (r.time, r.seq) <= (time, seq) {
                        continue;
                    }
                }
                highwater.insert(key, (r.time, r.seq));
            }
            // Queries and malformed lines pass through; the daemon's
            // own parser counts and rejects them.
            Ok(_) | Err(_) => {}
        }
        let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
        let conn = &mut st.conns[idx];
        if is_tick {
            let segment = std::mem::take(&mut conn.current);
            conn.segments.push_back(segment);
        } else {
            conn.current.push(line.to_string());
        }
        drop(st);
        cvar.notify_all();
    }
    let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
    st.conns[idx].done = true;
    drop(st);
    cvar.notify_all();
}

impl Read for FanInSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for FanInSource {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos >= self.out.len() {
            self.pos = 0;
            self.out.clear();
            let batch = self.next_batch()?;
            if batch.is_empty() {
                self.join_threads();
                return Ok(&[]);
            }
            for line in batch {
                self.out.extend_from_slice(line.as_bytes());
                self.out.push(b'\n');
            }
        }
        Ok(&self.out[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.out.len());
    }
}

/// Outcome of [`stream_replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Connections established (1 = no reconnects needed).
    pub connections: u32,
    /// Lines sent across all connections (resends included).
    pub lines_sent: u64,
}

/// How much total delay a replay stream may accumulate before giving
/// up, when the caller does not pick its own bound.
pub const DEFAULT_STREAM_DEADLINE_MS: u64 = 30_000;

/// Streams a replay file to `addr`, reconnecting with budgeted
/// jittered backoff on connect failure or mid-stream disconnect,
/// resending the whole file each time (the daemon's dedup makes
/// resends idempotent). `drop_after_lines` force-closes the first
/// connection after that many lines — the test hook proving
/// reconnect-and-resend safety.
///
/// Every retry — including the mid-stream disconnect path, which used
/// to loop forever — debits one total-deadline budget of
/// `deadline_ms`; when it runs dry the caller gets a typed
/// [`DaemonError::RetryExhausted`] instead of a hang.
///
/// # Errors
///
/// [`DaemonError::Io`] after `max_attempts` consecutive failed
/// connection attempts or an unreadable replay file;
/// [`DaemonError::RetryExhausted`] once `deadline_ms` of retry delay
/// has been spent.
pub fn stream_replay(
    addr: &str,
    replay: &Path,
    retry_seed: u64,
    max_attempts: u32,
    drop_after_lines: Option<u64>,
    deadline_ms: u64,
) -> Result<StreamOutcome, DaemonError> {
    let text = std::fs::read_to_string(replay).map_err(DaemonError::Io)?;
    let mut budget = RetryBudget::new(retry_seed, 5, 500, deadline_ms);
    let mut failures = 0u32;
    let mut outcome = StreamOutcome {
        connections: 0,
        lines_sent: 0,
    };
    loop {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                if failures >= max_attempts {
                    return Err(DaemonError::Io(e));
                }
                match budget.try_next_delay() {
                    Ok(delay) => std::thread::sleep(delay),
                    Err(spent) => return Err(DaemonError::RetryExhausted(spent)),
                }
                continue;
            }
        };
        failures = 0;
        budget.reset_curve();
        outcome.connections += 1;
        let forced_drop = drop_after_lines.filter(|_| outcome.connections == 1);
        let mut writer = io::BufWriter::new(stream);
        let mut sent_this_conn = 0u64;
        let mut interrupted = false;
        for line in text.lines() {
            if let Some(limit) = forced_drop {
                if sent_this_conn >= limit {
                    interrupted = true;
                    break;
                }
            }
            let io_result = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"));
            match io_result {
                Ok(()) => {
                    sent_this_conn += 1;
                    outcome.lines_sent += 1;
                }
                Err(_) => {
                    interrupted = true;
                    break;
                }
            }
        }
        let flushed = writer.flush();
        if interrupted || flushed.is_err() {
            // Dropped mid-stream (or we forced it): reconnect and
            // resend from the top — on the same deadline budget.
            match budget.try_next_delay() {
                Ok(delay) => std::thread::sleep(delay),
                Err(spent) => return Err(DaemonError::RetryExhausted(spent)),
            }
            continue;
        }
        return Ok(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn listen_source_splices_two_connections() {
        let mut source = ListenSource::bind("127.0.0.1:0", Some(2)).unwrap();
        let addr = source.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            for chunk in ["alpha\nbra", "vo\nlast\n"] {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(chunk.as_bytes()).unwrap();
            }
        });
        let mut lines = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if source.read_line(&mut line).unwrap() == 0 {
                break;
            }
            lines.push(line.trim_end().to_string());
        }
        sender.join().unwrap();
        // The torn "bra" / "vo" halves arrive as separate reads across
        // the connection boundary; line framing is the daemon's
        // parser's job, and a torn line is just two fragments.
        assert_eq!(lines.concat().replace('\n', ""), "alphabravolast");
    }

    #[test]
    fn stream_replay_resends_after_forced_drop() {
        let dir = std::env::temp_dir().join(format!("tibfit-netio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("stream.replay");
        std::fs::write(&file, "R 0 0 0 1 1 1\nT\nR 0 1 0 2 2 2\nT\n").unwrap();
        let mut source = ListenSource::bind("127.0.0.1:0", Some(2)).unwrap();
        let addr = source.local_addr().unwrap().to_string();
        let reader = std::thread::spawn(move || {
            let mut text = String::new();
            source.read_to_string(&mut text).unwrap();
            text
        });
        let outcome =
            stream_replay(&addr, &file, 7, 5, Some(1), DEFAULT_STREAM_DEADLINE_MS).unwrap();
        assert_eq!(outcome.connections, 2);
        assert_eq!(outcome.lines_sent, 1 + 4);
        let text = reader.join().unwrap();
        assert!(text.contains("R 0 1 0 2 2 2"));
    }

    #[test]
    fn unreachable_address_errors_after_max_attempts() {
        let dir = std::env::temp_dir().join(format!("tibfit-netio-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("noop.replay");
        std::fs::write(&file, "T\n").unwrap();
        // Port 1 on localhost: connection refused.
        let err = stream_replay("127.0.0.1:1", &file, 3, 2, None, DEFAULT_STREAM_DEADLINE_MS);
        assert!(err.is_err());
    }

    fn read_all_lines(source: &mut FanInSource) -> Vec<String> {
        let mut lines = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if source.read_line(&mut line).unwrap() == 0 {
                break;
            }
            lines.push(line.trim_end().to_string());
        }
        lines
    }

    #[test]
    fn fan_in_merges_split_streams_tick_by_tick() {
        let mut source = FanInSource::bind("127.0.0.1:0", 3).unwrap();
        let addr = source.local_addr().unwrap();
        // The same 2-tick stream split across three connections: each
        // carries a disjoint R subset of every tick plus all T lines.
        const SPLITS: [&str; 3] = [
            "R 0 0 0 1 1.0 1.0\nT\nR 0 3 0 2 1.0 1.0\nT\n",
            "R 0 1 0 1 2.0 2.0\nT\nT\n",
            "R 0 2 0 1 3.0 3.0\nT\nR 0 4 0 2 4.0 4.0\nT\n",
        ];
        let senders: Vec<_> = SPLITS
            .iter()
            .map(|chunk| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.write_all(chunk.as_bytes()).unwrap();
                })
            })
            .collect();
        let lines = read_all_lines(&mut source);
        for sender in senders {
            sender.join().unwrap();
        }
        let tick_positions: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.as_str() == "T")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(tick_positions.len(), 2, "both ticks released: {lines:?}");
        // Tick 1's three reports all precede the first T; tick 2's two
        // reports sit between the two Ts.
        let first: Vec<&String> = lines[..tick_positions[0]].iter().collect();
        assert_eq!(first.len(), 3);
        assert!(first.iter().all(|l| l.contains(" 0 1 ")));
        let second: Vec<&String> = lines[tick_positions[0] + 1..tick_positions[1]]
            .iter()
            .collect();
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|l| l.contains(" 0 2 ")));
    }

    #[test]
    fn fan_in_connection_highwater_drops_stale_resends() {
        let mut source = FanInSource::bind("127.0.0.1:0", 1).unwrap();
        let addr = source.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // The second and third lines are a duplicate and a stale
            // (time, seq) regression for the same (tenant, src=5); the
            // fourth advances and must pass.
            s.write_all(
                b"R 0 0 5 3 1.0 1.0\nR 0 0 5 3 1.0 1.0\nR 0 0 5 2 1.0 1.0\nR 0 1 5 4 1.0 1.0\nT\n",
            )
            .unwrap();
        });
        let lines = read_all_lines(&mut source);
        sender.join().unwrap();
        assert_eq!(
            lines,
            vec![
                "R 0 0 5 3 1.0 1.0".to_string(),
                "R 0 1 5 4 1.0 1.0".to_string(),
                "T".to_string()
            ]
        );
    }

    #[test]
    fn deadline_budget_turns_endless_retry_into_typed_error() {
        let dir = std::env::temp_dir().join(format!("tibfit-netio-budget-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("budget.replay");
        std::fs::write(&file, "T\n").unwrap();
        // Unreachable address, generous attempt count, zero budget:
        // the first retry request exhausts the deadline.
        match stream_replay("127.0.0.1:1", &file, 3, 100, None, 0) {
            Err(DaemonError::RetryExhausted(e)) => {
                assert_eq!(e.budget_ms, 0);
                assert_eq!(e.spent_ms, 0);
            }
            other => panic!("expected RetryExhausted, got {other:?}"),
        }
    }
}
