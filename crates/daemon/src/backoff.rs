//! Seeded exponential backoff with jitter — the retry schedule for
//! flaky upstream connections and worker restarts.
//!
//! Deterministic given its seed (it draws from [`SimRng`]), so tests
//! can pin the exact schedule while production gets the decorrelation
//! jitter provides: each delay is uniform in `[base/2, base]` of the
//! doubling curve, capped.

use std::time::Duration;

use tibfit_sim::rng::SimRng;

/// An iterator of jittered, exponentially growing delays.
#[derive(Debug, Clone)]
pub struct JitteredBackoff {
    rng: SimRng,
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl JitteredBackoff {
    /// A schedule starting at `base_ms` (full jitter halves it at
    /// minimum), doubling per attempt, never exceeding `cap_ms`.
    #[must_use]
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Self {
        JitteredBackoff {
            rng: SimRng::seed_from(seed ^ 0xBAC0_0FF5),
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
        }
    }

    /// The next delay. Advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.base_ms.saturating_mul(1u64 << self.attempt.min(20));
        let ceiling = exp.min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        let jittered = ceiling / 2 + self.rng.next_u64() % (ceiling / 2 + 1);
        Duration::from_millis(jittered)
    }

    /// How many delays have been produced.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the doubling curve (e.g., after a healthy period) while
    /// keeping the jitter stream.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let mut a = JitteredBackoff::new(7, 10, 1000);
        let mut b = JitteredBackoff::new(7, 10, 1000);
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        let mut c = JitteredBackoff::new(8, 10, 1000);
        let seq_a: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let seq_c: Vec<_> = (0..8).map(|_| c.next_delay()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn delays_grow_but_respect_the_cap() {
        let mut b = JitteredBackoff::new(1, 10, 160);
        let mut last_ceiling = 0;
        for attempt in 0..12 {
            let d = b.next_delay().as_millis() as u64;
            let ceiling = (10u64 << attempt.min(20)).min(160);
            assert!(d >= ceiling / 2, "attempt {attempt}: {d} below half-ceiling");
            assert!(d <= ceiling, "attempt {attempt}: {d} above ceiling");
            last_ceiling = ceiling;
        }
        assert_eq!(last_ceiling, 160);
    }

    #[test]
    fn reset_restarts_the_curve() {
        let mut b = JitteredBackoff::new(3, 10, 10_000);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay().as_millis() <= 10);
        assert_eq!(b.attempts(), 1);
    }
}
