//! Seeded exponential backoff with jitter — the retry schedule for
//! flaky upstream connections and worker restarts.
//!
//! Deterministic given its seed (it draws from [`SimRng`]), so tests
//! can pin the exact schedule while production gets the decorrelation
//! jitter provides: each delay is uniform in `[base/2, base]` of the
//! doubling curve, capped.

use std::fmt;
use std::time::Duration;

use tibfit_sim::rng::SimRng;

/// The retry schedule's total-deadline budget ran out: the caller gets
/// a typed, inspectable exhaustion instead of an unbounded retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryExhausted {
    /// Delays produced before exhaustion.
    pub attempts: u32,
    /// The budget the schedule was given, in milliseconds.
    pub budget_ms: u64,
    /// Milliseconds of delay already handed out.
    pub spent_ms: u64,
}

impl fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retry budget exhausted after {} attempts ({} of {} ms spent)",
            self.attempts, self.spent_ms, self.budget_ms
        )
    }
}

impl std::error::Error for RetryExhausted {}

/// A [`JitteredBackoff`] under a total-deadline budget: the sum of all
/// delays it hands out never exceeds `budget_ms`, and once the budget
/// is spent every further request is a typed [`RetryExhausted`].
///
/// The final delay is clamped so the schedule spends its budget
/// exactly rather than overshooting or forfeiting the remainder.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    backoff: JitteredBackoff,
    budget_ms: u64,
    spent_ms: u64,
}

impl RetryBudget {
    /// A budgeted schedule: jitter curve from (`seed`, `base_ms`,
    /// `cap_ms`), total delay capped at `budget_ms`.
    #[must_use]
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64, budget_ms: u64) -> Self {
        RetryBudget {
            backoff: JitteredBackoff::new(seed, base_ms, cap_ms),
            budget_ms,
            spent_ms: 0,
        }
    }

    /// The next delay, debited from the budget (clamped to whatever
    /// remains).
    ///
    /// # Errors
    ///
    /// [`RetryExhausted`] once the budget is fully spent.
    pub fn try_next_delay(&mut self) -> Result<Duration, RetryExhausted> {
        let remaining = self.budget_ms - self.spent_ms;
        if remaining == 0 {
            return Err(RetryExhausted {
                attempts: self.backoff.attempts(),
                budget_ms: self.budget_ms,
                spent_ms: self.spent_ms,
            });
        }
        let drawn = self.backoff.next_delay().as_millis() as u64;
        let granted = drawn.min(remaining);
        self.spent_ms += granted;
        Ok(Duration::from_millis(granted))
    }

    /// Milliseconds of delay handed out so far.
    #[must_use]
    pub fn spent_ms(&self) -> u64 {
        self.spent_ms
    }

    /// Milliseconds of delay still available.
    #[must_use]
    pub fn remaining_ms(&self) -> u64 {
        self.budget_ms - self.spent_ms
    }

    /// Delays produced so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.backoff.attempts()
    }

    /// Restarts the doubling curve after a healthy period. The budget
    /// is a *total* deadline, so spent milliseconds are not refunded.
    pub fn reset_curve(&mut self) {
        self.backoff.reset();
    }
}

/// An iterator of jittered, exponentially growing delays.
#[derive(Debug, Clone)]
pub struct JitteredBackoff {
    rng: SimRng,
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl JitteredBackoff {
    /// A schedule starting at `base_ms` (full jitter halves it at
    /// minimum), doubling per attempt, never exceeding `cap_ms`.
    #[must_use]
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Self {
        JitteredBackoff {
            rng: SimRng::seed_from(seed ^ 0xBAC0_0FF5),
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
        }
    }

    /// The next delay. Advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.base_ms.saturating_mul(1u64 << self.attempt.min(20));
        let ceiling = exp.min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        let jittered = ceiling / 2 + self.rng.next_u64() % (ceiling / 2 + 1);
        Duration::from_millis(jittered)
    }

    /// How many delays have been produced.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the doubling curve (e.g., after a healthy period) while
    /// keeping the jitter stream.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let mut a = JitteredBackoff::new(7, 10, 1000);
        let mut b = JitteredBackoff::new(7, 10, 1000);
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
        let mut c = JitteredBackoff::new(8, 10, 1000);
        let seq_a: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let seq_c: Vec<_> = (0..8).map(|_| c.next_delay()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn delays_grow_but_respect_the_cap() {
        let mut b = JitteredBackoff::new(1, 10, 160);
        let mut last_ceiling = 0;
        for attempt in 0..12 {
            let d = b.next_delay().as_millis() as u64;
            let ceiling = (10u64 << attempt.min(20)).min(160);
            assert!(d >= ceiling / 2, "attempt {attempt}: {d} below half-ceiling");
            assert!(d <= ceiling, "attempt {attempt}: {d} above ceiling");
            last_ceiling = ceiling;
        }
        assert_eq!(last_ceiling, 160);
    }

    #[test]
    fn reset_restarts_the_curve() {
        let mut b = JitteredBackoff::new(3, 10, 10_000);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay().as_millis() <= 10);
        assert_eq!(b.attempts(), 1);
    }

    #[test]
    fn zero_budget_exhausts_immediately() {
        let mut b = RetryBudget::new(7, 10, 1000, 0);
        assert_eq!(
            b.try_next_delay().unwrap_err(),
            RetryExhausted { attempts: 0, budget_ms: 0, spent_ms: 0 }
        );
    }

    #[test]
    fn budget_sums_delays_and_clamps_the_last_one() {
        // base=cap=100 → every jittered delay is in [50, 100] ms. A
        // 120 ms budget grants one full delay, clamps the second to the
        // remainder, then exhausts.
        let mut b = RetryBudget::new(11, 100, 100, 120);
        let first = b.try_next_delay().unwrap().as_millis() as u64;
        assert!((50..=100).contains(&first));
        assert_eq!(b.spent_ms(), first);
        let second = b.try_next_delay().unwrap().as_millis() as u64;
        assert_eq!(second, 120 - first, "final delay must be clamped to the remainder");
        assert_eq!(b.spent_ms(), 120);
        assert_eq!(b.remaining_ms(), 0);
        let err = b.try_next_delay().unwrap_err();
        assert_eq!(err, RetryExhausted { attempts: 2, budget_ms: 120, spent_ms: 120 });
        // Exhaustion is sticky.
        assert!(b.try_next_delay().is_err());
    }

    #[test]
    fn exact_budget_boundary_spends_then_exhausts() {
        // Deterministic schedule: find the first delay for this seed,
        // then hand a budget of exactly that many milliseconds to a
        // fresh schedule — it must grant the delay in full and exhaust
        // on the very next request.
        let probe = RetryBudget::new(5, 40, 40, u64::MAX / 2)
            .try_next_delay()
            .unwrap()
            .as_millis() as u64;
        let mut b = RetryBudget::new(5, 40, 40, probe);
        assert_eq!(b.try_next_delay().unwrap().as_millis() as u64, probe);
        assert_eq!(b.remaining_ms(), 0);
        assert!(b.try_next_delay().is_err());
    }

    #[test]
    fn curve_reset_does_not_refund_budget() {
        let mut b = RetryBudget::new(9, 10, 1000, 5000);
        for _ in 0..4 {
            b.try_next_delay().unwrap();
        }
        let spent = b.spent_ms();
        assert!(spent > 0);
        b.reset_curve();
        assert_eq!(b.spent_ms(), spent, "reset must not refund spent milliseconds");
        // After the reset the curve restarts at the base.
        assert!(b.try_next_delay().unwrap().as_millis() as u64 <= 10);
    }

    #[test]
    fn retry_exhausted_displays() {
        let e = RetryExhausted { attempts: 3, budget_ms: 100, spent_ms: 100 };
        assert!(e.to_string().contains("3 attempts"));
    }
}
