//! # tibfit-daemon
//!
//! A supervised, self-healing trust service: hosts many independent
//! TIBFIT multi-cluster fields as tenants, ingests newline-framed
//! sensor reports from a replay file, stdin, or a socket, and serves
//! trust/decision queries while running.
//!
//! The crate is organised around four guarantees:
//!
//! - **Crash-anywhere resume** ([`state`], [`supervisor`]): every
//!   tenant snapshots atomically at tick boundaries (engine state +
//!   dedup highwaters + counters in one container); on restart the
//!   decision log is truncated to the snapshot and the re-streamed
//!   input regenerates the rest byte-identically.
//! - **Bounded ingest with deterministic shedding** ([`queue`]):
//!   explicit backpressure at tick boundaries, per-tick admission by
//!   trust impact, and shed records advancing the dedup highwater so
//!   the shed set is a pure function of `(seed, stream)`.
//! - **Watchdog supervision** ([`supervisor`]): an Impact-style
//!   per-tenant trust level over missed progress checks; wedged or
//!   panicked workers restart from snapshot + recovery buffer,
//!   crash-loopers are quarantined and later reintegrated on
//!   probation, without disturbing other tenants.
//! - **Typed, panic-free ingest** ([`wire`]): every malformed line is
//!   a counted [`wire::IngestError`], never an abort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use tibfit_experiments::checkpoint::CheckpointError;
use tibfit_experiments::sharded::ShardedError;
use tibfit_sim::snapshot::SnapshotError;

pub mod backoff;
pub mod fleet;
pub mod latency;
pub mod migrate;
pub mod net_io;
pub mod queue;
pub mod state;
pub mod supervisor;
pub mod tenant;
pub mod wire;

pub use supervisor::{Daemon, DaemonConfig, DaemonReport, TenantSummary, WatchdogPolicy, WorkerFault};
pub use tenant::EngineKind;

/// Every way the daemon itself can fail (worker/ingest faults are
/// contained and counted, not raised).
#[derive(Debug)]
pub enum DaemonError {
    /// Filesystem or stream I/O.
    Io(std::io::Error),
    /// An engine rejected its deployment.
    Engine(ShardedError),
    /// A snapshot container failed to encode or decode.
    Snapshot(SnapshotError),
    /// A checkpoint file failed to read, write, or restore.
    Checkpoint(CheckpointError),
    /// A retry schedule's total-deadline budget ran out.
    RetryExhausted(backoff::RetryExhausted),
    /// A live migration transfer failed (the source tenant is left
    /// intact and serving).
    Migrate(migrate::MigrateError),
    /// Invalid configuration.
    Config(String),
    /// A state file contradicts the configuration (e.g. seed
    /// mismatch) or is otherwise unusable.
    State(String),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "I/O failed: {e}"),
            DaemonError::Engine(e) => write!(f, "engine rejected: {e}"),
            DaemonError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            DaemonError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            DaemonError::RetryExhausted(e) => write!(f, "gave up: {e}"),
            DaemonError::Migrate(e) => write!(f, "migration failed: {e}"),
            DaemonError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            DaemonError::State(msg) => write!(f, "unusable state: {msg}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Engine(e) => Some(e),
            DaemonError::Snapshot(e) => Some(e),
            DaemonError::Checkpoint(e) => Some(e),
            DaemonError::RetryExhausted(e) => Some(e),
            DaemonError::Migrate(e) => Some(e),
            DaemonError::Config(_) | DaemonError::State(_) => None,
        }
    }
}
