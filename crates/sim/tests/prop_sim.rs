//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use tibfit_sim::rng::SimRng;
use tibfit_sim::stats::{Running, Series};
use tibfit_sim::{Engine, EventQueue, SimTime};

proptest! {
    /// The event queue always yields events in non-decreasing time order,
    /// regardless of insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ticks(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Same-time events preserve insertion (FIFO) order.
    #[test]
    fn queue_ties_are_fifo(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_ticks(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// The engine clock never goes backwards and dispatches every
    /// non-cancelled event exactly once.
    #[test]
    fn engine_dispatches_all_live_events(
        times in proptest::collection::vec(0u64..100_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine = Engine::new();
        let mut live = 0usize;
        let handles: Vec<_> = times
            .iter()
            .map(|&t| engine.schedule_at(SimTime::from_ticks(t), t))
            .collect();
        for (h, &c) in handles.iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if c {
                engine.cancel(*h);
            } else {
                live += 1;
            }
        }
        // Account for mask shorter than times: remaining events are live.
        if cancel_mask.len() < times.len() {
            live = times.len()
                - cancel_mask.iter().filter(|&&c| c).count();
        }
        let mut seen = 0usize;
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = engine.pop() {
            prop_assert!(t >= prev);
            prev = t;
            seen += 1;
        }
        prop_assert_eq!(seen, live);
    }

    /// Merging two Running accumulators equals accumulating sequentially.
    #[test]
    fn running_merge_equivalence(
        a in proptest::collection::vec(-1e6f64..1e6, 0..100),
        b in proptest::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut whole = Running::new();
        for &x in a.iter().chain(&b) {
            whole.push(x);
        }
        let mut left = Running::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = Running::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6_f64.max(whole.mean().abs() * 1e-9));
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-3_f64.max(whole.variance() * 1e-6));
        }
    }

    /// Running's min/max bound its mean.
    #[test]
    fn running_mean_bounded(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        prop_assert!(r.mean() >= r.min().unwrap() - 1e-6);
        prop_assert!(r.mean() <= r.max().unwrap() + 1e-6);
    }

    /// Series aggregation: the mean at each x equals the mean of the
    /// recorded ys there.
    #[test]
    fn series_mean_per_bucket(ys in proptest::collection::vec(0.0f64..1.0, 1..50)) {
        let mut s = Series::new("t");
        for &y in &ys {
            s.record(10.0, y);
        }
        let expected = ys.iter().sum::<f64>() / ys.len() as f64;
        prop_assert!((s.y_at(10.0).unwrap() - expected).abs() < 1e-9);
    }

    /// SimRng::chance(p) over many trials lands near p.
    #[test]
    fn rng_chance_frequency(seed in any::<u64>(), p in 0.05f64..0.95) {
        let mut rng = SimRng::seed_from(seed);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64;
        prop_assert!((hits / n as f64 - p).abs() < 0.03);
    }

    /// Forked RNG streams are reproducible from the parent seed.
    #[test]
    fn rng_fork_deterministic(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..16 {
            prop_assert_eq!(fa.uniform_f64().to_bits(), fb.uniform_f64().to_bits());
        }
    }

    /// shuffle produces a permutation.
    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = SimRng::seed_from(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
