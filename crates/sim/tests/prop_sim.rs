//! Property-style tests for the simulation kernel.
//!
//! Each test sweeps many seeded random cases (the generator is the
//! crate's own [`SimRng`], so runs are deterministic) and asserts the
//! same invariants a property-testing framework would shrink against.

use tibfit_sim::rng::SimRng;
use tibfit_sim::stats::{Running, Series};
use tibfit_sim::{Engine, EventQueue, SimTime};

/// Deterministic per-case seeds for the sweep loops.
fn case_seeds(n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(|i| 0x5EED_0000u64.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// The event queue always yields events in non-decreasing time order,
/// regardless of insertion order.
#[test]
fn queue_pops_sorted() {
    for seed in case_seeds(50) {
        let mut rng = SimRng::seed_from(seed);
        let n = 1 + rng.uniform_usize(199);
        let times: Vec<u64> = (0..n).map(|_| rng.next_u64() % 1_000_000).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ticks(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
            count += 1;
        }
        assert_eq!(count, times.len());
    }
}

/// Same-time events preserve insertion (FIFO) order.
#[test]
fn queue_ties_are_fifo() {
    for seed in case_seeds(20) {
        let mut rng = SimRng::seed_from(seed);
        let n = 1 + rng.uniform_usize(99);
        let t = rng.next_u64() % 1000;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_ticks(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>());
    }
}

/// The engine clock never goes backwards and dispatches every
/// non-cancelled event exactly once.
#[test]
fn engine_dispatches_all_live_events() {
    for seed in case_seeds(50) {
        let mut rng = SimRng::seed_from(seed);
        let n = 1 + rng.uniform_usize(99);
        let times: Vec<u64> = (0..n).map(|_| rng.next_u64() % 100_000).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut engine = Engine::new();
        let handles: Vec<_> = times
            .iter()
            .map(|&t| engine.schedule_at(SimTime::from_ticks(t), t))
            .collect();
        let mut live = 0usize;
        for (h, &c) in handles.iter().zip(cancel_mask.iter()) {
            if c {
                engine.cancel(*h);
            } else {
                live += 1;
            }
        }
        let mut seen = 0usize;
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = engine.pop() {
            assert!(t >= prev);
            prev = t;
            seen += 1;
        }
        assert_eq!(seen, live);
    }
}

/// Merging two Running accumulators equals accumulating sequentially.
#[test]
fn running_merge_equivalence() {
    for seed in case_seeds(50) {
        let mut rng = SimRng::seed_from(seed);
        let a: Vec<f64> = (0..rng.uniform_usize(100))
            .map(|_| rng.uniform_range(-1e6, 1e6))
            .collect();
        let b: Vec<f64> = (0..rng.uniform_usize(100))
            .map(|_| rng.uniform_range(-1e6, 1e6))
            .collect();
        let mut whole = Running::new();
        for &x in a.iter().chain(&b) {
            whole.push(x);
        }
        let mut left = Running::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = Running::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            assert!((left.mean() - whole.mean()).abs() < 1e-6_f64.max(whole.mean().abs() * 1e-9));
            assert!(
                (left.variance() - whole.variance()).abs()
                    < 1e-3_f64.max(whole.variance() * 1e-6)
            );
        }
    }
}

/// Running's min/max bound its mean.
#[test]
fn running_mean_bounded() {
    for seed in case_seeds(50) {
        let mut rng = SimRng::seed_from(seed);
        let n = 1 + rng.uniform_usize(199);
        let mut r = Running::new();
        for _ in 0..n {
            r.push(rng.uniform_range(-1e9, 1e9));
        }
        assert!(r.mean() >= r.min().unwrap() - 1e-6);
        assert!(r.mean() <= r.max().unwrap() + 1e-6);
    }
}

/// Series aggregation: the mean at each x equals the mean of the
/// recorded ys there.
#[test]
fn series_mean_per_bucket() {
    for seed in case_seeds(20) {
        let mut rng = SimRng::seed_from(seed);
        let ys: Vec<f64> = (0..1 + rng.uniform_usize(49))
            .map(|_| rng.uniform_f64())
            .collect();
        let mut s = Series::new("t");
        for &y in &ys {
            s.record(10.0, y);
        }
        let expected = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((s.y_at(10.0).unwrap() - expected).abs() < 1e-9);
    }
}

/// SimRng::chance(p) over many trials lands near p.
#[test]
fn rng_chance_frequency() {
    for seed in case_seeds(10) {
        let mut rng = SimRng::seed_from(seed);
        let p = 0.05 + 0.9 * SimRng::seed_from(seed ^ 1).uniform_f64();
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64;
        assert!((hits / n as f64 - p).abs() < 0.03, "seed {seed} p {p}");
    }
}

/// Forked RNG streams are reproducible from the parent seed.
#[test]
fn rng_fork_deterministic() {
    for seed in case_seeds(20) {
        let salt = seed.rotate_left(17) ^ 0xABCD;
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..16 {
            assert_eq!(fa.uniform_f64().to_bits(), fb.uniform_f64().to_bits());
        }
    }
}

/// shuffle produces a permutation.
#[test]
fn rng_shuffle_permutes() {
    for seed in case_seeds(20) {
        let mut rng = SimRng::seed_from(seed);
        let n = rng.uniform_usize(200);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
