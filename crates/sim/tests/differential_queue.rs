//! Differential test: the timer-wheel [`EventQueue`] must behave exactly
//! like the reference [`HeapEventQueue`] — same pop sequence (times,
//! payloads, FIFO tie-breaks), same lengths, same peeks — under tens of
//! thousands of randomized operations, including dense same-tick bursts,
//! far-future overflow pushes, pushes behind the cursor, and clears.

use tibfit_sim::rng::SimRng;
use tibfit_sim::{EventQueue, HeapEventQueue, SimTime, WHEEL_SPAN};

/// Drives both queues with an identical op stream and asserts lockstep
/// equality. Each payload is unique so FIFO tie-break violations cannot
/// hide.
fn drive(seed: u64, ops: usize, time_fn: impl Fn(&mut SimRng, u64) -> u64) {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut rng = SimRng::seed_from(seed);
    let mut payload = 0u64;
    let mut last_popped = 0u64;
    for op in 0..ops {
        match rng.uniform_usize(100) {
            // Push-heavy mix so the queues stay populated.
            0..=54 => {
                let t = time_fn(&mut rng, last_popped);
                wheel.push(SimTime::from_ticks(t), payload);
                heap.push(SimTime::from_ticks(t), payload);
                payload += 1;
            }
            55..=94 => {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "pop diverged at op {op} (seed {seed})");
                if let Some((t, _)) = w {
                    last_popped = t.ticks();
                }
            }
            95..=98 => {
                assert_eq!(
                    wheel.peek_time(),
                    heap.peek_time(),
                    "peek diverged at op {op} (seed {seed})"
                );
            }
            _ => {
                wheel.clear();
                heap.clear();
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged at op {op} (seed {seed})");
        assert_eq!(wheel.is_empty(), heap.is_empty());
    }
    // Drain whatever is left and compare the full tail.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(w, h, "drain diverged (seed {seed})");
        if w.is_none() {
            break;
        }
    }
}

#[test]
fn randomized_ops_match_heap_reference() {
    // 10k mixed operations over a horizon that exercises wheel buckets,
    // the overdue path (pushes at/behind the last popped tick), and the
    // overflow heap (pushes beyond the wheel window).
    for seed in [1, 2, 3, 42, 0xDEAD] {
        drive(seed, 10_000, |rng, last| {
            last.saturating_sub(200) + rng.uniform_usize(3 * WHEEL_SPAN) as u64
        });
    }
}

#[test]
fn dense_same_tick_bursts_match() {
    // Heavy tie-breaking: every push lands on one of a handful of ticks.
    for seed in [7, 8] {
        drive(seed, 10_000, |rng, last| last + rng.uniform_usize(3) as u64);
    }
}

#[test]
fn sparse_far_future_matches() {
    // Paper-scale pattern: bursts separated by ~1000-tick gaps, so most
    // pushes cross the wheel window and cascade through the overflow heap.
    for seed in [11, 12] {
        drive(seed, 10_000, |rng, last| {
            last + 1000 * rng.uniform_usize(8) as u64 + rng.uniform_usize(50) as u64
        });
    }
}

#[test]
fn engine_pop_until_semantics_unchanged() {
    // The Engine composes peek + pop; make sure the wheel preserves the
    // horizon behavior the collector poll loop depends on.
    use tibfit_sim::{Duration, Engine};
    let mut e = Engine::new();
    e.schedule_at(SimTime::from_ticks(5), 'a');
    e.schedule_at(SimTime::from_ticks(2000), 'b');
    let h = e.schedule_after(Duration::from_ticks(10), 'c');
    e.cancel(h);
    assert_eq!(e.pop_until(SimTime::from_ticks(100)), Some((SimTime::from_ticks(5), 'a')));
    assert_eq!(e.pop_until(SimTime::from_ticks(100)), None);
    assert_eq!(e.now(), SimTime::from_ticks(100));
    assert_eq!(e.pop(), Some((SimTime::from_ticks(2000), 'b')));
    assert_eq!(e.pop(), None);
}
