//! The simulation engine: a clock plus an event queue with cancellable
//! timers.
//!
//! The engine is deliberately *pull*-based: callers `pop()` events and run
//! their own handler logic. This keeps the kernel free of callback lifetimes
//! and makes protocol state machines (the cluster head, the adversary
//! coordinator, ...) ordinary owned structs that the experiment loop drives.

use std::collections::HashSet;

use crate::clock::{Duration, SimTime};
use crate::queue::EventQueue;

/// Identifies a scheduled timer so it can be cancelled before it fires.
///
/// Handles are unique for the lifetime of an [`Engine`]; a handle from one
/// engine is meaningless to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(u64);

/// A discrete-event simulation engine.
///
/// The engine owns the virtual clock. Popping an event advances the clock to
/// that event's firing time; time never moves backwards.
///
/// ```rust
/// use tibfit_sim::{Engine, Duration, SimTime};
///
/// let mut engine = Engine::new();
/// let h = engine.schedule_after(Duration::from_ticks(10), "timeout");
/// engine.schedule_after(Duration::from_ticks(5), "report");
/// engine.cancel(h);
/// let fired: Vec<&str> = std::iter::from_fn(|| engine.pop().map(|(_, e)| e)).collect();
/// assert_eq!(fired, vec!["report"]);
/// assert_eq!(engine.now(), SimTime::from_ticks(5));
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<(TimerHandle, E)>,
    cancelled: HashSet<TimerHandle>,
    next_handle: u64,
    dispatched: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            cancelled: HashSet::new(),
            next_handle: 0,
            dispatched: 0,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far (a cheap progress metric).
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `event` to fire at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Engine::now`]).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> TimerHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let handle = TimerHandle(self.next_handle);
        self.next_handle += 1;
        self.queue.push(at, (handle, event));
        handle
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: Duration, event: E) -> TimerHandle {
        self.schedule_at(self.now + after, event)
    }

    /// Cancels a pending timer. Returns `true` if the timer had not yet
    /// fired or been cancelled.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is skipped on
    /// pop, which is O(1) here and amortized against the eventual pop.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        if handle.0 >= self.next_handle {
            return false;
        }
        self.cancelled.insert(handle)
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// firing time. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some((time, (handle, event))) = self.queue.pop() {
            if self.cancelled.remove(&handle) {
                continue;
            }
            debug_assert!(time >= self.now, "event queue yielded a past event");
            self.now = time;
            self.dispatched += 1;
            return Some((time, event));
        }
        None
    }

    /// Like [`Engine::pop`] but only yields events firing at or before
    /// `deadline`; later events stay queued and the clock advances to
    /// `deadline` when the horizon is reached.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    // A cancelled head is skipped by pop(); loop again so a
                    // later-but-live event past the deadline is not returned.
                    let (time, (handle, event)) = self.queue.pop().expect("peeked entry vanished");
                    if self.cancelled.remove(&handle) {
                        continue;
                    }
                    self.now = time;
                    self.dispatched += 1;
                    return Some((time, event));
                }
                _ => {
                    if deadline > self.now {
                        self.now = deadline;
                    }
                    return None;
                }
            }
        }
    }

    /// Number of queued entries, including lazily cancelled ones.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event count over the engine's
    /// lifetime (the bench harness reports it as `peak_queue_depth`).
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// `true` if no live events remain.
    ///
    /// This is exact even in the presence of lazy cancellation.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.len() == self.cancelled.len()
    }

    /// Live (non-cancelled) pending timers in firing order — the
    /// checkpoint capture path.
    ///
    /// Lazily cancelled entries are compacted away: they would never
    /// fire, so a restored engine does not need them.
    #[must_use]
    pub fn live_entries(&self) -> Vec<(SimTime, &E)> {
        self.queue
            .ordered_entries()
            .into_iter()
            .filter(|(_, (handle, _))| !self.cancelled.contains(handle))
            .map(|(t, (_, e))| (t, e))
            .collect()
    }

    /// Rebuilds an engine from checkpointed state: clock at `now`, the
    /// dispatch counter restored, and `entries` re-scheduled in their
    /// captured firing order (as produced by [`Engine::live_entries`]).
    ///
    /// Returns `None` if any entry fires before `now` — a healthy
    /// engine can never hold such an entry, so the blob is corrupt.
    /// Timer handles are reissued from zero; handles captured before
    /// the snapshot are meaningless against the restored engine.
    #[must_use]
    pub fn from_parts(now: SimTime, dispatched: u64, entries: Vec<(SimTime, E)>) -> Option<Self> {
        let mut engine = Engine::new();
        engine.now = now;
        engine.dispatched = dispatched;
        for (at, event) in entries {
            if at < now {
                return None;
            }
            engine.schedule_at(at, event);
        }
        Some(engine)
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("cancelled", &self.cancelled.len())
            .field("dispatched", &self.dispatched)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(10), 'a');
        e.schedule_at(SimTime::from_ticks(20), 'b');
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_ticks(10));
        e.pop();
        assert_eq!(e.now(), SimTime::from_ticks(20));
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut e = Engine::new();
        let h = e.schedule_after(Duration::from_ticks(5), 'x');
        assert!(e.cancel(h));
        assert!(!e.cancel(h), "double-cancel reports false");
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut e: Engine<()> = Engine::new();
        assert!(!e.cancel(TimerHandle(42)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(10), ());
        e.pop();
        e.schedule_at(SimTime::from_ticks(5), ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(5), 'a');
        e.schedule_at(SimTime::from_ticks(15), 'b');
        assert_eq!(e.pop_until(SimTime::from_ticks(10)), Some((SimTime::from_ticks(5), 'a')));
        assert_eq!(e.pop_until(SimTime::from_ticks(10)), None);
        // Clock advanced to the deadline even though no event fired.
        assert_eq!(e.now(), SimTime::from_ticks(10));
        // The later event is still there.
        assert_eq!(e.pop(), Some((SimTime::from_ticks(15), 'b')));
    }

    #[test]
    fn pop_until_skips_cancelled_head() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_ticks(5), 'a');
        e.schedule_at(SimTime::from_ticks(6), 'b');
        e.cancel(h);
        assert_eq!(e.pop_until(SimTime::from_ticks(10)), Some((SimTime::from_ticks(6), 'b')));
    }

    #[test]
    fn is_idle_accounts_for_cancellations() {
        let mut e = Engine::new();
        let h = e.schedule_after(Duration::from_ticks(1), ());
        assert!(!e.is_idle());
        e.cancel(h);
        assert!(e.is_idle());
    }

    #[test]
    fn dispatched_counts_only_live_events() {
        let mut e = Engine::new();
        let h = e.schedule_after(Duration::from_ticks(1), 1);
        e.schedule_after(Duration::from_ticks(2), 2);
        e.cancel(h);
        while e.pop().is_some() {}
        assert_eq!(e.dispatched(), 1);
    }

    #[test]
    fn live_entries_and_from_parts_roundtrip() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_ticks(10), 'a');
        let h = e.schedule_at(SimTime::from_ticks(12), 'x');
        e.schedule_at(SimTime::from_ticks(12), 'b');
        e.schedule_at(SimTime::from_ticks(30), 'c');
        e.cancel(h);
        e.pop(); // fire 'a'; clock at 10, dispatched 1
        let captured: Vec<(SimTime, char)> =
            e.live_entries().into_iter().map(|(t, &c)| (t, c)).collect();
        assert_eq!(
            captured,
            vec![(SimTime::from_ticks(12), 'b'), (SimTime::from_ticks(30), 'c')],
            "cancelled entry must be compacted away"
        );
        let mut restored = Engine::from_parts(e.now(), e.dispatched(), captured).unwrap();
        assert_eq!(restored.now(), e.now());
        assert_eq!(restored.dispatched(), e.dispatched());
        let a: Vec<(SimTime, char)> = std::iter::from_fn(|| e.pop()).collect();
        let b: Vec<(SimTime, char)> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
        assert_eq!(e.dispatched(), restored.dispatched());
    }

    #[test]
    fn from_parts_rejects_past_entries() {
        let entries = vec![(SimTime::from_ticks(5), ())];
        assert!(Engine::from_parts(SimTime::from_ticks(10), 0, entries).is_none());
    }

    #[test]
    fn same_time_events_fifo() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule_at(SimTime::from_ticks(3), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
