//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour in the reproduction flows through [`SimRng`] so
//! that a single `u64` seed pins down an entire run. The generator is a
//! self-contained xoshiro256++ (Blackman & Vigna) seeded through SplitMix64,
//! so the crate carries no external dependency; on top of the raw stream it
//! adds the distributions the paper's workloads need: Bernoulli trials,
//! uniform points in a rectangle, and Gaussian samples (Box–Muller, so no
//! extra dependency on a distributions crate).

/// One SplitMix64 step: used for seed expansion and stream splitting.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable random number generator with simulation-oriented helpers.
///
/// ```rust
/// use tibfit_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_f64(), b.uniform_f64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

/// The complete internal state of a [`SimRng`], exposed for
/// checkpoint/restore.
///
/// The Box–Muller spare is part of the state: dropping it would shift
/// every Gaussian draw after a restore by one transform, silently
/// desynchronising a resumed run from the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// xoshiro256++ state words. Must not be all zero (the all-zero
    /// state is a fixed point of the generator).
    pub s: [u64; 4],
    /// Cached second output of the last Box–Muller transform, if any.
    pub gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a non-zero xoshiro state even
        // for seed 0 and decorrelates similar seeds.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Creates the generator for numbered stream `stream` of a master
    /// seed.
    ///
    /// Unlike [`SimRng::fork`], which consumes parent output, this is a
    /// pure function of `(master, stream)` — the stream a shard receives
    /// does not depend on how many siblings were created before it or in
    /// what order, which is what keeps sharded runs bit-identical to
    /// sequential ones (see [`crate::shard::stream_seed`]).
    #[must_use]
    pub fn stream(master: u64, stream: u64) -> SimRng {
        SimRng::seed_from(crate::shard::stream_seed(master, stream))
    }

    /// Captures the generator's complete internal state.
    #[must_use]
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s,
            gauss_spare: self.gauss_spare,
        }
    }

    /// Reconstructs a generator from a captured [`RngState`].
    ///
    /// Returns `None` for states no healthy generator can be in: an
    /// all-zero xoshiro state (the generator would emit zeros forever)
    /// or a non-finite Box–Muller spare. The restored generator
    /// continues the original's output stream exactly.
    #[must_use]
    pub fn from_state(state: RngState) -> Option<SimRng> {
        if state.s == [0; 4] {
            return None;
        }
        if state.gauss_spare.is_some_and(|z| !z.is_finite()) {
            return None;
        }
        Some(SimRng {
            s: state.s,
            gauss_spare: state.gauss_spare,
        })
    }

    /// Derives an independent child generator; used to give each node its
    /// own stream so adding a node does not perturb the others' draws.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // Mix the salt into fresh output of the parent stream.
        let base = self.next_u64();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "uniform_range requires lo < hi, got [{lo}, {hi})");
        let x = lo + self.uniform_f64() * (hi - lo);
        // Floating rounding can land exactly on `hi`; keep the half-open
        // contract.
        if x >= hi {
            hi.next_down()
        } else {
            x
        }
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize requires n > 0");
        // Lemire's multiply-shift range reduction (bias < 2^-64 per draw,
        // far below anything a simulation statistic can resolve).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A Bernoulli trial: `true` with probability `p`.
    ///
    /// `p <= 0` always yields `false`; `p >= 1` always yields `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let mut u1 = self.uniform_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Chooses `k` distinct indices from `0..n` uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::seed_from(0);
        let outputs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0), "stream stuck at zero");
        let mut dedup = outputs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() > 4, "stream repeats immediately");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::seed_from(21);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(0);
        assert!(!r.chance(0.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut r = SimRng::seed_from(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count() as f64;
        let freq = hits / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq} far from 0.3");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(2.0, 1.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 2.25).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = r.uniform_range(-3.0, 4.0);
            assert!((-3.0..4.0).contains(&x));
        }
    }

    #[test]
    fn uniform_usize_covers_range() {
        let mut r = SimRng::seed_from(17);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.uniform_usize(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never drawn");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_range_rejects_empty() {
        SimRng::seed_from(0).uniform_range(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "std_dev must be finite")]
    fn normal_rejects_negative_std() {
        SimRng::seed_from(0).normal(0.0, -1.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(9);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_indices_distinct_and_in_range() {
        let mut r = SimRng::seed_from(13);
        let picked = r.choose_indices(20, 8);
        assert_eq!(picked.len(), 8);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
        assert!(picked.iter().all(|&i| i < 20));
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut original = SimRng::seed_from(77);
        for _ in 0..13 {
            let _ = original.next_u64();
        }
        // Park a Box–Muller spare so the restore has to carry it.
        let _ = original.standard_normal();
        let mut restored = SimRng::from_state(original.state()).unwrap();
        for _ in 0..8 {
            assert_eq!(original.standard_normal(), restored.standard_normal());
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn from_state_rejects_degenerate_states() {
        assert!(SimRng::from_state(RngState { s: [0; 4], gauss_spare: None }).is_none());
        assert!(SimRng::from_state(RngState {
            s: [1, 2, 3, 4],
            gauss_spare: Some(f64::NAN),
        })
        .is_none());
        assert!(SimRng::from_state(RngState { s: [1, 0, 0, 0], gauss_spare: Some(0.5) }).is_some());
    }

    #[test]
    fn fork_streams_are_independent_of_later_parent_use() {
        let mut parent_a = SimRng::seed_from(100);
        let mut parent_b = SimRng::seed_from(100);
        let mut child_a = parent_a.fork(1);
        let mut child_b = parent_b.fork(1);
        // Different downstream use of the parents must not affect children.
        let _ = parent_a.next_u64();
        for _ in 0..10 {
            assert_eq!(child_a.next_u64(), child_b.next_u64());
        }
    }
}
