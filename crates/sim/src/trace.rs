//! Structured simulation tracing.
//!
//! A bounded, allocation-light event log plus named counters, for
//! debugging protocol runs and asserting behavioural properties in tests
//! ("exactly N decision rounds ran", "no decision before the first
//! report"). Tracing is off by default and costs one branch per call
//! when disabled.

use std::collections::{BTreeMap, VecDeque};

use crate::clock::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Static category tag (e.g. `"decision"`, `"report"`).
    pub category: &'static str,
    /// Free-form details.
    pub message: String,
}

/// A bounded trace buffer with named counters.
///
/// ```rust
/// use tibfit_sim::trace::Trace;
/// use tibfit_sim::SimTime;
///
/// let mut trace = Trace::enabled(16);
/// trace.record(SimTime::from_ticks(5), "report", "n3 -> CH");
/// trace.count("reports_delivered");
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.counter("reports_delivered"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    counters: BTreeMap<&'static str, u64>,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A disabled trace: every call is a cheap no-op (counters still
    /// work — they are always useful and nearly free).
    #[must_use]
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            events: VecDeque::with_capacity(capacity),
            capacity,
            counters: BTreeMap::new(),
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether event recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled). The oldest event is
    /// dropped once the buffer is full.
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            category,
            message: message.into(),
        });
    }

    /// Increments a named counter (works even when disabled).
    pub fn count(&mut self, counter: &'static str) {
        *self.counters.entry(counter).or_insert(0) += 1;
    }

    /// Adds `n` to a named counter.
    pub fn count_by(&mut self, counter: &'static str, n: u64) {
        *self.counters.entry(counter).or_insert(0) += n;
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<&TraceEvent> {
        self.events.iter().collect()
    }

    /// Retained events in one category, oldest first.
    #[must_use]
    pub fn events_in(&self, category: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// How many events were evicted by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears events and counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
        self.dropped = 0;
    }

    /// Renders the retained events as one line each.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("[{}] {}: {}\n", e.time, e.category, e.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn disabled_records_nothing_but_counts() {
        let mut trace = Trace::disabled();
        trace.record(t(1), "x", "ignored");
        trace.count("hits");
        assert!(trace.events().is_empty());
        assert_eq!(trace.counter("hits"), 1);
        assert!(!trace.is_enabled());
    }

    #[test]
    fn events_retained_in_order() {
        let mut trace = Trace::enabled(8);
        trace.record(t(1), "a", "first");
        trace.record(t(2), "b", "second");
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "first");
        assert_eq!(events[1].message, "second");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut trace = Trace::enabled(3);
        for i in 0..5 {
            trace.record(t(i), "x", format!("e{i}"));
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].message, "e2");
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn category_filter() {
        let mut trace = Trace::enabled(8);
        trace.record(t(1), "decision", "d1");
        trace.record(t(2), "report", "r1");
        trace.record(t(3), "decision", "d2");
        assert_eq!(trace.events_in("decision").len(), 2);
        assert_eq!(trace.events_in("report").len(), 1);
        assert!(trace.events_in("other").is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut trace = Trace::enabled(1);
        trace.count("a");
        trace.count("a");
        trace.count_by("b", 10);
        assert_eq!(trace.counter("a"), 2);
        assert_eq!(trace.counter("b"), 10);
        assert_eq!(trace.counter("missing"), 0);
        assert_eq!(trace.counters(), vec![("a", 2), ("b", 10)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut trace = Trace::enabled(4);
        trace.record(t(1), "x", "e");
        trace.count("c");
        trace.clear();
        assert!(trace.events().is_empty());
        assert_eq!(trace.counter("c"), 0);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut trace = Trace::enabled(4);
        trace.record(t(7), "x", "hello");
        let text = trace.render();
        assert!(text.contains("t=7"));
        assert!(text.contains("x: hello"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::enabled(0);
    }
}
