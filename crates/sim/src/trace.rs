//! Structured simulation tracing.
//!
//! A bounded, allocation-light event log plus named counters, for
//! debugging protocol runs and asserting behavioural properties in tests
//! ("exactly N decision rounds ran", "no decision before the first
//! report"). Tracing is off by default and costs one branch per call
//! when disabled.
//!
//! ## Counters
//!
//! Counters are *interned*: a name is registered once with
//! [`Trace::register_counter`], which hands back a [`CounterId`] — an
//! index into a flat `Vec<u64>`. Bumping through the id
//! ([`Trace::bump`]) is a branch-predictable indexed add with no map
//! lookup, which is what the per-event hot path pays. The string-keyed
//! [`Trace::count`]/[`Trace::counter`] API is kept for cold callers and
//! tests; it interns on first use via a short linear scan.
//!
//! Counters can be switched off entirely with
//! [`Trace::without_counters`]; in that mode every bump costs exactly
//! one (perfectly predicted) branch.

use std::collections::VecDeque;

use crate::clock::SimTime;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Static category tag (e.g. `"decision"`, `"report"`).
    pub category: &'static str,
    /// Free-form details.
    pub message: String,
}

/// Handle to an interned counter slot; obtained from
/// [`Trace::register_counter`] and only meaningful on the trace that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// A bounded trace buffer with named counters.
///
/// ```rust
/// use tibfit_sim::trace::Trace;
/// use tibfit_sim::SimTime;
///
/// let mut trace = Trace::enabled(16);
/// trace.record(SimTime::from_ticks(5), "report", "n3 -> CH");
/// trace.count("reports_delivered");
/// // Hot paths intern once and bump through the id:
/// let id = trace.register_counter("reports_delivered");
/// trace.bump(id);
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.counter("reports_delivered"), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    counter_names: Vec<&'static str>,
    counter_slots: Vec<u64>,
    counters_on: bool,
    enabled: bool,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            events: VecDeque::new(),
            capacity: 0,
            counter_names: Vec::new(),
            counter_slots: Vec::new(),
            counters_on: true,
            enabled: false,
            dropped: 0,
        }
    }
}

impl Trace {
    /// A disabled trace: every call is a cheap no-op (counters still
    /// work — they are always useful and nearly free).
    #[must_use]
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled trace retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            events: VecDeque::with_capacity(capacity),
            capacity,
            enabled: true,
            ..Trace::default()
        }
    }

    /// Switches counters off. A bump on a counter-disabled trace costs
    /// exactly one branch (the `counters_on` check) — the documented
    /// zero-overhead mode for throughput benchmarking.
    #[must_use]
    pub fn without_counters(mut self) -> Self {
        self.counters_on = false;
        self
    }

    /// Whether event recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether counter bumps accumulate (see
    /// [`Trace::without_counters`]).
    #[must_use]
    pub fn counters_enabled(&self) -> bool {
        self.counters_on
    }

    /// Records an event (no-op when disabled). The oldest event is
    /// dropped once the buffer is full.
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            category,
            message: message.into(),
        });
    }

    /// Interns `counter`, returning the id of its slot. Registering the
    /// same name again returns the existing id — call this once at
    /// set-up, keep the id, and bump through it on the hot path.
    pub fn register_counter(&mut self, counter: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|&n| n == counter) {
            return CounterId(i as u32);
        }
        self.counter_names.push(counter);
        self.counter_slots.push(0);
        CounterId((self.counter_names.len() - 1) as u32)
    }

    /// Increments an interned counter: one branch plus an indexed add.
    #[inline]
    pub fn bump(&mut self, id: CounterId) {
        if self.counters_on {
            self.counter_slots[id.0 as usize] += 1;
        }
    }

    /// Adds `n` to an interned counter.
    #[inline]
    pub fn bump_by(&mut self, id: CounterId, n: u64) {
        if self.counters_on {
            self.counter_slots[id.0 as usize] += n;
        }
    }

    /// Increments a named counter (works even when event recording is
    /// disabled). Cold-path convenience over
    /// [`Trace::register_counter`] + [`Trace::bump`].
    pub fn count(&mut self, counter: &'static str) {
        let id = self.register_counter(counter);
        self.bump(id);
    }

    /// Adds `n` to a named counter.
    pub fn count_by(&mut self, counter: &'static str, n: u64) {
        let id = self.register_counter(counter);
        self.bump_by(id, n);
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, counter: &str) -> u64 {
        self.counter_names
            .iter()
            .position(|&n| n == counter)
            .map_or(0, |i| self.counter_slots[i])
    }

    /// All counters with a non-zero value, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .counter_names
            .iter()
            .zip(&self.counter_slots)
            .filter(|(_, &v)| v != 0)
            .map(|(&n, &v)| (n, v))
            .collect();
        out.sort_unstable_by_key(|&(n, _)| n);
        out
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<&TraceEvent> {
        self.events.iter().collect()
    }

    /// Retained events in one category, oldest first.
    #[must_use]
    pub fn events_in(&self, category: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// How many events were evicted by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears events and counters (registered names are forgotten too;
    /// previously issued [`CounterId`]s are invalidated).
    pub fn clear(&mut self) {
        self.events.clear();
        self.counter_names.clear();
        self.counter_slots.clear();
        self.dropped = 0;
    }

    /// Renders the retained events as one line each.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("[{}] {}: {}\n", e.time, e.category, e.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn disabled_records_nothing_but_counts() {
        let mut trace = Trace::disabled();
        trace.record(t(1), "x", "ignored");
        trace.count("hits");
        assert!(trace.events().is_empty());
        assert_eq!(trace.counter("hits"), 1);
        assert!(!trace.is_enabled());
    }

    #[test]
    fn events_retained_in_order() {
        let mut trace = Trace::enabled(8);
        trace.record(t(1), "a", "first");
        trace.record(t(2), "b", "second");
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "first");
        assert_eq!(events[1].message, "second");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut trace = Trace::enabled(3);
        for i in 0..5 {
            trace.record(t(i), "x", format!("e{i}"));
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].message, "e2");
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn category_filter() {
        let mut trace = Trace::enabled(8);
        trace.record(t(1), "decision", "d1");
        trace.record(t(2), "report", "r1");
        trace.record(t(3), "decision", "d2");
        assert_eq!(trace.events_in("decision").len(), 2);
        assert_eq!(trace.events_in("report").len(), 1);
        assert!(trace.events_in("other").is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut trace = Trace::enabled(1);
        trace.count("a");
        trace.count("a");
        trace.count_by("b", 10);
        assert_eq!(trace.counter("a"), 2);
        assert_eq!(trace.counter("b"), 10);
        assert_eq!(trace.counter("missing"), 0);
        assert_eq!(trace.counters(), vec![("a", 2), ("b", 10)]);
    }

    #[test]
    fn registered_ids_are_stable_and_deduplicated() {
        let mut trace = Trace::disabled();
        let a = trace.register_counter("a");
        let b = trace.register_counter("b");
        let a2 = trace.register_counter("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        trace.bump(a);
        trace.bump(a2);
        trace.bump_by(b, 5);
        assert_eq!(trace.counter("a"), 2);
        assert_eq!(trace.counter("b"), 5);
    }

    #[test]
    fn string_and_id_apis_share_slots() {
        let mut trace = Trace::disabled();
        let id = trace.register_counter("shared");
        trace.count("shared");
        trace.bump(id);
        assert_eq!(trace.counter("shared"), 2);
    }

    #[test]
    fn without_counters_drops_bumps() {
        let mut trace = Trace::disabled().without_counters();
        assert!(!trace.counters_enabled());
        let id = trace.register_counter("x");
        trace.bump(id);
        trace.count("x");
        trace.count_by("x", 10);
        assert_eq!(trace.counter("x"), 0);
        assert!(trace.counters().is_empty());
    }

    #[test]
    fn untouched_registered_counters_hidden_from_listing() {
        let mut trace = Trace::disabled();
        let _ = trace.register_counter("registered_only");
        trace.count("bumped");
        assert_eq!(trace.counters(), vec![("bumped", 1)]);
        assert_eq!(trace.counter("registered_only"), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut trace = Trace::enabled(4);
        trace.record(t(1), "x", "e");
        trace.count("c");
        trace.clear();
        assert!(trace.events().is_empty());
        assert_eq!(trace.counter("c"), 0);
        assert_eq!(trace.dropped(), 0);
        assert!(trace.counters().is_empty());
    }

    #[test]
    fn render_is_line_per_event() {
        let mut trace = Trace::enabled(4);
        trace.record(t(7), "x", "hello");
        let text = trace.render();
        assert!(text.contains("t=7"));
        assert!(text.contains("x: hello"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::enabled(0);
    }
}
