//! Conservative window-synchronized shard scheduler.
//!
//! Large fields decompose into nearly independent shards (one per
//! cluster, or per cluster group) that only couple through messages near
//! shard borders and through periodic control traffic. This module
//! provides the execution substrate for running such shards in parallel
//! **without giving up bit-for-bit reproducibility**:
//!
//! * every shard owns its own state, event queue, and RNG stream (derive
//!   the stream seed with [`stream_seed`] so it depends only on the
//!   master seed and the shard index, never on scheduling order);
//! * shards advance in lockstep *epochs* of a window `W`, chosen no
//!   larger than the minimum cross-shard latency, so anything a shard
//!   sends during epoch `k` can only matter to its peers in epoch `k+1`
//!   (the classic conservative-synchronization bound); the window may
//!   vary per epoch ([`ShardScheduler::step_epoch_window_into`]) when the
//!   caller knows the next cross-shard interaction is farther out;
//! * cross-shard traffic travels in [`Envelope`]s through per-destination
//!   mailboxes that are drained in `(time, src, seq)` order — a total
//!   order that does not depend on which worker thread ran which shard,
//!   so the merged trace is identical for any thread count.
//!
//! Workers are spawned once per scheduler and parked on an epoch barrier
//! between windows; an epoch costs two condvar handshakes, not a round of
//! `thread::spawn`/`join`. Within an epoch, workers claim contiguous
//! chunks of the slot array off an atomic cursor and own their claimed
//! slots outright — no per-slot locking.
//!
//! The scheduler never inspects message payloads; domain logic lives in
//! the [`Shard`] implementation (see `tibfit-experiments::sharded` for
//! the multi-cluster TIBFIT wiring).

// Sanctioned exception to the crate-wide `deny(unsafe_code)`: the
// persistent worker pool hands workers exclusive, cursor-partitioned
// slot ownership (`SlotCell`) and erases the epoch job's lifetime for
// the parked threads. Every `unsafe` block below documents why the
// aliasing/lifetime claim holds.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::cache::CachePadded;
use crate::clock::{Duration, SimTime};

/// Derives the RNG stream seed for one shard (or any numbered stream)
/// from a master seed.
///
/// The derivation is a pure function of `(master, stream)` — two
/// SplitMix64-style avalanche rounds over the pair — so it is independent
/// of the order in which streams are created and of how work is
/// scheduled. Distinct `(master, stream)` pairs produce decorrelated
/// seeds even for adjacent indices.
///
/// ```rust
/// use tibfit_sim::shard::stream_seed;
/// assert_eq!(stream_seed(42, 3), stream_seed(42, 3));
/// assert_ne!(stream_seed(42, 3), stream_seed(42, 4));
/// assert_ne!(stream_seed(42, 3), stream_seed(43, 3));
/// ```
#[must_use]
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Second round decorrelates (master, stream) from (master^1, stream^1)
    // style near-collisions.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pseudo-shard index used for messages to and from the driver (the
/// base station in the TIBFIT wiring): [`ShardScheduler::inject`] stamps
/// this as `src`, and outbound messages sent to this index are returned
/// from [`ShardScheduler::step_epoch`] instead of being delivered to a
/// shard.
pub const DRIVER: usize = usize::MAX;

/// One cross-shard message: payload plus the `(time, src, seq)` key that
/// totally orders deliveries into a mailbox.
///
/// `seq` is a per-sender monotonic counter, so two envelopes from the
/// same sender never compare equal and the sort below is a total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated delivery time.
    pub time: SimTime,
    /// Sending shard index ([`DRIVER`] for injected input).
    pub src: usize,
    /// Per-sender monotonic sequence number.
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    fn key(&self) -> (SimTime, usize, u64) {
        (self.time, self.src, self.seq)
    }
}

/// Staging area a shard writes its outbound messages into during
/// [`Shard::step`]. The scheduler stamps `src` and `seq` and enforces the
/// conservative horizon: a message to a peer shard may not be timestamped
/// before the end of the epoch that produced it (it could not be
/// delivered in time). Messages to [`DRIVER`] are exempt — the driver
/// consumes them after the epoch completes, never in lockstep, so they
/// may carry their true emission time (e.g. a decision made mid-epoch).
#[derive(Debug)]
pub struct Outbox<M> {
    src: usize,
    seq: u64,
    horizon: SimTime,
    staged: Vec<(usize, Envelope<M>)>,
}

impl<M> Outbox<M> {
    /// Queues `msg` for shard `dst` (or [`DRIVER`]) at simulated time
    /// `time`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is a peer shard and `time` is before the current
    /// epoch's end — such a message would violate the conservative window
    /// bound (the receiver may already have advanced past `time`).
    pub fn send(&mut self, dst: usize, time: SimTime, msg: M) {
        assert!(
            dst == DRIVER || time >= self.horizon,
            "conservative bound violated: message at {time} from shard {} \
             cannot precede the epoch horizon {}",
            self.src,
            self.horizon
        );
        let seq = self.seq;
        self.seq += 1;
        self.staged.push((
            dst,
            Envelope {
                time,
                src: self.src,
                seq,
                msg,
            },
        ));
    }

    /// Number of messages staged so far this epoch.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

/// One independently steppable partition of the simulation.
///
/// `step` must advance local state from the previous epoch boundary to
/// `until`, consuming `inbox` (already sorted by `(time, src, seq)`) and
/// staging any cross-shard messages in `outbox`. Determinism contract:
/// the result of `step` may depend only on the shard's own state and the
/// inbox contents — never on global mutable state, wall-clock time, or
/// the behaviour of sibling shards within the same epoch.
pub trait Shard: Send {
    /// Cross-shard message payload.
    type Msg: Send;

    /// Advances the shard to `until`.
    fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<Self::Msg>>, outbox: &mut Outbox<Self::Msg>);
}

/// Why a [`ShardScheduler`] could not be built or driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The scheduler needs at least one shard.
    NoShards,
    /// The epoch window must be a positive duration.
    ZeroWindow,
    /// At least one worker thread is required.
    ZeroThreads,
    /// A message was addressed to a shard index that does not exist.
    UnknownDestination {
        /// The offending destination index.
        dst: usize,
        /// Number of shards in the scheduler.
        shards: usize,
    },
    /// An injected message was timestamped before the current epoch
    /// boundary and could never be delivered on time.
    InjectInPast {
        /// The requested delivery time.
        time: SimTime,
        /// The scheduler's current time.
        now: SimTime,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "need at least one shard"),
            ShardError::ZeroWindow => write!(f, "epoch window must be positive"),
            ShardError::ZeroThreads => write!(f, "need at least one worker thread"),
            ShardError::UnknownDestination { dst, shards } => {
                write!(f, "message addressed to shard {dst}, but only {shards} shards exist")
            }
            ShardError::InjectInPast { time, now } => {
                write!(f, "cannot inject a message at {time}: scheduler already at {now}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Per-shard slot: the shard itself plus its epoch-local work buffers.
struct Slot<S: Shard> {
    shard: S,
    inbox: Vec<Envelope<S::Msg>>,
    outbox: Outbox<S::Msg>,
}

/// A slot the scheduler can hand to exactly one worker per epoch without
/// a lock.
///
/// Safety invariant: during the parallel phase of an epoch, each slot
/// index is claimed by exactly one thread (a contiguous range handed out
/// by an atomic cursor), so the `&mut` produced from the cell is unique.
/// Outside the parallel phase the scheduler only touches slots through
/// `&mut self` (exclusive) or hands out shared `&` references — and the
/// scheduler itself is `!Sync` (see the `PhantomData<std::cell::Cell<()>>`
/// marker), so those shared references never cross threads.
///
/// Cache-line aligned so adjacent slots in the scheduler's slot array
/// never share a line: during the parallel phase each slot's inbox/outbox
/// headers are written by the worker that claimed it, and an unaligned
/// array would false-share those writes between neighboring workers.
#[repr(align(64))]
struct SlotCell<S: Shard>(UnsafeCell<Slot<S>>);

// Safety: see the invariant on `SlotCell` — cross-thread access only ever
// happens with exclusive, cursor-partitioned ownership, and `S: Send`
// makes moving that access between threads sound.
unsafe impl<S: Shard> Sync for SlotCell<S> {}

/// The persistent worker pool: threads are spawned once, parked on a
/// condvar between epochs, and woken by publishing a job under the state
/// mutex. The mutex/condvar pair provides the acquire/release edges that
/// make the main thread's pre-epoch writes (staged inboxes) visible to
/// workers and the workers' writes visible back to the main thread.
struct PoolState {
    /// The current epoch's job, lifetime-erased. Only valid while
    /// `active > 0` or until [`WorkerPool::run`] returns.
    job: Option<&'static (dyn Fn() + Sync)>,
    /// Epoch generation counter; a worker runs one job per generation.
    generation: u64,
    /// Workers still executing the current generation's job.
    active: usize,
    /// Set by [`WorkerPool::drop`]; workers exit on wake.
    shutdown: bool,
    /// First panic payload caught in a worker this generation.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    /// Padded so the mutex word, which every worker hammers at epoch
    /// boundaries, does not share a line with the condvars.
    state: CachePadded<Mutex<PoolState>>,
    /// Main → workers: a new generation (or shutdown) is available.
    work: CachePadded<Condvar>,
    /// Workers → main: the last active worker finished.
    done: CachePadded<Condvar>,
}

struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: CachePadded::new(Mutex::new(PoolState {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
                panic: None,
            })),
            work: CachePadded::new(Condvar::new()),
            done: CachePadded::new(Condvar::new()),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let job = {
                            let mut st = shared.state.lock().expect("worker pool poisoned");
                            loop {
                                if st.shutdown {
                                    return;
                                }
                                if st.generation != seen {
                                    seen = st.generation;
                                    break st.job.expect("job published with its generation");
                                }
                                st = shared.work.wait(st).expect("worker pool poisoned");
                            }
                        };
                        let result = catch_unwind(AssertUnwindSafe(job));
                        let mut st = shared.state.lock().expect("worker pool poisoned");
                        if let Err(payload) = result {
                            st.panic.get_or_insert(payload);
                        }
                        st.active -= 1;
                        if st.active == 0 {
                            shared.done.notify_one();
                        }
                    }
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Pool threads (the calling thread participates on top of these).
    fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` on every pool worker *and* the calling thread, returning
    /// once all of them have finished. Propagates the first panic raised
    /// in any participant.
    fn run(&self, job: &(dyn Fn() + Sync)) {
        // Safety: pure lifetime erasure. We block below until every worker
        // has finished the generation, so no worker can observe `job`
        // after this call returns.
        let job_static: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(job) };
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            st.job = Some(job_static);
            st.generation += 1;
            st.active = self.handles.len();
            self.shared.work.notify_all();
        }
        // The main thread is a worker too; even if its share of the work
        // panics, it must wait for the pool before unwinding (workers may
        // still hold references into the caller's state).
        let main_result = catch_unwind(AssertUnwindSafe(job));
        let mut st = self.shared.state.lock().expect("worker pool poisoned");
        while st.active > 0 {
            st = self.shared.done.wait(st).expect("worker pool poisoned");
        }
        st.job = None;
        let worker_panic = st.panic.take();
        drop(st);
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Cumulative wall-clock breakdown of scheduler time by phase, in
/// nanoseconds, accumulated over every epoch since construction.
///
/// Timing is observational only — it never feeds back into the
/// simulation, so enabling it cannot perturb the deterministic trace.
/// Diff two snapshots of [`ShardScheduler::profile`] to attribute a
/// measured interval.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Staging: draining pending mailboxes into shard inboxes and
    /// sorting them into `(time, src, seq)` order.
    pub stage_ns: u64,
    /// Wall-clock span of the parallel phase (shard work *plus* the
    /// epoch barrier handshakes and any load imbalance).
    pub parallel_ns: u64,
    /// Summed busy time of every parallel-phase participant (pool
    /// workers and the calling thread): shard stepping plus outbox
    /// sorting. `parallel_ns × participants − busy_ns` approximates the
    /// time lost to the barrier and to uneven shard costs.
    pub busy_ns: u64,
    /// Routing: flushing sorted outbox runs into next-epoch mailboxes
    /// and the driver buffer, including the final driver-order sort.
    pub route_ns: u64,
    /// Epochs measured.
    pub epochs: u64,
}

impl PhaseProfile {
    /// Total scheduler wall-clock across the measured phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stage_ns + self.parallel_ns + self.route_ns
    }

    /// Phase-by-phase difference (`self − earlier`), for attributing a
    /// measured interval between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &PhaseProfile) -> PhaseProfile {
        PhaseProfile {
            stage_ns: self.stage_ns.saturating_sub(earlier.stage_ns),
            parallel_ns: self.parallel_ns.saturating_sub(earlier.parallel_ns),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            route_ns: self.route_ns.saturating_sub(earlier.route_ns),
            epochs: self.epochs.saturating_sub(earlier.epochs),
        }
    }
}

/// Lockstep scheduler over a set of [`Shard`]s.
///
/// Each [`ShardScheduler::step_epoch`] call advances every shard by one
/// window in parallel (over the configured worker count), then routes the
/// epoch's outbound messages into per-destination mailboxes for the next
/// epoch. Messages addressed to [`DRIVER`] are returned to the caller in
/// `(time, src, seq)` order.
///
/// The trace produced by a run is a pure function of the shards' initial
/// state and the injected inputs — the worker count changes wall-clock
/// time only.
///
/// After a panic propagated out of [`Shard::step`], the shards' state is
/// unspecified; the scheduler itself remains memory-safe to drop.
pub struct ShardScheduler<S: Shard> {
    slots: Vec<SlotCell<S>>,
    /// Staged deliveries for the next epoch, per destination shard.
    pending: Vec<Vec<Envelope<S::Msg>>>,
    pool: Option<WorkerPool>,
    /// Chunk-claim cursor for the parallel phase, reset each epoch.
    /// Padded: every worker increments it, and sharing its line with
    /// `busy` (or the scheduler's cold fields) would false-share the
    /// claim path.
    cursor: CachePadded<AtomicUsize>,
    /// Per-phase wall-clock accumulators (busy time lives in `busy`,
    /// which workers update concurrently).
    profile: PhaseProfile,
    /// Summed worker busy time; an atomic because every parallel-phase
    /// participant adds its own span. Padded away from `cursor`.
    busy: CachePadded<AtomicU64>,
    /// Scratch for the routing phase: `(dst, run_len)` pairs of the
    /// current outbox, reused across epochs.
    route_runs: Vec<(usize, usize)>,
    window: Duration,
    threads: usize,
    now: SimTime,
    epoch: u64,
    driver_seq: u64,
    routed: u64,
    /// Keeps the scheduler `!Sync`: `&self` accessors dereference the
    /// slot cells without locks, which is only sound single-threaded.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl<S: Shard> ShardScheduler<S> {
    /// Builds a scheduler over `shards` advancing `window` per epoch with
    /// `threads` workers. For `threads > 1`, `threads.min(shards) - 1`
    /// pool threads are spawned once, up front; the calling thread
    /// contributes the remaining worker during every epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::NoShards`], [`ShardError::ZeroWindow`], or
    /// [`ShardError::ZeroThreads`] on a degenerate configuration.
    pub fn new(shards: Vec<S>, window: Duration, threads: usize) -> Result<Self, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::NoShards);
        }
        if window == Duration::ZERO {
            return Err(ShardError::ZeroWindow);
        }
        if threads == 0 {
            return Err(ShardError::ZeroThreads);
        }
        let n = shards.len();
        let slots = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                SlotCell(UnsafeCell::new(Slot {
                    shard,
                    inbox: Vec::new(),
                    outbox: Outbox {
                        src: i,
                        seq: 0,
                        horizon: SimTime::ZERO,
                        staged: Vec::new(),
                    },
                }))
            })
            .collect();
        let pool_threads = threads.min(n).saturating_sub(1);
        let pool = (pool_threads > 0).then(|| WorkerPool::new(pool_threads));
        Ok(ShardScheduler {
            slots,
            pending: (0..n).map(|_| Vec::new()).collect(),
            pool,
            cursor: CachePadded::new(AtomicUsize::new(0)),
            profile: PhaseProfile::default(),
            busy: CachePadded::new(AtomicU64::new(0)),
            route_runs: Vec::new(),
            window,
            threads,
            now: SimTime::ZERO,
            epoch: 0,
            driver_seq: 0,
            routed: 0,
            _not_sync: PhantomData,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Current simulated time (the last epoch boundary).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Total cross-shard envelopes routed so far (driver traffic
    /// included).
    #[must_use]
    pub fn routed_messages(&self) -> u64 {
        self.routed
    }

    /// The configured epoch window.
    #[must_use]
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Persistent pool threads backing the parallel phase (zero when the
    /// scheduler runs single-threaded; the calling thread always works on
    /// top of these).
    #[must_use]
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::workers)
    }

    /// Cumulative per-phase wall-clock breakdown since construction.
    ///
    /// `busy_ns` sums every participant's in-phase work, so with `k`
    /// participants it may exceed `parallel_ns` only through clock
    /// skew — in practice `parallel_ns × k − busy_ns` is the barrier +
    /// imbalance overhead the profile exists to expose.
    #[must_use]
    pub fn profile(&self) -> PhaseProfile {
        let mut p = self.profile;
        p.busy_ns = self.busy.load(Ordering::Relaxed);
        p
    }

    /// Read access to one shard (between epochs).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        // Safety: `&self` access happens only between epochs, on the
        // scheduler's owning thread (the scheduler is `!Sync`), and
        // produces a shared reference only.
        let slot = unsafe { &*self.slots[i].0.get() };
        f(&slot.shard)
    }

    /// Mutable access to one shard (between epochs).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_shard_mut<R>(&mut self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.slots[i].0.get_mut().shard)
    }

    /// Applies `f` to every shard in index order (between epochs).
    pub fn for_each_shard<R>(&self, mut f: impl FnMut(usize, &S) -> R) -> Vec<R> {
        (0..self.slots.len())
            .map(|i| {
                // Safety: as in `with_shard`.
                let slot = unsafe { &*self.slots[i].0.get() };
                f(i, &slot.shard)
            })
            .collect()
    }

    /// Queues an input message from the driver for delivery to shard
    /// `dst` in the next epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::UnknownDestination`] for an out-of-range
    /// shard index and [`ShardError::InjectInPast`] if `time` precedes
    /// the current epoch boundary.
    pub fn inject(&mut self, dst: usize, time: SimTime, msg: S::Msg) -> Result<(), ShardError> {
        if dst >= self.slots.len() {
            return Err(ShardError::UnknownDestination {
                dst,
                shards: self.slots.len(),
            });
        }
        if time < self.now {
            return Err(ShardError::InjectInPast {
                time,
                now: self.now,
            });
        }
        let seq = self.driver_seq;
        self.driver_seq += 1;
        self.pending[dst].push(Envelope {
            time,
            src: DRIVER,
            seq,
            msg,
        });
        Ok(())
    }

    /// Runs one epoch of the configured window, allocating a fresh vector
    /// for the driver-bound envelopes. Prefer
    /// [`ShardScheduler::step_epoch_into`] on hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::UnknownDestination`] if a shard addressed a
    /// message to a shard index that does not exist (the epoch's state
    /// changes are kept; the offending message is dropped).
    ///
    /// # Panics
    ///
    /// Propagates panics from [`Shard::step`].
    pub fn step_epoch(&mut self) -> Result<Vec<Envelope<S::Msg>>, ShardError> {
        let mut out = Vec::new();
        let result = self.step_epoch_window_into(self.window, &mut out);
        result.map(|()| out)
    }

    /// Runs one epoch of the configured window, writing the driver-bound
    /// envelopes into `out` (cleared first) so the caller can reuse one
    /// buffer across epochs.
    ///
    /// # Errors
    ///
    /// As [`ShardScheduler::step_epoch`].
    pub fn step_epoch_into(&mut self, out: &mut Vec<Envelope<S::Msg>>) -> Result<(), ShardError> {
        self.step_epoch_window_into(self.window, out)
    }

    /// Runs one epoch of a caller-chosen `window` — the adaptive-window
    /// entry point. The caller asserts that no cross-shard message
    /// produced inside this epoch needs delivery before its end; the
    /// [`Outbox`] horizon check enforces the claim at send time.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::ZeroWindow`] for an empty window, otherwise
    /// as [`ShardScheduler::step_epoch`].
    ///
    /// # Panics
    ///
    /// Propagates panics from [`Shard::step`].
    pub fn step_epoch_window_into(
        &mut self,
        window: Duration,
        out: &mut Vec<Envelope<S::Msg>>,
    ) -> Result<(), ShardError> {
        if window == Duration::ZERO {
            return Err(ShardError::ZeroWindow);
        }
        let until = self.now + window;
        let n = self.slots.len();
        out.clear();

        // Stage inboxes: drain the pending mailboxes into the slots,
        // sorted by the total (time, src, seq) order. The key is unique
        // per envelope, so the unstable sort is exact.
        let t_stage = Instant::now();
        for (i, cell) in self.slots.iter_mut().enumerate() {
            let slot = cell.0.get_mut();
            debug_assert!(slot.inbox.is_empty(), "inbox not drained by step");
            std::mem::swap(&mut slot.inbox, &mut self.pending[i]);
            slot.inbox.sort_unstable_by_key(Envelope::key);
            slot.outbox.horizon = until;
        }
        self.profile.stage_ns += t_stage.elapsed().as_nanos() as u64;

        // Parallel phase: shards are independent within an epoch, so any
        // assignment of shards to workers computes the same result. Each
        // worker also sorts its shards' staged outboxes by (dst, key) on
        // the way out, so the sequential routing phase below sees
        // contiguous per-destination runs — the sort cost parallelizes,
        // the flush does not.
        let t_par = Instant::now();
        match &self.pool {
            None => {
                for cell in &mut self.slots {
                    let slot = cell.0.get_mut();
                    let mut inbox = std::mem::take(&mut slot.inbox);
                    slot.shard.step(until, &mut inbox, &mut slot.outbox);
                    inbox.clear();
                    slot.inbox = inbox; // return the buffer for reuse
                    slot.outbox
                        .staged
                        .sort_unstable_by_key(|(dst, env)| (*dst, env.key()));
                }
                self.busy
                    .fetch_add(t_par.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            Some(pool) => {
                let workers = pool.workers() + 1;
                // ~4 chunks per worker balances load against cursor
                // contention; any chunking computes the same trace.
                let chunk = n.div_ceil(workers * 4).max(1);
                self.cursor.store(0, Ordering::Relaxed);
                let cursor = &self.cursor;
                let slots = &self.slots[..];
                let busy = &self.busy;
                pool.run(&move || {
                    let t_busy = Instant::now();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for cell in &slots[start..(start + chunk).min(n)] {
                            // Safety: this index range was claimed exclusively
                            // off the cursor; no other thread touches it this
                            // epoch.
                            let slot = unsafe { &mut *cell.0.get() };
                            let mut inbox = std::mem::take(&mut slot.inbox);
                            slot.shard.step(until, &mut inbox, &mut slot.outbox);
                            inbox.clear();
                            slot.inbox = inbox;
                            slot.outbox
                                .staged
                                .sort_unstable_by_key(|(dst, env)| (*dst, env.key()));
                        }
                    }
                    busy.fetch_add(t_busy.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        }
        self.profile.parallel_ns += t_par.elapsed().as_nanos() as u64;

        // Sequential routing phase, in shard index order: deterministic
        // regardless of which worker ran which shard. Every staged outbox
        // is already (dst, key)-sorted, so each destination is one
        // contiguous run that flushes with a single sized extend instead
        // of a per-message dispatch. Append order into a mailbox is
        // non-semantic — `pending` is key-sorted at the next staging and
        // `out` below — so batching by destination cannot change the
        // trace. (With several misaddressed destinations in one epoch the
        // reported one is now the smallest rather than the first sent;
        // the drop-and-keep-state contract is unchanged.)
        let t_route = Instant::now();
        let mut bad_dst: Option<ShardError> = None;
        for cell in &mut self.slots {
            let slot = cell.0.get_mut();
            let staged = &mut slot.outbox.staged;
            if staged.is_empty() {
                continue;
            }
            self.routed += staged.len() as u64;
            self.route_runs.clear();
            let mut start = 0;
            while start < staged.len() {
                let dst = staged[start].0;
                let mut end = start + 1;
                while end < staged.len() && staged[end].0 == dst {
                    end += 1;
                }
                self.route_runs.push((dst, end - start));
                start = end;
            }
            let mut drained = staged.drain(..);
            for &(dst, len) in &self.route_runs {
                let run = drained.by_ref().take(len).map(|(_, env)| env);
                if dst == DRIVER {
                    out.extend(run);
                } else if dst < n {
                    self.pending[dst].extend(run);
                } else {
                    run.for_each(drop);
                    bad_dst.get_or_insert(ShardError::UnknownDestination { dst, shards: n });
                }
            }
        }
        out.sort_unstable_by_key(Envelope::key);
        self.profile.route_ns += t_route.elapsed().as_nanos() as u64;
        self.profile.epochs += 1;

        self.now = until;
        self.epoch += 1;
        match bad_dst {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Consumes the scheduler, returning the shards in index order.
    #[must_use]
    pub fn into_shards(self) -> Vec<S> {
        self.slots
            .into_iter()
            .map(|cell| cell.0.into_inner().shard)
            .collect()
    }
}

impl<S: Shard> std::fmt::Debug for ShardScheduler<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardScheduler")
            .field("shards", &self.slots.len())
            .field("window", &self.window)
            .field("threads", &self.threads)
            .field("pool_workers", &self.pool_workers())
            .field("now", &self.now)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Test shard: accumulates received values, adds per-shard random
    /// jitter, and forwards to the next shard in a ring plus a running
    /// checksum to the driver — enough structure to catch ordering or
    /// stream-sharing bugs.
    struct RingShard {
        index: usize,
        n: usize,
        rng: SimRng,
        sum: u64,
        log: Vec<(u64, usize, u64)>,
    }

    impl RingShard {
        fn new(index: usize, n: usize, master: u64) -> Self {
            RingShard {
                index,
                n,
                rng: SimRng::seed_from(stream_seed(master, index as u64)),
                sum: 0,
                log: Vec::new(),
            }
        }
    }

    impl Shard for RingShard {
        type Msg = u64;

        fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<u64>>, outbox: &mut Outbox<u64>) {
            for env in inbox.drain(..) {
                self.log.push((env.time.ticks(), env.src, env.msg));
                let jitter = self.rng.uniform_usize(7) as u64;
                self.sum = self.sum.wrapping_add(env.msg + jitter);
                outbox.send((self.index + 1) % self.n, until, env.msg + 1);
                outbox.send(DRIVER, until, self.sum);
            }
        }
    }

    type RingTrace = Vec<(u64, usize, u64)>;

    fn run_ring(threads: usize, epochs: usize) -> (Vec<RingTrace>, RingTrace) {
        let shards: Vec<RingShard> = (0..5).map(|i| RingShard::new(i, 5, 99)).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), threads).unwrap();
        sched.inject(0, SimTime::from_ticks(0), 100).unwrap();
        sched.inject(3, SimTime::from_ticks(0), 500).unwrap();
        let mut driver: Vec<(u64, usize, u64)> = Vec::new();
        let mut out = Vec::new();
        for _ in 0..epochs {
            sched.step_epoch_into(&mut out).unwrap();
            for env in out.drain(..) {
                driver.push((env.time.ticks(), env.src, env.msg));
            }
        }
        let logs = sched.into_shards().into_iter().map(|s| s.log).collect();
        (logs, driver)
    }

    #[test]
    fn identical_across_thread_counts() {
        let reference = run_ring(1, 12);
        for threads in [2, 4, 8] {
            assert_eq!(run_ring(threads, 12), reference, "threads={threads}");
        }
    }

    #[test]
    fn driver_messages_sorted_by_time_src_seq() {
        let (_, driver) = run_ring(4, 8);
        let mut sorted = driver.clone();
        sorted.sort();
        assert_eq!(driver, sorted);
        assert!(!driver.is_empty());
    }

    #[test]
    fn messages_cross_one_epoch_boundary() {
        // A message sent during epoch k is visible to its destination in
        // epoch k+1, not earlier: shard 1 first logs something in epoch 2
        // (injection lands in epoch 1 at shard 0).
        let (logs, _) = run_ring(1, 3);
        assert_eq!(logs[0][0].0, 0, "shard 0 sees the injected message at t=0");
        assert_eq!(logs[1][0].0, 10, "shard 1 hears from shard 0 one window later");
        assert_eq!(logs[2][0].0, 20, "shard 2 two windows later");
    }

    #[test]
    fn stream_seed_is_order_free_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| stream_seed(7, i)).collect();
        let b: Vec<u64> = (0..64).rev().map(|i| stream_seed(7, i)).collect();
        let b_rev: Vec<u64> = b.into_iter().rev().collect();
        assert_eq!(a, b_rev);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "derived seeds must not collide");
    }

    #[test]
    fn rejects_degenerate_configs() {
        let none: Vec<RingShard> = Vec::new();
        assert_eq!(
            ShardScheduler::new(none, Duration::from_ticks(1), 1).err(),
            Some(ShardError::NoShards)
        );
        let one = vec![RingShard::new(0, 1, 0)];
        assert_eq!(
            ShardScheduler::new(one, Duration::ZERO, 1).err(),
            Some(ShardError::ZeroWindow)
        );
        let one = vec![RingShard::new(0, 1, 0)];
        assert_eq!(
            ShardScheduler::new(one, Duration::from_ticks(1), 0).err(),
            Some(ShardError::ZeroThreads)
        );
    }

    #[test]
    fn inject_validates_destination_and_time() {
        let shards = vec![RingShard::new(0, 1, 0)];
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 1).unwrap();
        assert_eq!(
            sched.inject(5, SimTime::from_ticks(0), 1).err(),
            Some(ShardError::UnknownDestination { dst: 5, shards: 1 })
        );
        sched.step_epoch().unwrap();
        assert_eq!(
            sched.inject(0, SimTime::from_ticks(3), 1).err(),
            Some(ShardError::InjectInPast {
                time: SimTime::from_ticks(3),
                now: SimTime::from_ticks(10),
            })
        );
        // Error messages render.
        assert!(ShardError::ZeroWindow.to_string().contains("window"));
        assert!(ShardError::NoShards.to_string().contains("shard"));
    }

    /// A shard that advances a local counter and misaddresses one message
    /// per epoch — used to pin down the drop-and-keep-state contract.
    struct BadDst {
        steps: u64,
    }

    impl Shard for BadDst {
        type Msg = ();
        fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<()>>, outbox: &mut Outbox<()>) {
            inbox.clear();
            self.steps += 1;
            outbox.send(7, until, ());
        }
    }

    #[test]
    fn unknown_destination_from_shard_is_reported() {
        let mut sched =
            ShardScheduler::new(vec![BadDst { steps: 0 }], Duration::from_ticks(1), 1).unwrap();
        assert_eq!(
            sched.step_epoch().err(),
            Some(ShardError::UnknownDestination { dst: 7, shards: 1 })
        );
    }

    #[test]
    fn unknown_destination_drops_message_but_keeps_epoch_state() {
        let mut sched =
            ShardScheduler::new(vec![BadDst { steps: 0 }], Duration::from_ticks(10), 1).unwrap();
        for epoch in 1..=3u64 {
            assert_eq!(
                sched.step_epoch().err(),
                Some(ShardError::UnknownDestination { dst: 7, shards: 1 }),
                "epoch {epoch}"
            );
            // The epoch's work is kept: time, epoch count, and shard
            // state all advanced; only the misaddressed envelope is gone.
            assert_eq!(sched.now(), SimTime::from_ticks(10 * epoch));
            assert_eq!(sched.epochs(), epoch);
            assert_eq!(sched.with_shard(0, |s| s.steps), epoch);
        }
        // Nothing leaked into a mailbox.
        assert_eq!(sched.routed_messages(), 3);
    }

    /// One shard spraying a driver message, a valid self-send, and a
    /// misaddressed message in the same epoch: the batched flush must
    /// drop exactly the bad run and deliver the rest.
    struct MixedDst {
        received: u64,
    }

    impl Shard for MixedDst {
        type Msg = u64;
        fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<u64>>, outbox: &mut Outbox<u64>) {
            self.received += inbox.len() as u64;
            inbox.clear();
            outbox.send(9, until, 1); // misaddressed
            outbox.send(DRIVER, until, 2);
            outbox.send(0, until, 3); // valid self-send
        }
    }

    #[test]
    fn unknown_destination_run_drops_only_its_own_messages() {
        let mut sched =
            ShardScheduler::new(vec![MixedDst { received: 0 }], Duration::from_ticks(10), 1)
                .unwrap();
        let mut out = Vec::new();
        assert_eq!(
            sched.step_epoch_into(&mut out).err(),
            Some(ShardError::UnknownDestination { dst: 9, shards: 1 })
        );
        assert_eq!(out.len(), 1, "driver message survives the bad sibling run");
        assert_eq!(out[0].msg, 2);
        assert_eq!(
            sched.step_epoch_into(&mut out).err(),
            Some(ShardError::UnknownDestination { dst: 9, shards: 1 })
        );
        assert_eq!(
            sched.with_shard(0, |s| s.received),
            1,
            "the valid self-send was delivered next epoch"
        );
        assert_eq!(sched.routed_messages(), 6);
    }

    #[test]
    fn profile_accumulates_per_phase_time() {
        let shards: Vec<RingShard> = (0..5).map(|i| RingShard::new(i, 5, 99)).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 2).unwrap();
        assert_eq!(sched.profile(), PhaseProfile::default());
        sched.inject(0, SimTime::from_ticks(0), 100).unwrap();
        sched.step_epoch().unwrap();
        let after_one = sched.profile();
        assert_eq!(after_one.epochs, 1);
        sched.step_epoch().unwrap();
        sched.step_epoch().unwrap();
        let after_three = sched.profile();
        assert_eq!(after_three.epochs, 3);
        // Accumulators are monotonic, the diff helper attributes the gap.
        let delta = after_three.since(&after_one);
        assert_eq!(delta.epochs, 2);
        assert!(after_three.stage_ns >= after_one.stage_ns);
        assert!(after_three.parallel_ns >= after_one.parallel_ns);
        assert!(after_three.busy_ns >= after_one.busy_ns);
        assert!(after_three.route_ns >= after_one.route_ns);
        assert!(after_three.total_ns() >= after_three.parallel_ns);
        // Three epochs of real shard work register as busy time.
        assert!(after_three.busy_ns > 0, "parallel participants report busy time");
    }

    #[test]
    #[should_panic(expected = "conservative bound violated")]
    fn outbox_rejects_messages_before_horizon() {
        struct Early;
        impl Shard for Early {
            type Msg = ();
            fn step(&mut self, _until: SimTime, _inbox: &mut Vec<Envelope<()>>, outbox: &mut Outbox<()>) {
                outbox.send(0, SimTime::ZERO, ());
            }
        }
        let mut sched = ShardScheduler::new(vec![Early], Duration::from_ticks(10), 1).unwrap();
        let _ = sched.step_epoch();
    }

    #[test]
    fn driver_messages_may_precede_the_horizon() {
        // The driver consumes its mailbox after the epoch, so a mid-epoch
        // timestamp (e.g. a decision time) is legal and preserved.
        struct MidEpoch;
        impl Shard for MidEpoch {
            type Msg = u64;
            fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<u64>>, outbox: &mut Outbox<u64>) {
                inbox.clear();
                outbox.send(DRIVER, SimTime::from_ticks(until.ticks() - 5), 1);
            }
        }
        let mut sched = ShardScheduler::new(vec![MidEpoch], Duration::from_ticks(10), 1).unwrap();
        let out = sched.step_epoch().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, SimTime::from_ticks(5));
    }

    #[test]
    #[should_panic(expected = "boom in shard 2")]
    fn worker_panic_propagates_to_the_caller() {
        struct Bomb {
            index: usize,
        }
        impl Shard for Bomb {
            type Msg = ();
            fn step(&mut self, _until: SimTime, inbox: &mut Vec<Envelope<()>>, _outbox: &mut Outbox<()>) {
                inbox.clear();
                assert!(self.index != 2, "boom in shard {}", self.index);
            }
        }
        let shards: Vec<Bomb> = (0..4).map(|index| Bomb { index }).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(1), 4).unwrap();
        let _ = sched.step_epoch();
    }

    #[test]
    fn pool_runs_job_on_every_worker_and_the_caller() {
        let pool = WorkerPool::new(2);
        let runs = AtomicUsize::new(0);
        for round in 1..=3usize {
            pool.run(&|| {
                runs.fetch_add(1, Ordering::Relaxed);
            });
            // 2 pool workers + the calling thread, every round — the same
            // barrier is reused, not respawned.
            assert_eq!(runs.load(Ordering::Relaxed), 3 * round);
        }
    }

    #[test]
    fn pool_shutdown_on_drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        let weak = Arc::downgrade(&pool.shared);
        pool.run(&|| {});
        drop(pool);
        // Drop joins every worker; each worker's Arc clone is gone.
        assert_eq!(weak.strong_count(), 0, "workers must exit and drop their handles");
    }

    #[test]
    fn epoch_barrier_reused_across_consecutive_epochs() {
        let shards: Vec<RingShard> = (0..5).map(|i| RingShard::new(i, 5, 99)).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 4).unwrap();
        sched.inject(0, SimTime::from_ticks(0), 100).unwrap();
        let workers = sched.pool_workers();
        assert_eq!(workers, 3, "threads=4 ⇒ 3 pool threads + the caller");
        for epoch in 1..=4u64 {
            sched.step_epoch().unwrap();
            assert_eq!(sched.epochs(), epoch);
            assert_eq!(sched.pool_workers(), workers, "no respawn between epochs");
        }
    }

    #[test]
    fn single_thread_spawns_no_pool() {
        let shards = vec![RingShard::new(0, 1, 0)];
        let sched = ShardScheduler::new(shards, Duration::from_ticks(10), 1).unwrap();
        assert_eq!(sched.pool_workers(), 0);
    }

    #[test]
    fn custom_windows_advance_time_and_deliver_across_epochs() {
        fn run(windows: &[u64]) -> (Vec<RingTrace>, RingTrace) {
            let shards: Vec<RingShard> = (0..5).map(|i| RingShard::new(i, 5, 99)).collect();
            let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 2).unwrap();
            sched.inject(0, SimTime::from_ticks(0), 100).unwrap();
            sched.inject(3, SimTime::from_ticks(0), 500).unwrap();
            let mut driver = Vec::new();
            let mut out = Vec::new();
            for &w in windows {
                sched
                    .step_epoch_window_into(Duration::from_ticks(w), &mut out)
                    .unwrap();
                for env in out.drain(..) {
                    driver.push((env.time.ticks(), env.src, env.msg));
                }
            }
            assert_eq!(sched.now().ticks(), windows.iter().sum::<u64>());
            (sched.into_shards().into_iter().map(|s| s.log).collect(), driver)
        }
        // The ring forwards one hop per epoch regardless of window width,
        // so the per-shard payload sequence is window-independent (only
        // the timestamps stretch).
        let (logs_narrow, _) = run(&[10, 10, 10, 10]);
        let (logs_wide, _) = run(&[40, 5, 25, 10]);
        let strip = |logs: Vec<RingTrace>| -> Vec<Vec<(usize, u64)>> {
            logs.into_iter()
                .map(|l| l.into_iter().map(|(_, src, msg)| (src, msg)).collect())
                .collect()
        };
        assert_eq!(strip(logs_narrow), strip(logs_wide));
    }

    #[test]
    fn zero_custom_window_is_rejected() {
        let shards = vec![RingShard::new(0, 1, 0)];
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 1).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            sched.step_epoch_window_into(Duration::ZERO, &mut out).err(),
            Some(ShardError::ZeroWindow)
        );
        assert_eq!(sched.epochs(), 0, "a rejected window must not tick the epoch");
    }

    #[test]
    fn bookkeeping_counters_advance() {
        let shards: Vec<RingShard> = (0..3).map(|i| RingShard::new(i, 3, 1)).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 2).unwrap();
        assert_eq!(sched.shard_count(), 3);
        assert_eq!(sched.threads(), 2);
        assert_eq!(sched.window(), Duration::from_ticks(10));
        sched.inject(0, SimTime::ZERO, 1).unwrap();
        sched.step_epoch().unwrap();
        sched.step_epoch().unwrap();
        assert_eq!(sched.epochs(), 2);
        assert_eq!(sched.now(), SimTime::from_ticks(20));
        assert!(sched.routed_messages() >= 2);
        let sums = sched.for_each_shard(|_, s| s.sum);
        assert_eq!(sums.len(), 3);
        assert_eq!(sched.with_shard(1, |s| s.index), 1);
    }
}
