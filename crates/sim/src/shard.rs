//! Conservative window-synchronized shard scheduler.
//!
//! Large fields decompose into nearly independent shards (one per
//! cluster, or per cluster group) that only couple through messages near
//! shard borders and through periodic control traffic. This module
//! provides the execution substrate for running such shards in parallel
//! **without giving up bit-for-bit reproducibility**:
//!
//! * every shard owns its own state, event queue, and RNG stream (derive
//!   the stream seed with [`stream_seed`] so it depends only on the
//!   master seed and the shard index, never on scheduling order);
//! * shards advance in lockstep *epochs* of a fixed window `W`, chosen no
//!   larger than the minimum cross-shard latency, so anything a shard
//!   sends during epoch `k` can only matter to its peers in epoch `k+1`
//!   (the classic conservative-synchronization bound);
//! * cross-shard traffic travels in [`Envelope`]s through per-destination
//!   mailboxes that are drained in `(time, src, seq)` order — a total
//!   order that does not depend on which worker thread ran which shard,
//!   so the merged trace is identical for any thread count.
//!
//! The scheduler never inspects message payloads; domain logic lives in
//! the [`Shard`] implementation (see `tibfit-experiments::sharded` for
//! the multi-cluster TIBFIT wiring).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::clock::{Duration, SimTime};

/// Derives the RNG stream seed for one shard (or any numbered stream)
/// from a master seed.
///
/// The derivation is a pure function of `(master, stream)` — two
/// SplitMix64-style avalanche rounds over the pair — so it is independent
/// of the order in which streams are created and of how work is
/// scheduled. Distinct `(master, stream)` pairs produce decorrelated
/// seeds even for adjacent indices.
///
/// ```rust
/// use tibfit_sim::shard::stream_seed;
/// assert_eq!(stream_seed(42, 3), stream_seed(42, 3));
/// assert_ne!(stream_seed(42, 3), stream_seed(42, 4));
/// assert_ne!(stream_seed(42, 3), stream_seed(43, 3));
/// ```
#[must_use]
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Second round decorrelates (master, stream) from (master^1, stream^1)
    // style near-collisions.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pseudo-shard index used for messages to and from the driver (the
/// base station in the TIBFIT wiring): [`ShardScheduler::inject`] stamps
/// this as `src`, and outbound messages sent to this index are returned
/// from [`ShardScheduler::step_epoch`] instead of being delivered to a
/// shard.
pub const DRIVER: usize = usize::MAX;

/// One cross-shard message: payload plus the `(time, src, seq)` key that
/// totally orders deliveries into a mailbox.
///
/// `seq` is a per-sender monotonic counter, so two envelopes from the
/// same sender never compare equal and the sort below is a total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated delivery time.
    pub time: SimTime,
    /// Sending shard index ([`DRIVER`] for injected input).
    pub src: usize,
    /// Per-sender monotonic sequence number.
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    fn key(&self) -> (SimTime, usize, u64) {
        (self.time, self.src, self.seq)
    }
}

/// Staging area a shard writes its outbound messages into during
/// [`Shard::step`]. The scheduler stamps `src` and `seq` and enforces the
/// conservative horizon: a message may not be timestamped before the end
/// of the epoch that produced it (it could not be delivered in time).
#[derive(Debug)]
pub struct Outbox<M> {
    src: usize,
    seq: u64,
    horizon: SimTime,
    staged: Vec<(usize, Envelope<M>)>,
}

impl<M> Outbox<M> {
    /// Queues `msg` for shard `dst` (or [`DRIVER`]) at simulated time
    /// `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current epoch's end — such a
    /// message would violate the conservative window bound (the receiver
    /// may already have advanced past `time`).
    pub fn send(&mut self, dst: usize, time: SimTime, msg: M) {
        assert!(
            time >= self.horizon,
            "conservative bound violated: message at {time} from shard {} \
             cannot precede the epoch horizon {}",
            self.src,
            self.horizon
        );
        let seq = self.seq;
        self.seq += 1;
        self.staged.push((
            dst,
            Envelope {
                time,
                src: self.src,
                seq,
                msg,
            },
        ));
    }

    /// Number of messages staged so far this epoch.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

/// One independently steppable partition of the simulation.
///
/// `step` must advance local state from the previous epoch boundary to
/// `until`, consuming `inbox` (already sorted by `(time, src, seq)`) and
/// staging any cross-shard messages in `outbox`. Determinism contract:
/// the result of `step` may depend only on the shard's own state and the
/// inbox contents — never on global mutable state, wall-clock time, or
/// the behaviour of sibling shards within the same epoch.
pub trait Shard: Send {
    /// Cross-shard message payload.
    type Msg: Send;

    /// Advances the shard to `until`.
    fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<Self::Msg>>, outbox: &mut Outbox<Self::Msg>);
}

/// Why a [`ShardScheduler`] could not be built or driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The scheduler needs at least one shard.
    NoShards,
    /// The epoch window must be a positive duration.
    ZeroWindow,
    /// At least one worker thread is required.
    ZeroThreads,
    /// A message was addressed to a shard index that does not exist.
    UnknownDestination {
        /// The offending destination index.
        dst: usize,
        /// Number of shards in the scheduler.
        shards: usize,
    },
    /// An injected message was timestamped before the current epoch
    /// boundary and could never be delivered on time.
    InjectInPast {
        /// The requested delivery time.
        time: SimTime,
        /// The scheduler's current time.
        now: SimTime,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "need at least one shard"),
            ShardError::ZeroWindow => write!(f, "epoch window must be positive"),
            ShardError::ZeroThreads => write!(f, "need at least one worker thread"),
            ShardError::UnknownDestination { dst, shards } => {
                write!(f, "message addressed to shard {dst}, but only {shards} shards exist")
            }
            ShardError::InjectInPast { time, now } => {
                write!(f, "cannot inject a message at {time}: scheduler already at {now}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Per-shard slot: the shard itself plus its epoch-local work buffers,
/// behind one lock so a worker pays a single acquisition per shard per
/// epoch.
struct Slot<S: Shard> {
    shard: S,
    inbox: Vec<Envelope<S::Msg>>,
    outbox: Outbox<S::Msg>,
}

/// Lockstep scheduler over a set of [`Shard`]s.
///
/// Each [`ShardScheduler::step_epoch`] call advances every shard by one
/// window in parallel (over the configured worker count), then routes the
/// epoch's outbound messages into per-destination mailboxes for the next
/// epoch. Messages addressed to [`DRIVER`] are returned to the caller in
/// `(time, src, seq)` order.
///
/// The trace produced by a run is a pure function of the shards' initial
/// state and the injected inputs — the worker count changes wall-clock
/// time only.
pub struct ShardScheduler<S: Shard> {
    slots: Vec<Mutex<Slot<S>>>,
    /// Staged deliveries for the next epoch, per destination shard.
    pending: Vec<Vec<Envelope<S::Msg>>>,
    window: Duration,
    threads: usize,
    now: SimTime,
    epoch: u64,
    driver_seq: u64,
    routed: u64,
}

impl<S: Shard> ShardScheduler<S> {
    /// Builds a scheduler over `shards` advancing `window` per epoch with
    /// `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::NoShards`], [`ShardError::ZeroWindow`], or
    /// [`ShardError::ZeroThreads`] on a degenerate configuration.
    pub fn new(shards: Vec<S>, window: Duration, threads: usize) -> Result<Self, ShardError> {
        if shards.is_empty() {
            return Err(ShardError::NoShards);
        }
        if window == Duration::ZERO {
            return Err(ShardError::ZeroWindow);
        }
        if threads == 0 {
            return Err(ShardError::ZeroThreads);
        }
        let n = shards.len();
        let slots = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                Mutex::new(Slot {
                    shard,
                    inbox: Vec::new(),
                    outbox: Outbox {
                        src: i,
                        seq: 0,
                        horizon: SimTime::ZERO,
                        staged: Vec::new(),
                    },
                })
            })
            .collect();
        Ok(ShardScheduler {
            slots,
            pending: (0..n).map(|_| Vec::new()).collect(),
            window,
            threads,
            now: SimTime::ZERO,
            epoch: 0,
            driver_seq: 0,
            routed: 0,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Current simulated time (the last epoch boundary).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Total cross-shard envelopes routed so far (driver traffic
    /// included).
    #[must_use]
    pub fn routed_messages(&self) -> u64 {
        self.routed
    }

    /// The configured epoch window.
    #[must_use]
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Read access to one shard (between epochs).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or a worker panicked mid-epoch.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        let slot = self.slots[i].lock().expect("shard slot poisoned");
        f(&slot.shard)
    }

    /// Mutable access to one shard (between epochs).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or a worker panicked mid-epoch.
    pub fn with_shard_mut<R>(&mut self, i: usize, f: impl FnOnce(&mut S) -> R) -> R {
        let slot = self.slots[i].get_mut().expect("shard slot poisoned");
        f(&mut slot.shard)
    }

    /// Applies `f` to every shard in index order (between epochs).
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked mid-epoch.
    pub fn for_each_shard<R>(&self, mut f: impl FnMut(usize, &S) -> R) -> Vec<R> {
        (0..self.slots.len())
            .map(|i| {
                let slot = self.slots[i].lock().expect("shard slot poisoned");
                f(i, &slot.shard)
            })
            .collect()
    }

    /// Queues an input message from the driver for delivery to shard
    /// `dst` in the next epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::UnknownDestination`] for an out-of-range
    /// shard index and [`ShardError::InjectInPast`] if `time` precedes
    /// the current epoch boundary.
    pub fn inject(&mut self, dst: usize, time: SimTime, msg: S::Msg) -> Result<(), ShardError> {
        if dst >= self.slots.len() {
            return Err(ShardError::UnknownDestination {
                dst,
                shards: self.slots.len(),
            });
        }
        if time < self.now {
            return Err(ShardError::InjectInPast {
                time,
                now: self.now,
            });
        }
        let seq = self.driver_seq;
        self.driver_seq += 1;
        self.pending[dst].push(Envelope {
            time,
            src: DRIVER,
            seq,
            msg,
        });
        Ok(())
    }

    /// Runs one epoch: delivers staged mailboxes, steps every shard to
    /// `now + window` (in parallel), routes the new outbound messages,
    /// and returns the driver-bound envelopes in `(time, src, seq)`
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::UnknownDestination`] if a shard addressed a
    /// message to a shard index that does not exist (the epoch's state
    /// changes are kept; the offending message is dropped).
    ///
    /// # Panics
    ///
    /// Propagates panics from [`Shard::step`].
    pub fn step_epoch(&mut self) -> Result<Vec<Envelope<S::Msg>>, ShardError> {
        let until = self.now + self.window;
        let n = self.slots.len();

        // Stage inboxes: drain the pending mailboxes into the slots,
        // sorted by the total (time, src, seq) order.
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let slot = slot.get_mut().expect("shard slot poisoned");
            debug_assert!(slot.inbox.is_empty(), "inbox not drained by step");
            std::mem::swap(&mut slot.inbox, &mut self.pending[i]);
            slot.inbox.sort_by_key(Envelope::key);
            slot.outbox.horizon = until;
        }

        // Parallel phase: shards are independent within an epoch, so any
        // assignment of shards to workers computes the same result.
        let workers = self.threads.min(n);
        if workers <= 1 {
            for slot in &mut self.slots {
                let slot = slot.get_mut().expect("shard slot poisoned");
                let mut inbox = std::mem::take(&mut slot.inbox);
                slot.shard.step(until, &mut inbox, &mut slot.outbox);
                inbox.clear();
                slot.inbox = inbox; // return the buffer for reuse
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots = &self.slots;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().expect("shard slot poisoned");
                        let slot = &mut *guard;
                        let mut inbox = std::mem::take(&mut slot.inbox);
                        slot.shard.step(until, &mut inbox, &mut slot.outbox);
                        inbox.clear();
                        slot.inbox = inbox;
                    });
                }
            });
        }

        // Sequential routing phase, in shard index order: deterministic
        // regardless of which worker ran which shard.
        let mut driver_out: Vec<Envelope<S::Msg>> = Vec::new();
        let mut bad_dst: Option<ShardError> = None;
        for slot in &mut self.slots {
            let slot = slot.get_mut().expect("shard slot poisoned");
            for (dst, env) in slot.outbox.staged.drain(..) {
                self.routed += 1;
                if dst == DRIVER {
                    driver_out.push(env);
                } else if dst < n {
                    self.pending[dst].push(env);
                } else {
                    bad_dst.get_or_insert(ShardError::UnknownDestination { dst, shards: n });
                }
            }
        }
        driver_out.sort_by_key(Envelope::key);

        self.now = until;
        self.epoch += 1;
        match bad_dst {
            Some(e) => Err(e),
            None => Ok(driver_out),
        }
    }

    /// Consumes the scheduler, returning the shards in index order.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked mid-epoch.
    #[must_use]
    pub fn into_shards(self) -> Vec<S> {
        self.slots
            .into_iter()
            .map(|m| m.into_inner().expect("shard slot poisoned").shard)
            .collect()
    }
}

impl<S: Shard> std::fmt::Debug for ShardScheduler<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardScheduler")
            .field("shards", &self.slots.len())
            .field("window", &self.window)
            .field("threads", &self.threads)
            .field("now", &self.now)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Test shard: accumulates received values, adds per-shard random
    /// jitter, and forwards to the next shard in a ring plus a running
    /// checksum to the driver — enough structure to catch ordering or
    /// stream-sharing bugs.
    struct RingShard {
        index: usize,
        n: usize,
        rng: SimRng,
        sum: u64,
        log: Vec<(u64, usize, u64)>,
    }

    impl RingShard {
        fn new(index: usize, n: usize, master: u64) -> Self {
            RingShard {
                index,
                n,
                rng: SimRng::seed_from(stream_seed(master, index as u64)),
                sum: 0,
                log: Vec::new(),
            }
        }
    }

    impl Shard for RingShard {
        type Msg = u64;

        fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<u64>>, outbox: &mut Outbox<u64>) {
            for env in inbox.drain(..) {
                self.log.push((env.time.ticks(), env.src, env.msg));
                let jitter = self.rng.uniform_usize(7) as u64;
                self.sum = self.sum.wrapping_add(env.msg + jitter);
                outbox.send((self.index + 1) % self.n, until, env.msg + 1);
                outbox.send(DRIVER, until, self.sum);
            }
        }
    }

    type RingTrace = Vec<(u64, usize, u64)>;

    fn run_ring(threads: usize, epochs: usize) -> (Vec<RingTrace>, RingTrace) {
        let shards: Vec<RingShard> = (0..5).map(|i| RingShard::new(i, 5, 99)).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), threads).unwrap();
        sched.inject(0, SimTime::from_ticks(0), 100).unwrap();
        sched.inject(3, SimTime::from_ticks(0), 500).unwrap();
        let mut driver: Vec<(u64, usize, u64)> = Vec::new();
        for _ in 0..epochs {
            for env in sched.step_epoch().unwrap() {
                driver.push((env.time.ticks(), env.src, env.msg));
            }
        }
        let logs = sched.into_shards().into_iter().map(|s| s.log).collect();
        (logs, driver)
    }

    #[test]
    fn identical_across_thread_counts() {
        let reference = run_ring(1, 12);
        for threads in [2, 4, 8] {
            assert_eq!(run_ring(threads, 12), reference, "threads={threads}");
        }
    }

    #[test]
    fn driver_messages_sorted_by_time_src_seq() {
        let (_, driver) = run_ring(4, 8);
        let mut sorted = driver.clone();
        sorted.sort();
        assert_eq!(driver, sorted);
        assert!(!driver.is_empty());
    }

    #[test]
    fn messages_cross_one_epoch_boundary() {
        // A message sent during epoch k is visible to its destination in
        // epoch k+1, not earlier: shard 1 first logs something in epoch 2
        // (injection lands in epoch 1 at shard 0).
        let (logs, _) = run_ring(1, 3);
        assert_eq!(logs[0][0].0, 0, "shard 0 sees the injected message at t=0");
        assert_eq!(logs[1][0].0, 10, "shard 1 hears from shard 0 one window later");
        assert_eq!(logs[2][0].0, 20, "shard 2 two windows later");
    }

    #[test]
    fn stream_seed_is_order_free_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| stream_seed(7, i)).collect();
        let b: Vec<u64> = (0..64).rev().map(|i| stream_seed(7, i)).collect();
        let b_rev: Vec<u64> = b.into_iter().rev().collect();
        assert_eq!(a, b_rev);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "derived seeds must not collide");
    }

    #[test]
    fn rejects_degenerate_configs() {
        let none: Vec<RingShard> = Vec::new();
        assert_eq!(
            ShardScheduler::new(none, Duration::from_ticks(1), 1).err(),
            Some(ShardError::NoShards)
        );
        let one = vec![RingShard::new(0, 1, 0)];
        assert_eq!(
            ShardScheduler::new(one, Duration::ZERO, 1).err(),
            Some(ShardError::ZeroWindow)
        );
        let one = vec![RingShard::new(0, 1, 0)];
        assert_eq!(
            ShardScheduler::new(one, Duration::from_ticks(1), 0).err(),
            Some(ShardError::ZeroThreads)
        );
    }

    #[test]
    fn inject_validates_destination_and_time() {
        let shards = vec![RingShard::new(0, 1, 0)];
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 1).unwrap();
        assert_eq!(
            sched.inject(5, SimTime::from_ticks(0), 1).err(),
            Some(ShardError::UnknownDestination { dst: 5, shards: 1 })
        );
        sched.step_epoch().unwrap();
        assert_eq!(
            sched.inject(0, SimTime::from_ticks(3), 1).err(),
            Some(ShardError::InjectInPast {
                time: SimTime::from_ticks(3),
                now: SimTime::from_ticks(10),
            })
        );
        // Error messages render.
        assert!(ShardError::ZeroWindow.to_string().contains("window"));
        assert!(ShardError::NoShards.to_string().contains("shard"));
    }

    #[test]
    fn unknown_destination_from_shard_is_reported() {
        struct Bad;
        impl Shard for Bad {
            type Msg = ();
            fn step(&mut self, until: SimTime, inbox: &mut Vec<Envelope<()>>, outbox: &mut Outbox<()>) {
                inbox.clear();
                outbox.send(7, until, ());
            }
        }
        let mut sched = ShardScheduler::new(vec![Bad], Duration::from_ticks(1), 1).unwrap();
        assert_eq!(
            sched.step_epoch().err(),
            Some(ShardError::UnknownDestination { dst: 7, shards: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "conservative bound violated")]
    fn outbox_rejects_messages_before_horizon() {
        struct Early;
        impl Shard for Early {
            type Msg = ();
            fn step(&mut self, _until: SimTime, _inbox: &mut Vec<Envelope<()>>, outbox: &mut Outbox<()>) {
                outbox.send(0, SimTime::ZERO, ());
            }
        }
        let mut sched = ShardScheduler::new(vec![Early], Duration::from_ticks(10), 1).unwrap();
        let _ = sched.step_epoch();
    }

    #[test]
    fn bookkeeping_counters_advance() {
        let shards: Vec<RingShard> = (0..3).map(|i| RingShard::new(i, 3, 1)).collect();
        let mut sched = ShardScheduler::new(shards, Duration::from_ticks(10), 2).unwrap();
        assert_eq!(sched.shard_count(), 3);
        assert_eq!(sched.threads(), 2);
        assert_eq!(sched.window(), Duration::from_ticks(10));
        sched.inject(0, SimTime::ZERO, 1).unwrap();
        sched.step_epoch().unwrap();
        sched.step_epoch().unwrap();
        assert_eq!(sched.epochs(), 2);
        assert_eq!(sched.now(), SimTime::from_ticks(20));
        assert!(sched.routed_messages() >= 2);
        let sums = sched.for_each_shard(|_, s| s.sum);
        assert_eq!(sums.len(), 3);
        assert_eq!(sched.with_shard(1, |s| s.index), 1);
    }
}
