//! Simulated time.
//!
//! Time is measured in integer *ticks* (one tick is nominally a microsecond,
//! but nothing in the kernel depends on the unit). Integer ticks give a total
//! order with no floating-point drift, which keeps event ordering — and hence
//! whole simulations — exactly reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in integer ticks since the start of the run.
///
/// `SimTime` is totally ordered and overflow-checked in debug builds; a
/// simulation of `u64::MAX` ticks is far beyond any workload in this crate.
///
/// ```rust
/// use tibfit_sim::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64::MAX ticks"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

/// A span of simulated time, in ticks.
///
/// ```rust
/// use tibfit_sim::Duration;
/// assert_eq!((Duration::from_ticks(2) * 3).ticks(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Checked multiplication by an integer factor, `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.0.checked_mul(factor).map(Duration)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("Duration overflow in addition"),
        )
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;

    fn mul(self, rhs: u64) -> Duration {
        Duration(
            self.0
                .checked_mul(rhs)
                .expect("Duration overflow in multiplication"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(Duration::default(), Duration::ZERO);
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_ticks(10) + Duration::from_ticks(5);
        assert_eq!(t.ticks(), 15);
    }

    #[test]
    fn since_computes_elapsed() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(10);
        assert_eq!(b.since(a), Duration::from_ticks(7));
        assert_eq!(b - a, Duration::from_ticks(7));
    }

    #[test]
    #[should_panic(expected = "is after self")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::from_ticks(1).since(SimTime::from_ticks(2));
    }

    #[test]
    fn ordering_is_by_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::MAX > SimTime::ZERO);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(Duration::from_ticks(1)), SimTime::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        assert_eq!(Duration::from_ticks(2) + Duration::from_ticks(3), Duration::from_ticks(5));
        assert_eq!(Duration::from_ticks(2) * 4, Duration::from_ticks(8));
        assert_eq!(Duration::from_ticks(u64::MAX).checked_mul(2), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ticks(7).to_string(), "t=7");
        assert_eq!(Duration::from_ticks(7).to_string(), "7 ticks");
    }
}
