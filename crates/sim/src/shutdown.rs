//! Cooperative shutdown: one process-wide flag, set by a signal handler
//! or by the embedding code, polled by long-running loops.
//!
//! The daemon and the long experiment sweeps share one drain discipline:
//! on SIGINT/SIGTERM nothing is torn down in place — the handler only
//! sets an atomic flag, and every loop that owns durable state checks
//! [`requested`] at a safe boundary (a tick, a checkpoint interval, a
//! figure) and exits through its normal flush-and-checkpoint path. That
//! keeps partial CSVs valid and final snapshots consistent no matter
//! where the signal lands.
//!
//! The flag is process-wide because signals are process-wide; tests that
//! exercise the drain path must [`reset`] it afterwards.

// The only unsafe here is the libc `signal(2)` binding; the handler body
// is a single atomic store, which is async-signal-safe.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests a graceful shutdown, as the signal handler would.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether a graceful shutdown has been requested.
#[must_use]
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clears the flag (test harnesses; a fresh process starts cleared).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    /// `SIGINT` on every unix this repo targets.
    const SIGINT: i32 = 2;
    /// `SIGTERM` on every unix this repo targets.
    const SIGTERM: i32 = 15;

    unsafe extern "C" {
        /// `signal(2)`. Declared directly so the crate stays free of
        /// external dependencies; only the constant handlers below are
        /// ever installed.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is async-signal-safe; everything else happens
        // in the main loop when it next polls `requested()`.
        super::request();
    }

    pub fn install() {
        // SAFETY: `on_signal` is an `extern "C"` fn whose body performs
        // a single atomic store — async-signal-safe per POSIX. The
        // handler address outlives the process.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag.
///
/// On non-unix targets this is a no-op: the flag can still be driven via
/// [`request`]. Idempotent — installing twice replaces the handler with
/// itself.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn handlers_install_without_error() {
        // Installing must not crash or alter the flag.
        reset();
        install_signal_handlers();
        assert!(!requested());
    }
}
