//! The pending-event queue.
//!
//! [`EventQueue`] is a bucketed timer wheel: the near future (a window of
//! [`WHEEL_SPAN`] ticks) lives in per-tick FIFO buckets indexed by an
//! occupancy bitmap, and far-future timers wait in an overflow binary
//! heap until the window advances over them. Push and pop are O(1) on the
//! wheel fast path — no heap sift, no per-event comparisons — which is
//! what the Monte-Carlo hot loop pays per event.
//!
//! Ordering is *identical* to the previous `BinaryHeap` implementation:
//! events pop in `(time, sequence)` order, where the sequence number makes
//! same-time events pop in insertion (FIFO) order. That equivalence is
//! enforced by a randomized differential test against
//! [`HeapEventQueue`], the retained reference implementation.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::clock::SimTime;

/// Width of the near-term wheel window, in ticks. Must be a power of two.
///
/// Events within `WHEEL_SPAN` ticks of the wheel's base go straight into
/// a per-tick bucket; later events overflow into a heap and are cascaded
/// in when the wheel drains and re-bases. 1024 ticks comfortably covers a
/// `T_out` window plus jitter at paper scale, so in the DES hot loop only
/// the (sparse) far-future ground-truth injections touch the heap.
pub const WHEEL_SPAN: usize = 1024;

const WORDS: usize = WHEEL_SPAN / 64;

/// An entry in the queue; ordered so the *earliest* entry is the heap max.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) yields smallest time first,
        // then smallest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events with FIFO tie-breaking.
///
/// ```rust
/// use tibfit_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ticks(5), "late");
/// q.push(SimTime::from_ticks(1), "early");
/// q.push(SimTime::from_ticks(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Per-tick FIFO buckets covering `[base, base + WHEEL_SPAN)`.
    /// Bucket `i` holds events at exactly tick `base + i`, in push order
    /// (ascending sequence number).
    slots: Vec<VecDeque<Entry<E>>>,
    /// One bit per slot: set iff the slot has pending entries.
    occupied: [u64; WORDS],
    /// Tick of slot 0.
    base: u64,
    /// Scan cursor: slots below `cursor` are drained (dead region).
    cursor: usize,
    /// Events at or beyond `base + WHEEL_SPAN`.
    overflow: BinaryHeap<Entry<E>>,
    /// Events pushed at a time the wheel cursor has already passed
    /// (only possible when the queue is driven directly, not via
    /// [`crate::Engine`], whose clock forbids scheduling into the past).
    overdue: BinaryHeap<Entry<E>>,
    len: usize,
    peak_len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(WHEEL_SPAN);
        slots.resize_with(WHEEL_SPAN, VecDeque::new);
        EventQueue {
            slots,
            occupied: [0; WORDS],
            base: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            overdue: BinaryHeap::new(),
            len: 0,
            peak_len: 0,
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        let entry = Entry { time, seq, event };
        let t = time.ticks();
        if t < self.base {
            self.overdue.push(entry);
            return;
        }
        let rel = t - self.base;
        if rel < self.cursor as u64 {
            // Behind the cursor: the wheel already swept past this tick.
            self.overdue.push(entry);
        } else if rel < WHEEL_SPAN as u64 {
            let idx = rel as usize;
            self.slots[idx].push_back(entry);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // Overdue entries predate the wheel floor, so they are strictly
        // earlier than anything the wheel or the overflow heap holds.
        if let Some(e) = self.overdue.pop() {
            self.len -= 1;
            return Some((e.time, e.event));
        }
        loop {
            if let Some(idx) = self.next_occupied_slot() {
                self.cursor = idx;
                let slot = &mut self.slots[idx];
                let entry = slot.pop_front().expect("occupied slot was empty");
                if slot.is_empty() {
                    self.occupied[idx / 64] &= !(1 << (idx % 64));
                }
                self.len -= 1;
                return Some((entry.time, entry.event));
            }
            // Wheel drained; cascade the overflow heap into a re-based
            // window. Termination: the overflow is non-empty (len > 0 and
            // every other store is empty) and re-basing always admits at
            // least its minimum entry.
            debug_assert!(!self.overflow.is_empty(), "len desynchronised");
            self.rebase();
        }
    }

    /// Moves the wheel window so it starts at the earliest overflow entry
    /// and drains every overflow entry inside the new window into its
    /// bucket. Heap pops come out in `(time, seq)` order, so each bucket
    /// stays sequence-sorted.
    fn rebase(&mut self) {
        let new_base = self
            .overflow
            .peek()
            .expect("rebase on empty overflow")
            .time
            .ticks();
        self.base = new_base;
        self.cursor = 0;
        while let Some(head) = self.overflow.peek() {
            let rel = head.time.ticks() - self.base;
            if rel >= WHEEL_SPAN as u64 {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry vanished");
            let idx = rel as usize;
            self.slots[idx].push_back(entry);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Index of the first occupied slot at or after the cursor.
    fn next_occupied_slot(&self) -> Option<usize> {
        let mut word = self.cursor / 64;
        // Mask off bits below the cursor in its word.
        let mut bits = self.occupied[word] & (!0u64 << (self.cursor % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= WORDS {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Returns the firing time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.overdue.peek() {
            return Some(e.time);
        }
        if let Some(idx) = self.next_occupied_slot() {
            return self.slots[idx].front().map(|e| e.time);
        }
        self.overflow.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of [`EventQueue::len`] over the queue's lifetime
    /// (not reset by [`EventQueue::clear`]). The bench harness reports it
    /// as `peak_queue_depth`.
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Every pending entry in pop order (`(time, seq)` ascending),
    /// without draining the queue.
    ///
    /// This is the checkpoint capture path: re-pushing the returned
    /// entries into a fresh queue in this order reproduces the exact
    /// pop sequence, because `push` assigns ascending sequence numbers
    /// and pop order is `(time, seq)`. Not on the hot path — it walks
    /// the whole wheel.
    #[must_use]
    pub fn ordered_entries(&self) -> Vec<(SimTime, &E)> {
        let mut all: Vec<(SimTime, u64, &E)> = Vec::with_capacity(self.len);
        for e in self.overdue.iter().chain(self.overflow.iter()) {
            all.push((e.time, e.seq, &e.event));
        }
        for slot in &self.slots {
            for e in slot {
                all.push((e.time, e.seq, &e.event));
            }
        }
        all.sort_unstable_by_key(|&(t, s, _)| (t, s));
        all.into_iter().map(|(t, _, e)| (t, e)).collect()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        for w in 0..WORDS {
            let mut bits = self.occupied[w];
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.slots[idx].clear();
            }
            self.occupied[w] = 0;
        }
        self.overflow.clear();
        self.overdue.clear();
        self.len = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("next_seq", &self.next_seq)
            .field("base", &self.base)
            .field("cursor", &self.cursor)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

/// The previous `BinaryHeap`-backed queue, kept as the reference
/// implementation: the randomized differential test drives it in lockstep
/// with [`EventQueue`], and `tibfit-bench` uses it as the scheduler
/// baseline. Not used by [`crate::Engine`].
#[derive(Default)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(30), 3);
        q.push(SimTime::from_ticks(10), 1);
        q.push(SimTime::from_ticks(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_on_far_future_ties() {
        // Same-tick FIFO must survive the overflow-heap detour and the
        // rebase cascade.
        let mut q = EventQueue::new();
        let far = SimTime::from_ticks(10 * WHEEL_SPAN as u64);
        for i in 0..100 {
            q.push(far, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(4), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_sees_overflow_entries() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5 * WHEEL_SPAN as u64), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(5 * WHEEL_SPAN as u64)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::from_ticks(3 * WHEEL_SPAN as u64), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(10), "a");
        q.push(SimTime::from_ticks(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_ticks(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn push_behind_cursor_still_pops_earliest_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(500), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // Both of these land behind the cursor (the overdue heap) and
        // must come back in time-then-FIFO order.
        q.push(SimTime::from_ticks(400), "b");
        q.push(SimTime::from_ticks(300), "a");
        q.push(SimTime::from_ticks(400), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn window_boundary_spans_are_ordered() {
        // Entries straddling the wheel window: near ones in buckets, far
        // ones in overflow, interleaved pushes.
        let mut q = EventQueue::new();
        let span = WHEEL_SPAN as u64;
        for (t, v) in [(span + 7, 'd'), (3, 'a'), (span - 1, 'c'), (5, 'b'), (4 * span, 'e')] {
            q.push(SimTime::from_ticks(t), v);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_ticks(i), i);
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(SimTime::from_ticks(50), 99);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn ordered_entries_reproduce_pop_order_across_all_stores() {
        // Entries in every store at once: overdue, wheel buckets, and
        // overflow. Rebuilding a queue from the captured order must pop
        // identically to the original.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(500), 0u32);
        assert_eq!(q.pop().unwrap().1, 0); // cursor now at 500
        let times = [400u64, 300, 510, 4000, 510, 300, 900];
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ticks(t), i as u32 + 1);
        }
        let captured: Vec<(SimTime, u32)> =
            q.ordered_entries().into_iter().map(|(t, &e)| (t, e)).collect();
        assert_eq!(captured.len(), times.len());
        let mut rebuilt = EventQueue::new();
        for &(t, e) in &captured {
            rebuilt.push(t, e);
        }
        let from_original: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop()).collect();
        let from_rebuilt: Vec<(SimTime, u32)> = std::iter::from_fn(|| rebuilt.pop()).collect();
        assert_eq!(from_original, from_rebuilt);
        assert_eq!(from_original.len(), times.len());
    }

    #[test]
    fn ordered_entries_empty_queue() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(q.ordered_entries().is_empty());
    }

    #[test]
    fn debug_output_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    #[test]
    fn heap_queue_matches_basic_contract() {
        let mut q = HeapEventQueue::new();
        q.push(SimTime::from_ticks(5), "late");
        q.push(SimTime::from_ticks(1), "early");
        q.push(SimTime::from_ticks(1), "early-second");
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_ticks(1), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(1), "early-second")));
        assert_eq!(q.pop(), Some((SimTime::from_ticks(5), "late")));
        assert!(q.is_empty());
        q.push(SimTime::ZERO, "x");
        q.clear();
        assert_eq!(q.pop(), None);
    }
}
