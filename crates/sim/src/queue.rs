//! The pending-event queue.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number makes
//! same-time events pop in insertion (FIFO) order, which removes the last
//! source of nondeterminism in a heap-based scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

/// An entry in the queue; ordered so the *earliest* entry is the heap max.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) yields smallest time first,
        // then smallest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events with FIFO tie-breaking.
///
/// ```rust
/// use tibfit_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ticks(5), "late");
/// q.push(SimTime::from_ticks(1), "early");
/// q.push(SimTime::from_ticks(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(30), 3);
        q.push(SimTime::from_ticks(10), 1);
        q.push(SimTime::from_ticks(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ticks(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(4), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(4)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(10), "a");
        q.push(SimTime::from_ticks(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_ticks(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn debug_output_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
