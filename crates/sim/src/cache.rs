//! Cache-geometry helpers for the sharded hot path.
//!
//! The worker pool's per-slot state is written by whichever worker owns
//! the slot this epoch; when two slots share a cache line, the ownership
//! handoff turns into false sharing — every write by one worker evicts
//! the line from the other's cache even though they never touch the same
//! bytes. [`CachePadded`] gives each such value its own line. The same
//! constant feeds the capacity rounding in [`crate::arena::BufferPool`],
//! so recycled blocks start and end on line boundaries.

/// One cache line, in bytes. 64 is the line size of every x86_64 and
/// mainstream aarch64 part this crate targets; on machines with larger
/// lines the padding is merely less than one line, never unsound.
pub const CACHE_LINE: usize = 64;

/// Wraps a value in its own cache line(s): aligned to [`CACHE_LINE`] and
/// therefore padded to a multiple of it, so two adjacent `CachePadded`
/// values — e.g. consecutive shard slots in a `Vec` — never share a
/// line. Access is transparent through `Deref`/`DerefMut`.
#[derive(Debug, Default, Clone)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Rounds `cap` elements of `T` up so the block spans whole cache lines
/// (no-op for zero capacity and for types at least one line wide).
#[must_use]
pub fn round_capacity_to_line<T>(cap: usize) -> usize {
    let elem = std::mem::size_of::<T>();
    if cap == 0 || elem == 0 || elem >= CACHE_LINE {
        return cap;
    }
    let per_line = CACHE_LINE / elem;
    cap.div_ceil(per_line) * per_line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_get_their_own_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), CACHE_LINE);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= CACHE_LINE);
        // Adjacent slots land on distinct lines.
        let v = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= CACHE_LINE);
        assert_eq!(a % CACHE_LINE, 0);
    }

    #[test]
    fn deref_is_transparent() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn capacity_rounding_spans_whole_lines() {
        assert_eq!(round_capacity_to_line::<u64>(0), 0);
        assert_eq!(round_capacity_to_line::<u64>(1), 8);
        assert_eq!(round_capacity_to_line::<u64>(8), 8);
        assert_eq!(round_capacity_to_line::<u64>(9), 16);
        assert_eq!(round_capacity_to_line::<u8>(65), 128);
        // A type a line or wider is already line-granular per element.
        assert_eq!(round_capacity_to_line::<[u8; 64]>(3), 3);
        assert_eq!(round_capacity_to_line::<[u8; 128]>(5), 5);
    }
}
