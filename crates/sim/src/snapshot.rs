//! Versioned binary container for engine checkpoints.
//!
//! A snapshot is `magic ("TBSN") · version (u16 LE) · sections*`, where
//! each section is `tag (u8) · payload length (u32 LE) · payload ·
//! CRC32 (u32 LE)`. The CRC covers the payload only; the magic,
//! version, tag, and length fields are each validated explicitly on
//! read, so *any* single corruption — a flipped bit, a truncation, a
//! version skew — surfaces as a typed [`SnapshotError`] instead of a
//! panic or a silently wrong load. That contract is pinned by the
//! corrupt-snapshot fuzz tests in `tests/crash_resume.rs`.
//!
//! The module is deliberately schema-free: it frames and checksums
//! bytes, while the owners of the state (the trust table, the cluster
//! engines) decide what goes inside each section. Numbers are
//! little-endian; `f64`s travel as raw IEEE-754 bits so a restore is
//! bit-lossless.

use std::fmt;
use std::io::{Read, Write};

/// First four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"TBSN";

/// First four bytes of a framed blob on a byte stream (see
/// [`write_framed`]).
pub const FRAME_MAGIC: [u8; 4] = *b"TBFR";

/// Current container version. Bump on any layout change; readers
/// reject other versions rather than guessing. Version 2 added the
/// arithmetic-backend byte to the deployment section.
pub const VERSION: u16 = 2;

/// Why a snapshot blob could not be read (or state could not be
/// captured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The container version is not the one this build reads.
    UnsupportedVersion {
        /// Version found in the blob.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The blob ends before a declared field or section does.
    Truncated,
    /// A section payload failed its CRC32 check.
    CrcMismatch {
        /// Tag of the corrupt section.
        tag: u8,
    },
    /// A section appeared with the wrong tag (or out of order).
    UnexpectedSection {
        /// Tag the reader expected.
        expected: u8,
        /// Tag actually found.
        found: u8,
    },
    /// Bytes remain after the last expected section.
    TrailingBytes,
    /// A field decoded to a value no healthy engine can hold.
    Invalid(&'static str),
    /// The state cannot be captured or restored (e.g. a behavior kind
    /// with process-shared state that cannot survive serialisation).
    Unsupported(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot version {found} unsupported (this build reads {supported})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::CrcMismatch { tag } => {
                write!(f, "section 0x{tag:02x} failed its CRC check")
            }
            SnapshotError::UnexpectedSection { expected, found } => {
                write!(f, "expected section 0x{expected:02x}, found 0x{found:02x}")
            }
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after final section"),
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            SnapshotError::Unsupported(what) => write!(f, "unsupported state: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why a framed blob could not be read off a byte stream.
///
/// Every way a socket transfer can go wrong — disconnect mid-frame,
/// corrupted header, flipped payload bit, absurd declared length —
/// maps to exactly one variant; nothing panics and nothing is
/// silently truncated.
#[derive(Debug)]
pub enum FrameError {
    /// The stream failed or ended mid-frame (a disconnect surfaces as
    /// `UnexpectedEof`).
    Io(std::io::Error),
    /// The frame does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The declared payload length exceeds the caller's bound — the
    /// guard that keeps a corrupt length from driving a huge
    /// allocation.
    TooLarge {
        /// Length the frame header declared.
        declared: u64,
        /// Bound the caller allowed.
        max: u64,
    },
    /// The payload failed its CRC32 check.
    CrcMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "framed transfer failed: {e}"),
            FrameError::BadMagic => write!(f, "not a framed blob: bad magic"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "framed blob declares {declared} bytes, bound is {max}")
            }
            FrameError::CrcMismatch => write!(f, "framed blob failed its CRC check"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one blob to a byte stream as
/// `FRAME_MAGIC · length (u64 LE) · payload · CRC32 (u32 LE)`.
///
/// The envelope lets an already-built container (or any byte blob)
/// travel over a socket with the same corruption guarantees the
/// container gives on disk: the receiver validates magic, length
/// bound, and checksum before a single payload byte is interpreted.
///
/// # Errors
///
/// Any I/O error from the underlying writer.
pub fn write_framed(w: &mut impl Write, blob: &[u8]) -> Result<(), FrameError> {
    w.write_all(&FRAME_MAGIC)?;
    w.write_all(&(blob.len() as u64).to_le_bytes())?;
    w.write_all(blob)?;
    w.write_all(&crc32(blob).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one blob written by [`write_framed`], allocating at most
/// `max_len` bytes.
///
/// # Errors
///
/// [`FrameError::Io`] on stream failure or early EOF,
/// [`FrameError::BadMagic`] / [`FrameError::TooLarge`] /
/// [`FrameError::CrcMismatch`] on a malformed frame.
pub fn read_framed(r: &mut impl Read, max_len: u64) -> Result<Vec<u8>, FrameError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let declared = u64::from_le_bytes(len_bytes);
    if declared > max_len {
        return Err(FrameError::TooLarge { declared, max: max_len });
    }
    #[allow(clippy::cast_possible_truncation)]
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Err(FrameError::CrcMismatch);
    }
    Ok(payload)
}

/// CRC32 (IEEE 802.3, the zlib polynomial), table-driven.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Builds a snapshot blob: header first, then CRC-framed sections.
///
/// ```rust
/// use tibfit_sim::snapshot::{SnapshotReader, SnapshotWriter};
///
/// let mut w = SnapshotWriter::new();
/// w.section(1, |s| {
///     s.put_u64(42);
///     s.put_f64(0.25);
/// });
/// let blob = w.finish();
///
/// let mut r = SnapshotReader::new(&blob).unwrap();
/// let mut s = r.section(1).unwrap();
/// assert_eq!(s.take_u64().unwrap(), 42);
/// assert_eq!(s.take_f64().unwrap(), 0.25);
/// s.end().unwrap();
/// r.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a blob with the magic and current version.
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        SnapshotWriter { buf }
    }

    /// Appends one section: `f` fills the payload, the writer frames it
    /// with the tag, length, and CRC.
    pub fn section<R>(&mut self, tag: u8, f: impl FnOnce(&mut SectionBuf) -> R) -> R {
        let mut body = SectionBuf { buf: Vec::new() };
        let out = f(&mut body);
        self.buf.push(tag);
        #[allow(clippy::cast_possible_truncation)]
        let len = body.buf.len() as u32;
        self.buf.extend_from_slice(&len.to_le_bytes());
        let crc = crc32(&body.buf);
        self.buf.extend_from_slice(&body.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// The finished blob.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

/// Accumulates one section's payload. All integers are little-endian;
/// `f64`s are stored as raw bits.
#[derive(Debug)]
pub struct SectionBuf {
    buf: Vec<u8>,
}

impl SectionBuf {
    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (as `u64`).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits (lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends `Some(x)` as `1·bits` and `None` as `0`.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed byte blob (u64 length) — used to embed
    /// one container inside a section of another (e.g. an engine
    /// snapshot inside a sweep-progress checkpoint).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string (u16 length).
    ///
    /// # Panics
    ///
    /// Panics if `s` is longer than `u16::MAX` bytes — section schemas
    /// only store short identifiers.
    pub fn put_str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("snapshot strings are short");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Walks a snapshot blob, validating as it goes.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a blob, checking magic and version.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// or [`SnapshotError::Truncated`] for a malformed header.
    pub fn new(data: &'a [u8]) -> Result<Self, SnapshotError> {
        if data.len() < MAGIC.len() + 2 {
            return Err(SnapshotError::Truncated);
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        Ok(SnapshotReader { data, pos: MAGIC.len() + 2 })
    }

    /// Opens the next section, which must carry `tag`. The payload CRC
    /// is verified before any field is decoded.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnexpectedSection`] on a tag mismatch,
    /// [`SnapshotError::Truncated`] if the declared payload runs past
    /// the blob, [`SnapshotError::CrcMismatch`] on checksum failure.
    pub fn section(&mut self, tag: u8) -> Result<SectionReader<'a>, SnapshotError> {
        let header_end = self.pos.checked_add(5).ok_or(SnapshotError::Truncated)?;
        if header_end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let found = self.data[self.pos];
        if found != tag {
            return Err(SnapshotError::UnexpectedSection { expected: tag, found });
        }
        let len = u32::from_le_bytes(
            self.data[self.pos + 1..header_end].try_into().expect("4-byte slice"),
        ) as usize;
        let payload_end = header_end.checked_add(len).ok_or(SnapshotError::Truncated)?;
        let crc_end = payload_end.checked_add(4).ok_or(SnapshotError::Truncated)?;
        if crc_end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let payload = &self.data[header_end..payload_end];
        let stored = u32::from_le_bytes(
            self.data[payload_end..crc_end].try_into().expect("4-byte slice"),
        );
        if crc32(payload) != stored {
            return Err(SnapshotError::CrcMismatch { tag });
        }
        self.pos = crc_end;
        Ok(SectionReader { data: payload, pos: 0 })
    }

    /// `true` if every byte has been consumed.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Asserts the blob is fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] if data remains.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes)
        }
    }
}

/// Decodes one section's (already CRC-verified) payload.
#[derive(Debug)]
pub struct SectionReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl SectionReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the section is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the section is exhausted.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the section is exhausted.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if exhausted,
    /// [`SnapshotError::Invalid`] if the value overflows this
    /// platform's `usize`.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| SnapshotError::Invalid("usize field overflows this platform"))
    }

    /// Reads a count field that prefixes `elem_size`-byte elements,
    /// rejecting counts the remaining payload cannot possibly hold —
    /// the guard that keeps a corrupt length from driving a huge
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if exhausted or the count is
    /// implausible, [`SnapshotError::Invalid`] on `usize` overflow.
    pub fn take_count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let count = self.take_usize()?;
        let remaining = self.data.len() - self.pos;
        if count.checked_mul(elem_size.max(1)).is_none_or(|bytes| bytes > remaining) {
            return Err(SnapshotError::Truncated);
        }
        Ok(count)
    }

    /// Reads an `f64` from raw bits. The caller validates range.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the section is exhausted.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if exhausted,
    /// [`SnapshotError::Invalid`] for a non-boolean byte.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Invalid("boolean field not 0 or 1")),
        }
    }

    /// Reads an `Option<f64>` written by [`SectionBuf::put_opt_f64`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`SnapshotError`]s.
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        if self.take_bool()? {
            Ok(Some(self.take_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte blob written by
    /// [`SectionBuf::put_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the declared length runs past the
    /// section.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.take_count(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if exhausted,
    /// [`SnapshotError::Invalid`] for non-UTF-8 bytes.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte slice")) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Invalid("string field is not UTF-8"))
    }

    /// Asserts the section is fully consumed — a schema/payload length
    /// disagreement is corruption, not slack.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Invalid`] if bytes remain.
    pub fn end(self) -> Result<(), SnapshotError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(SnapshotError::Invalid("section has trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blob() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(1, |s| {
            s.put_u64(0xDEAD_BEEF);
            s.put_f64(-0.0);
            s.put_opt_f64(Some(1.5));
            s.put_opt_f64(None);
            s.put_str("trust");
            s.put_bool(true);
            s.put_bytes(&[9, 8, 7]);
        });
        w.section(2, |s| {
            s.put_u32(7);
        });
        w.finish()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let blob = sample_blob();
        let mut r = SnapshotReader::new(&blob).unwrap();
        let mut s = r.section(1).unwrap();
        assert_eq!(s.take_u64().unwrap(), 0xDEAD_BEEF);
        // -0.0 must survive bit-exactly, not collapse to +0.0.
        assert_eq!(s.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.take_opt_f64().unwrap(), Some(1.5));
        assert_eq!(s.take_opt_f64().unwrap(), None);
        assert_eq!(s.take_str().unwrap(), "trust");
        assert!(s.take_bool().unwrap());
        assert_eq!(s.take_bytes().unwrap(), vec![9, 8, 7]);
        s.end().unwrap();
        let mut s = r.section(2).unwrap();
        assert_eq!(s.take_u32().unwrap(), 7);
        s.end().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = sample_blob();
        blob[0] ^= 0x40;
        assert_eq!(SnapshotReader::new(&blob).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn version_skew_rejected() {
        let mut blob = sample_blob();
        blob[4] = 0xFF;
        assert!(matches!(
            SnapshotReader::new(&blob).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 0xFF, .. }
        ));
    }

    #[test]
    fn payload_bit_flip_fails_crc() {
        let mut blob = sample_blob();
        // Offset 11 is inside section 1's payload (6 header + 5 section
        // header).
        blob[11] ^= 0x01;
        let mut r = SnapshotReader::new(&blob).unwrap();
        assert_eq!(r.section(1).unwrap_err(), SnapshotError::CrcMismatch { tag: 1 });
    }

    #[test]
    fn wrong_tag_rejected() {
        let blob = sample_blob();
        let mut r = SnapshotReader::new(&blob).unwrap();
        assert_eq!(
            r.section(9).unwrap_err(),
            SnapshotError::UnexpectedSection { expected: 9, found: 1 }
        );
    }

    #[test]
    fn truncation_anywhere_is_an_error() {
        let blob = sample_blob();
        for cut in 0..blob.len() {
            let short = &blob[..cut];
            let outcome = SnapshotReader::new(short).and_then(|mut r| {
                let mut s = r.section(1)?;
                let _ = s.take_u64()?;
                let _ = s.take_f64()?;
                let _ = s.take_opt_f64()?;
                let _ = s.take_opt_f64()?;
                let _ = s.take_str()?;
                let _ = s.take_bool()?;
                let _ = s.take_bytes()?;
                s.end()?;
                let mut s = r.section(2)?;
                let _ = s.take_u32()?;
                s.end()?;
                r.finish()
            });
            assert!(outcome.is_err(), "truncation at {cut} slipped through");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut blob = sample_blob();
        blob.push(0);
        let mut r = SnapshotReader::new(&blob).unwrap();
        let _ = r.section(1).unwrap();
        let _ = r.section(2).unwrap();
        assert_eq!(r.finish().unwrap_err(), SnapshotError::TrailingBytes);
    }

    #[test]
    fn count_guard_rejects_implausible_lengths() {
        let mut w = SnapshotWriter::new();
        w.section(3, |s| s.put_usize(usize::MAX / 2));
        let blob = w.finish();
        let mut r = SnapshotReader::new(&blob).unwrap();
        let mut s = r.section(3).unwrap();
        assert_eq!(s.take_count(8).unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn framed_roundtrip_preserves_bytes() {
        let blob = sample_blob();
        let mut wire = Vec::new();
        write_framed(&mut wire, &blob).unwrap();
        let mut cursor = &wire[..];
        let back = read_framed(&mut cursor, 1 << 20).unwrap();
        assert_eq!(back, blob);
        assert!(cursor.is_empty(), "frame left bytes on the stream");
        // An empty payload frames cleanly too.
        let mut wire = Vec::new();
        write_framed(&mut wire, &[]).unwrap();
        assert_eq!(read_framed(&mut &wire[..], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn framed_bad_magic_rejected() {
        let mut wire = Vec::new();
        write_framed(&mut wire, b"payload").unwrap();
        wire[0] ^= 0x20;
        assert!(matches!(read_framed(&mut &wire[..], 1 << 20), Err(FrameError::BadMagic)));
    }

    #[test]
    fn framed_bit_flip_fails_crc() {
        let mut wire = Vec::new();
        write_framed(&mut wire, b"payload").unwrap();
        // Flip a payload bit (offset 12 = 4 magic + 8 length).
        wire[12] ^= 0x01;
        assert!(matches!(read_framed(&mut &wire[..], 1 << 20), Err(FrameError::CrcMismatch)));
    }

    #[test]
    fn framed_truncation_anywhere_is_io_eof() {
        let mut wire = Vec::new();
        write_framed(&mut wire, b"payload").unwrap();
        for cut in 0..wire.len() {
            match read_framed(&mut &wire[..cut], 1 << 20) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
                }
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn framed_length_bound_enforced() {
        let mut wire = Vec::new();
        write_framed(&mut wire, &[0u8; 64]).unwrap();
        match read_framed(&mut &wire[..], 63) {
            Err(FrameError::TooLarge { declared: 64, max: 63 }) => {}
            other => panic!("bound not enforced: {other:?}"),
        }
        // A corrupt length field hits the bound before any allocation.
        wire[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_framed(&mut &wire[..], 1 << 20),
            Err(FrameError::TooLarge { declared: u64::MAX, .. })
        ));
    }

    #[test]
    fn frame_errors_display() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        for e in [
            FrameError::Io(eof),
            FrameError::BadMagic,
            FrameError::TooLarge { declared: 9, max: 8 },
            FrameError::CrcMismatch,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn errors_display() {
        for e in [
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion { found: 2, supported: 1 },
            SnapshotError::Truncated,
            SnapshotError::CrcMismatch { tag: 1 },
            SnapshotError::UnexpectedSection { expected: 1, found: 2 },
            SnapshotError::TrailingBytes,
            SnapshotError::Invalid("x"),
            SnapshotError::Unsupported("y"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
