//! Per-shard epoch arenas: typed recycling buffer pools.
//!
//! The hot loop of a shard allocates the same shapes every round — a
//! report batch per sense, a declaration list per decide, a handoff list
//! per re-election. A [`BufferPool`] keeps those vectors alive between
//! epochs instead of returning them to the allocator: `lease` hands out a
//! cleared buffer (reusing a retired one when available), `release` takes
//! it back once the epoch is done with it. After the first few rounds
//! warm the pool, the loop allocates nothing — the arena behaviour the
//! sharded engine wants — while each buffer still grows to its natural
//! high-water capacity like any `Vec`.
//!
//! The pool is deliberately *not* a bump allocator over raw bytes: every
//! lease is an ordinary `Vec<T>`, so borrow checking, drop order, and
//! capacity growth all behave exactly as without the pool, and swapping a
//! pool in or out cannot change a simulation trace.
//!
//! ```rust
//! use tibfit_sim::arena::BufferPool;
//!
//! let mut pool: BufferPool<u64> = BufferPool::new();
//! let mut buf = pool.lease();
//! buf.extend([1, 2, 3]);
//! pool.release(buf);
//! let again = pool.lease(); // same backing storage, cleared
//! assert!(again.is_empty() && again.capacity() >= 3);
//! assert_eq!(pool.reused(), 1);
//! ```

/// A typed pool of recycled `Vec<T>` scratch buffers.
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    allocated: u64,
    reused: u64,
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufferPool<T> {
    /// An empty pool. Nothing is preallocated; capacity accrues from
    /// released buffers.
    #[must_use]
    pub fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            allocated: 0,
            reused: 0,
        }
    }

    /// Takes an empty buffer from the pool, or a fresh one if none is
    /// retired. The returned buffer is always empty; its capacity is
    /// whatever its previous lease grew it to.
    #[must_use]
    pub fn lease(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "released buffers are cleared");
                self.reused += 1;
                buf
            }
            None => {
                self.allocated += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for a later [`BufferPool::lease`].
    /// Contents are cleared (elements drop now); capacity is kept, but
    /// rounded up so the retired block spans whole cache lines — the
    /// next lease's writes then never straddle a line shared with a
    /// neighboring allocation. The rounding reallocates at most once per
    /// capacity high-water mark, so the steady state is untouched.
    pub fn release(&mut self, mut buf: Vec<T>) {
        buf.clear();
        let rounded = crate::cache::round_capacity_to_line::<T>(buf.capacity());
        if rounded > buf.capacity() {
            buf.reserve_exact(rounded);
        }
        self.free.push(buf);
    }

    /// Buffers created fresh because the pool was empty — the pool's
    /// steady-state value is this number staying flat while
    /// [`BufferPool::reused`] climbs.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Leases served from a retired buffer instead of the allocator.
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Buffers currently retired and ready to lease.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_prefers_recycled_buffers() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        let mut a = pool.lease();
        let b = pool.lease();
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.reused(), 0);
        a.extend([1, 2, 3, 4]);
        let cap = a.capacity();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        let c = pool.lease();
        assert!(c.is_empty());
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.allocated(), 2, "no fresh allocation once warmed");
        // LIFO reuse: the most recently released buffer (b, empty) comes
        // back first; the grown one is still idle. Release rounds
        // capacity up to whole cache lines, never down.
        let d = pool.lease();
        assert!(c.capacity() >= cap || d.capacity() >= cap, "grown capacity survives recycling");
    }

    #[test]
    fn released_capacity_is_line_granular() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        let mut buf = pool.lease();
        buf.extend(0..5); // ragged capacity
        pool.release(buf);
        let buf = pool.lease();
        assert_eq!(buf.capacity() % (crate::cache::CACHE_LINE / 8), 0);
        assert!(buf.capacity() >= 8);
    }

    #[test]
    fn release_drops_contents_but_keeps_capacity() {
        let mut pool: BufferPool<String> = BufferPool::new();
        let mut buf = pool.lease();
        buf.push("scratch".to_string());
        buf.push("epoch".to_string());
        let cap = buf.capacity();
        pool.release(buf);
        let buf = pool.lease();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= cap);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut pool: BufferPool<u64> = BufferPool::new();
        // Warm-up: one buffer in flight at a time.
        for round in 0..100u64 {
            let mut buf = pool.lease();
            buf.extend(0..round);
            pool.release(buf);
        }
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.reused(), 99);
        assert_eq!(pool.idle(), 1);
    }
}
