//! Statistics accumulators used to build the paper's figures.
//!
//! [`Running`] is a Welford-style online mean/variance accumulator;
//! [`Series`] collects `(x, y)` points with per-x aggregation over repeated
//! trials — exactly the shape of the accuracy-vs-percentage plots in the
//! paper — and [`Histogram`] provides coarse distribution summaries.

use std::collections::BTreeMap;
use std::fmt;

/// Online mean / variance / min / max accumulator (Welford's algorithm).
///
/// ```rust
/// use tibfit_sim::stats::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] { r.push(x); }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN would silently poison every statistic).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "Running::push: NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; `0.0` with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (n−1 denominator); `0.0` with fewer than two
    /// observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the ~95% confidence interval on the mean, using the
    /// normal approximation (1.96 σ/√n). `0.0` with fewer than two samples.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel-trial reduction).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Running {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4}",
            self.count,
            self.mean(),
            self.std_dev()
        )
    }
}

/// A named series of `(x, aggregated y)` points for one plot line.
///
/// The x-axis is discretized to integer milli-units so repeated trials at
/// the same sweep point aggregate exactly (no float-key fuzziness).
///
/// ```rust
/// use tibfit_sim::stats::Series;
/// let mut s = Series::new("TIBFIT");
/// s.record(40.0, 0.95);
/// s.record(40.0, 0.97);
/// s.record(50.0, 0.90);
/// let pts = s.points();
/// assert_eq!(pts.len(), 2);
/// assert!((pts[0].1 - 0.96).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    buckets: BTreeMap<i64, Running>,
}

/// X-axis discretization factor for [`Series`].
const X_SCALE: f64 = 1000.0;

impl Series {
    /// Creates an empty series with a display name (the plot legend entry).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            buckets: BTreeMap::new(),
        }
    }

    /// The legend name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one observation `y` at sweep position `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite or `y` is NaN.
    pub fn record(&mut self, x: f64, y: f64) {
        assert!(x.is_finite(), "Series::record: non-finite x");
        let key = (x * X_SCALE).round() as i64;
        self.buckets.entry(key).or_default().push(y);
    }

    /// The aggregated `(x, mean y)` points in ascending x order.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .map(|(k, r)| (*k as f64 / X_SCALE, r.mean()))
            .collect()
    }

    /// The aggregated `(x, mean y, ci95 half-width)` points.
    #[must_use]
    pub fn points_with_ci(&self) -> Vec<(f64, f64, f64)> {
        self.buckets
            .iter()
            .map(|(k, r)| (*k as f64 / X_SCALE, r.mean(), r.ci95_half_width()))
            .collect()
    }

    /// Mean y at a given x, if any observation was recorded there.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        let key = (x * X_SCALE).round() as i64;
        self.buckets.get(&key).map(Running::mean)
    }

    /// Number of distinct x positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
///
/// ```rust
/// use tibfit_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(2.5);
/// h.push(-1.0); // underflow
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `n_bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n_bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(lo < hi, "Histogram range must be non-empty");
        assert!(n_bins > 0, "Histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty_defaults() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }

    #[test]
    fn running_mean_and_variance() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn running_rejects_nan() {
        Running::new().push(f64::NAN);
    }

    #[test]
    fn running_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn running_merge_with_empty() {
        let mut a = Running::new();
        a.push(1.0);
        let b = Running::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Running::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Running::new();
        let mut large = Running::new();
        for i in 0..10 {
            small.push(i as f64 % 2.0);
        }
        for i in 0..1000 {
            large.push(i as f64 % 2.0);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn series_aggregates_same_x() {
        let mut s = Series::new("line");
        s.record(10.0, 1.0);
        s.record(10.0, 0.0);
        assert_eq!(s.y_at(10.0), Some(0.5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn series_points_sorted_by_x() {
        let mut s = Series::new("line");
        s.record(50.0, 0.2);
        s.record(10.0, 0.9);
        s.record(30.0, 0.5);
        let xs: Vec<f64> = s.points().iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![10.0, 30.0, 50.0]);
    }

    #[test]
    fn series_ci_points_have_widths() {
        let mut s = Series::new("line");
        for _ in 0..5 {
            s.record(1.0, 0.4);
            s.record(1.0, 0.6);
        }
        let pts = s.points_with_ci();
        assert_eq!(pts.len(), 1);
        assert!(pts[0].2 > 0.0);
    }

    #[test]
    fn series_missing_x_is_none() {
        let s = Series::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.y_at(1.0), None);
    }

    #[test]
    fn histogram_bins_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1);
        }
        h.push(10.0);
        h.push(-0.001);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
