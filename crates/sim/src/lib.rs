//! # tibfit-sim
//!
//! A small, deterministic discrete-event simulation (DES) kernel used as the
//! substrate for the TIBFIT reproduction. The original paper evaluates the
//! protocol inside ns-2; this crate provides the pieces of ns-2 the protocol
//! actually exercises:
//!
//! * a simulated clock with integer-tick resolution ([`SimTime`]),
//! * a stable event queue with timer scheduling and cancellation
//!   ([`EventQueue`], [`Engine`]),
//! * seedable, reproducible randomness and the distributions the paper's
//!   workloads need ([`rng::SimRng`]),
//! * a conservative window-synchronized shard scheduler for running
//!   nearly independent partitions in parallel without losing
//!   reproducibility ([`shard::ShardScheduler`]),
//! * recycling buffer pools that make per-epoch scratch allocation-free
//!   across epochs ([`arena::BufferPool`]),
//! * statistics accumulators for building the paper's figures
//!   ([`stats::Running`], [`stats::Series`]),
//! * a versioned, CRC-framed binary container for checkpoint blobs
//!   ([`snapshot::SnapshotWriter`], [`snapshot::SnapshotReader`]).
//!
//! Everything is deterministic: the same seed produces the same simulation,
//! which the test-suite relies on.
//!
//! ## Example
//!
//! ```rust
//! use tibfit_sim::{Engine, SimTime};
//!
//! // Count how many timers fire before t = 100.
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule_at(SimTime::from_ticks(10), "a");
//! engine.schedule_at(SimTime::from_ticks(20), "b");
//! let mut fired = Vec::new();
//! while let Some((t, ev)) = engine.pop() {
//!     fired.push((t.ticks(), ev));
//! }
//! assert_eq!(fired, vec![(10, "a"), (20, "b")]);
//! ```

// `unsafe` is denied crate-wide; the sanctioned exceptions are the
// shard scheduler's worker pool (`shard.rs`), whose cursor-partitioned
// slot handout and lifetime-erased epoch job need it, and the
// `signal(2)` binding in `shutdown.rs`. Each site carries its own
// safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod engine;
mod queue;

pub mod arena;
pub mod cache;
pub mod rng;
pub mod shard;
pub mod shutdown;
pub mod snapshot;
pub mod stats;
pub mod trace;

pub use clock::{Duration, SimTime};
pub use engine::{Engine, TimerHandle};
pub use queue::{EventQueue, HeapEventQueue, WHEEL_SPAN};
