//! The simulated cluster: topology + per-node behaviors + wireless channel
//! + cluster-head engine, driven one event round at a time.
//!
//! This is the glue the paper implements inside ns-2: the event generator
//! injects ground truth, nodes act (honestly or not), the channel drops
//! some packets, reports travel as the paper's `(r, θ)` payloads, the
//! cluster head decides, and the judgements feed back to the nodes (for
//! trust-mirroring adversaries) and into experiment metrics.

use tibfit_adversary::behavior::{NodeBehavior, RoundContext};
use tibfit_core::engine::Aggregator;
use tibfit_core::location::LocatedReport;
use tibfit_net::channel::ChannelModel;
use tibfit_net::geometry::Point;
use tibfit_net::message::{EventReport, ReportPayload};
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;
use tibfit_sim::SimTime;

/// Which side of the fault line a node is currently on (used by
/// experiments to assign and reassign behaviors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Behaves per the correct-node model.
    Correct,
    /// Behaves per one of the faulty models (level 0/1/2).
    Faulty,
}

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSimConfig {
    /// Sensing radius `r_s` (paper: 20 units).
    pub sensing_radius: f64,
    /// Localization tolerance `r_error` (paper: 5 units).
    pub r_error: f64,
    /// Position of the cluster head (for channel loss computations).
    pub ch_position: Point,
}

/// Result of one binary event round.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryRoundResult {
    /// Ground truth for the round.
    pub event_occurred: bool,
    /// The cluster head's verdict (`false` when no report arrived at all,
    /// in which case no decision round ran).
    pub event_declared: bool,
    /// Whether any decision round ran (at least one report arrived).
    pub decision_ran: bool,
    /// Nodes whose reports reached the CH.
    pub reporters: Vec<NodeId>,
}

impl BinaryRoundResult {
    /// `true` when the CH's view matches ground truth.
    #[must_use]
    pub fn correct(&self) -> bool {
        self.event_declared == self.event_occurred
    }
}

/// Result of one located event round.
#[derive(Debug, Clone, PartialEq)]
pub struct LocatedRoundResult {
    /// Ground-truth event locations for the round.
    pub events: Vec<Point>,
    /// Locations where the CH declared events.
    pub declared: Vec<Point>,
    /// Reports that reached the CH (after channel loss), as resolved
    /// absolute positions.
    pub delivered_reports: Vec<LocatedReport>,
}

impl LocatedRoundResult {
    /// How many ground-truth events were detected within `r_error`.
    #[must_use]
    pub fn detected_within(&self, r_error: f64) -> usize {
        self.events
            .iter()
            .filter(|e| self.declared.iter().any(|d| d.distance_to(**e) <= r_error))
            .count()
    }

    /// Declared locations not within `r_error` of any true event
    /// (false positives).
    #[must_use]
    pub fn false_positives(&self, r_error: f64) -> usize {
        self.declared
            .iter()
            .filter(|d| !self.events.iter().any(|e| e.distance_to(**d) <= r_error))
            .count()
    }
}

/// A fully wired simulated cluster.
///
/// Generic over nothing at the API level: behaviors, channel, and engine
/// are boxed so experiments can mix and match at runtime.
pub struct ClusterSim {
    config: ClusterSimConfig,
    topo: Topology,
    behaviors: Vec<Box<dyn NodeBehavior>>,
    channel: Box<dyn ChannelModel>,
    engine: Box<dyn Aggregator>,
    rng: SimRng,
    round: u64,
    /// Cached dense id list, so per-round loops and the engine's
    /// roster argument never re-collect it.
    all_nodes: Vec<NodeId>,
}

impl ClusterSim {
    /// Wires up a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors.len()` does not match the topology size or the
    /// config radii are non-positive.
    #[must_use]
    pub fn new(
        config: ClusterSimConfig,
        topo: Topology,
        behaviors: Vec<Box<dyn NodeBehavior>>,
        channel: Box<dyn ChannelModel>,
        engine: Box<dyn Aggregator>,
        rng: SimRng,
    ) -> Self {
        assert_eq!(
            behaviors.len(),
            topo.len(),
            "one behavior per node required"
        );
        assert!(config.sensing_radius > 0.0, "sensing radius must be positive");
        assert!(config.r_error > 0.0, "r_error must be positive");
        let all_nodes: Vec<NodeId> = topo.node_ids().collect();
        ClusterSim {
            config,
            topo,
            behaviors,
            channel,
            engine,
            rng,
            round: 0,
            all_nodes,
        }
    }

    /// The topology under simulation.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the topology, for mobility models that move
    /// nodes between rounds (§2: the network "could be stationary or
    /// mobile"); the CH always decides against current positions.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// A reborrow of the simulation RNG (mobility models draw from the
    /// same deterministic stream).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The engine's current trust estimate for a node (TIBFIT only).
    #[must_use]
    pub fn trust_of(&self, node: NodeId) -> Option<f64> {
        self.engine.trust_of(node)
    }

    /// Nodes the engine has diagnosed and isolated.
    #[must_use]
    pub fn isolated_nodes(&self) -> Vec<NodeId> {
        self.engine.isolated_nodes()
    }

    /// The engine's display name.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Number of rounds run so far.
    #[must_use]
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Replaces one node's behavior (Experiment 3's progressive
    /// compromise).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_behavior(&mut self, node: NodeId, behavior: Box<dyn NodeBehavior>) {
        self.behaviors[node.index()] = behavior;
    }

    fn context_for(&self, node: NodeId, event: Option<Point>) -> RoundContext {
        let node_pos = self.topo.position(node);
        let is_event_neighbor = event
            .map(|e| node_pos.distance_to(e) <= self.config.sensing_radius)
            .unwrap_or(false);
        RoundContext {
            round: self.round,
            node,
            node_pos,
            event,
            is_event_neighbor,
        }
    }

    /// Runs one binary round with the given ground truth.
    ///
    /// `event_occurred = false` models the inter-event interval in which
    /// faulty nodes may raise false alarms; if nobody reports, no decision
    /// runs (the CH is event-driven).
    pub fn run_binary_round(&mut self, event_occurred: bool) -> BinaryRoundResult {
        // The binary model treats every cluster node as an event neighbor
        // (paper Experiment 1), with an abstract event location at the CH.
        let event = event_occurred.then_some(self.config.ch_position);
        let mut reporters = Vec::new();
        for idx in 0..self.topo.len() {
            let node = NodeId(idx);
            let mut ctx = self.context_for(node, event);
            // Binary model: every node senses every cluster event.
            ctx.is_event_neighbor = event.is_some();
            let wants_to_send = self.behaviors[node.index()].binary_action(&ctx, &mut self.rng);
            if wants_to_send && self.deliver(node) {
                reporters.push(node);
            }
        }
        self.round += 1;

        if reporters.is_empty() {
            // No report, no decision round: silence is (implicitly) a
            // "no event" outcome.
            return BinaryRoundResult {
                event_occurred,
                event_declared: false,
                decision_ran: false,
                reporters,
            };
        }
        let round = self.engine.binary_round(&self.all_nodes, &reporters);
        for &(node, judgement) in &round.judgements {
            self.behaviors[node.index()].observe_judgement(judgement);
        }
        BinaryRoundResult {
            event_occurred,
            event_declared: round.outcome.event_declared,
            decision_ran: true,
            reporters,
        }
    }

    /// Runs one located round in which the given events occur
    /// simultaneously (a single event is the 1-element case).
    ///
    /// A node that senses several events reports the nearest one. Reports
    /// travel as `(r, θ)` payloads and are resolved back to absolute
    /// coordinates at the CH using its knowledge of node positions.
    pub fn run_located_round(&mut self, events: &[Point]) -> LocatedRoundResult {
        let mut delivered: Vec<EventReport> = Vec::new();
        let now = SimTime::from_ticks(self.round);
        for idx in 0..self.topo.len() {
            let node = NodeId(idx);
            let node_pos = self.topo.position(node);
            // The nearest event within sensing range, if any.
            let sensed = events
                .iter()
                .copied()
                .filter(|e| node_pos.distance_to(*e) <= self.config.sensing_radius)
                .min_by(|a, b| {
                    node_pos
                        .distance_sq(*a)
                        .total_cmp(&node_pos.distance_sq(*b))
                });
            let ctx = self.context_for(node, sensed.or_else(|| events.first().copied()));
            let ctx = RoundContext {
                is_event_neighbor: sensed.is_some(),
                event: sensed.or(ctx.event),
                ..ctx
            };
            let claim = self.behaviors[node.index()].located_action(&ctx, &mut self.rng);
            if let Some(claim) = claim {
                if self.deliver(node) {
                    // Encode as the paper's (r, θ) relative report.
                    let polar = node_pos.polar_to(claim);
                    delivered.push(EventReport::located(node, now, polar));
                }
            }
        }
        self.round += 1;

        // The CH resolves relative claims to absolute points.
        let reports: Vec<LocatedReport> = delivered
            .iter()
            .map(|r| {
                let origin = self.topo.position(r.reporter);
                let ReportPayload::Location(polar) = r.payload else {
                    unreachable!("located rounds produce located reports");
                };
                LocatedReport::new(r.reporter, polar.resolve_from(origin))
            })
            .collect();

        let mut declared = Vec::new();
        if !reports.is_empty() {
            let round = self.engine.located_round(
                &self.topo,
                self.config.sensing_radius,
                self.config.r_error,
                &reports,
            );
            for &(node, judgement) in &round.judgements {
                self.behaviors[node.index()].observe_judgement(judgement);
            }
            declared = round.declared_locations();
        }
        LocatedRoundResult {
            events: events.to_vec(),
            declared,
            delivered_reports: reports,
        }
    }

    fn deliver(&mut self, from: NodeId) -> bool {
        let from_pos = self.topo.position(from);
        self.channel
            .delivers(from_pos, self.config.ch_position, &mut self.rng)
    }
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("nodes", &self.topo.len())
            .field("engine", &self.engine.name())
            .field("round", &self.round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
    use tibfit_core::engine::{BaselineEngine, TibfitEngine};
    use tibfit_core::trust::TrustParams;
    use tibfit_net::channel::{BernoulliLoss, Perfect};

    fn binary_sim(n_faulty: usize, engine: Box<dyn Aggregator>) -> ClusterSim {
        let topo = Topology::single_cluster(10, 5.0);
        let ch = Point::new(topo.width() / 2.0, topo.height() / 2.0);
        let behaviors: Vec<Box<dyn NodeBehavior>> = (0..10)
            .map(|i| -> Box<dyn NodeBehavior> {
                if i < n_faulty {
                    Box::new(Level0Node::new(Level0Config::experiment1(0.0)))
                } else {
                    Box::new(CorrectNode::new(0.0, 0.0))
                }
            })
            .collect();
        ClusterSim::new(
            ClusterSimConfig {
                sensing_radius: 20.0,
                r_error: 5.0,
                ch_position: ch,
            },
            topo,
            behaviors,
            Box::new(Perfect),
            engine,
            SimRng::seed_from(17),
        )
    }

    #[test]
    fn all_correct_nodes_always_detect() {
        let engine = Box::new(TibfitEngine::new(TrustParams::experiment1(0.0), 10));
        let mut sim = binary_sim(0, engine);
        for _ in 0..50 {
            let r = sim.run_binary_round(true);
            assert!(r.correct());
            assert_eq!(r.reporters.len(), 10);
        }
    }

    #[test]
    fn silence_on_no_event_rounds() {
        let engine = Box::new(TibfitEngine::new(TrustParams::experiment1(0.0), 10));
        let mut sim = binary_sim(0, engine);
        let r = sim.run_binary_round(false);
        assert!(!r.decision_ran);
        assert!(r.correct());
    }

    #[test]
    fn tibfit_beats_baseline_at_70_percent_faulty() {
        let run = |engine: Box<dyn Aggregator>| -> f64 {
            let mut sim = binary_sim(7, engine);
            let mut hits = 0;
            let n = 200;
            for _ in 0..n {
                if sim.run_binary_round(true).correct() {
                    hits += 1;
                }
            }
            hits as f64 / n as f64
        };
        let tibfit = run(Box::new(TibfitEngine::new(TrustParams::experiment1(0.0), 10)));
        let baseline = run(Box::new(BaselineEngine::new()));
        assert!(
            tibfit > baseline,
            "TIBFIT {tibfit} should beat baseline {baseline}"
        );
        assert!(tibfit > 0.85, "TIBFIT accuracy too low: {tibfit}");
    }

    #[test]
    fn trust_of_faulty_nodes_decays_in_sim() {
        let engine = Box::new(TibfitEngine::new(TrustParams::experiment1(0.0), 10));
        let mut sim = binary_sim(3, engine);
        for _ in 0..100 {
            sim.run_binary_round(true);
        }
        for i in 0..3 {
            let t = sim.trust_of(NodeId(i)).unwrap();
            assert!(t < 0.5, "faulty node {i} trust {t}");
        }
        for i in 3..10 {
            let t = sim.trust_of(NodeId(i)).unwrap();
            assert!(t > 0.9, "correct node {i} trust {t}");
        }
    }

    fn located_sim(n_faulty: usize, engine: Box<dyn Aggregator>, seed: u64) -> ClusterSim {
        let topo = Topology::uniform_grid(100, 100.0, 100.0);
        let behaviors: Vec<Box<dyn NodeBehavior>> = (0..100)
            .map(|i| -> Box<dyn NodeBehavior> {
                if i < n_faulty {
                    Box::new(Level0Node::new(Level0Config::experiment2(6.0)))
                } else {
                    Box::new(CorrectNode::new(0.0, 1.6))
                }
            })
            .collect();
        ClusterSim::new(
            ClusterSimConfig {
                sensing_radius: 20.0,
                r_error: 5.0,
                ch_position: Point::new(50.0, 50.0),
            },
            topo,
            behaviors,
            Box::new(BernoulliLoss::new(0.005)),
            engine,
            SimRng::seed_from(seed),
        )
    }

    #[test]
    fn located_round_detects_event_with_honest_network() {
        let engine = Box::new(TibfitEngine::new(TrustParams::experiment2(), 100));
        let mut sim = located_sim(0, engine, 3);
        let mut detected = 0;
        let n = 50;
        let mut rng = SimRng::seed_from(99);
        for _ in 0..n {
            let event = sim.topology().random_event_location(&mut rng);
            let r = sim.run_located_round(&[event]);
            detected += r.detected_within(5.0);
        }
        assert!(
            detected as f64 / n as f64 > 0.9,
            "honest network detected only {detected}/{n}"
        );
    }

    #[test]
    fn located_round_reports_travel_as_polar() {
        // With zero noise the resolved report equals the event exactly,
        // proving the (r, θ) encode/decode path works end to end.
        let topo = Topology::uniform_grid(100, 100.0, 100.0);
        let behaviors: Vec<Box<dyn NodeBehavior>> = (0..100)
            .map(|_| -> Box<dyn NodeBehavior> { Box::new(CorrectNode::new(0.0, 0.0)) })
            .collect();
        let mut sim = ClusterSim::new(
            ClusterSimConfig {
                sensing_radius: 20.0,
                r_error: 5.0,
                ch_position: Point::new(50.0, 50.0),
            },
            topo,
            behaviors,
            Box::new(Perfect),
            Box::new(TibfitEngine::new(TrustParams::experiment2(), 100)),
            SimRng::seed_from(4),
        );
        let event = Point::new(50.0, 50.0);
        let r = sim.run_located_round(&[event]);
        assert!(!r.delivered_reports.is_empty());
        for rep in &r.delivered_reports {
            assert!(rep.location.distance_to(event) < 1e-9);
        }
    }

    #[test]
    fn concurrent_events_both_detected() {
        let engine = Box::new(TibfitEngine::new(TrustParams::experiment2(), 100));
        let mut sim = located_sim(0, engine, 5);
        let events = [Point::new(25.0, 25.0), Point::new(75.0, 75.0)];
        let r = sim.run_located_round(&events);
        assert_eq!(r.detected_within(5.0), 2);
        assert_eq!(r.false_positives(5.0), 0);
    }

    #[test]
    fn set_behavior_flips_node_role() {
        let engine = Box::new(TibfitEngine::new(TrustParams::experiment1(0.0), 10));
        let mut sim = binary_sim(0, engine);
        // Turn node 0 into a guaranteed misser.
        sim.set_behavior(
            NodeId(0),
            Box::new(Level0Node::new(Level0Config {
                missed_alarm: 1.0,
                false_alarm: 0.0,
                loc_sigma: 0.0,
                drop_prob: 0.0,
            })),
        );
        let r = sim.run_binary_round(true);
        assert!(!r.reporters.contains(&NodeId(0)));
        assert_eq!(r.reporters.len(), 9);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let mk = || {
            let engine = Box::new(TibfitEngine::new(TrustParams::experiment1(0.01), 10));
            binary_sim(4, engine)
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..50 {
            assert_eq!(a.run_binary_round(true), b.run_binary_round(true));
        }
    }

    #[test]
    #[should_panic(expected = "one behavior per node")]
    fn behavior_count_must_match() {
        let topo = Topology::single_cluster(3, 5.0);
        let _ = ClusterSim::new(
            ClusterSimConfig {
                sensing_radius: 20.0,
                r_error: 5.0,
                ch_position: Point::new(1.0, 1.0),
            },
            topo,
            vec![Box::new(CorrectNode::new(0.0, 0.0))],
            Box::new(Perfect),
            Box::new(BaselineEngine::new()),
            SimRng::seed_from(0),
        );
    }
}
