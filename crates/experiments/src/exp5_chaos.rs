//! Experiment 5 (extension): chaos — infrastructure faults with and
//! without recovery.
//!
//! The paper's experiments stress TIBFIT with *data* faults only; every
//! node is always up, every report arrives, and the trust table is
//! immortal. This experiment injects the infrastructure faults a real
//! deployment faces — node crashes and reboots, the cluster head dying
//! mid-round, bursty channel loss, reports delayed past `T_out`, and
//! trust-table loss at a handoff — from a seed-reproducible
//! [`FaultPlan`], and measures two things as fault intensity grows:
//!
//! * **accuracy** — the fraction of ground-truth events whose final
//!   base-station conclusion is correct;
//! * **time to recover** — mean event rounds from a fault firing until
//!   the next correct conclusion.
//!
//! Each metric is taken twice: with the recovery paths on (shadow-CH
//! failover, bounded report retransmission, trust re-sync from the last
//! handoff snapshot, quarantine-then-probation reintegration) and with
//! them off. The gap between the two curves is the measured value of
//! the machinery.

use crate::report::FigureData;
use tibfit_core::lifecycle::{ClusterLifecycle, LifecycleConfig};
use tibfit_core::location::LocatedReport;
use tibfit_faults::{FaultInjector, FaultKind, FaultPlan};
use tibfit_net::channel::{ChannelModel, GilbertElliott};
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;
use tibfit_sim::trace::Trace;
use tibfit_sim::{Duration, SimTime};

/// Parameters for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct Exp5Config {
    /// Cluster size.
    pub n_nodes: usize,
    /// Field side.
    pub field: f64,
    /// Ground-truth event rounds per run.
    pub events: u64,
    /// Virtual ticks between event rounds (the injector's clock).
    pub round_interval: Duration,
    /// Master switch for every recovery path.
    pub recovery: bool,
    /// Retransmission attempts per lost report when recovery is on.
    pub max_retries: u32,
    /// Event rounds a rebooted node misbehaves before stabilising
    /// (cold sensors after a crash — what drives it into quarantine).
    pub flaky_rounds: u64,
    /// TI below which a node is quarantined.
    pub isolation_threshold: f64,
    /// Quarantine length in event rounds (recovery on).
    pub quarantine_rounds: u64,
    /// Probation length in event rounds (recovery on).
    pub probation_rounds: u64,
    /// Event rounds the cluster is headless after a CH crash when
    /// recovery is off (waiting out the LEACH period instead of failing
    /// over to a shadow).
    pub ch_outage_rounds: u64,
}

impl Exp5Config {
    /// Defaults: a 25-node cluster, 300 event rounds at 100-tick
    /// spacing (a 30k-tick horizon for the fault plan).
    #[must_use]
    pub fn default_scale(recovery: bool) -> Self {
        Exp5Config {
            n_nodes: 25,
            field: 50.0,
            events: 300,
            round_interval: Duration::from_ticks(100),
            recovery,
            max_retries: 3,
            flaky_rounds: 8,
            isolation_threshold: 0.5,
            quarantine_rounds: 10,
            probation_rounds: 5,
            ch_outage_rounds: 5,
        }
    }

    /// The fault-plan horizon implied by the run length.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.round_interval * (self.events + 1)
    }
}

/// Aggregate results of one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct Exp5Outcome {
    /// Fraction of event rounds with a correct final conclusion.
    pub accuracy: f64,
    /// Mean event rounds from a fault firing to the next correct
    /// conclusion (0 when no faults fired).
    pub mean_recovery_rounds: f64,
    /// Faults handed out by the injector.
    pub faults_injected: usize,
    /// Shadow-CH failovers performed.
    pub failovers: u64,
    /// Report retransmission attempts.
    pub retries: u64,
    /// Nodes that completed probation and regained full standing.
    pub reintegrated: u64,
}

/// A chaos run's outcome plus its full trace (the replay-determinism
/// tests compare `trace.render()` byte for byte).
#[derive(Debug)]
pub struct ChaosRun {
    /// The measured outcome.
    pub outcome: Exp5Outcome,
    /// Structured trace with the `fault.injected`, `failover.count`,
    /// `retry.count`, `quarantine.reintegrated`, `crash.injected`, and
    /// `resume.count` counters.
    pub trace: Trace,
}

/// Runs one chaos simulation against an explicit fault plan.
///
/// Same `(config, plan, seed)` → identical [`Exp5Outcome`] and
/// byte-identical `trace.render()`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_exp5(config: &Exp5Config, plan: &FaultPlan, seed: u64) -> ChaosRun {
    let topo = Topology::uniform_grid(config.n_nodes, config.field, config.field);
    let mut lifecycle_config = LifecycleConfig::paper();
    lifecycle_config.leach.shadow_count = 2;
    let mut cluster = ClusterLifecycle::new(lifecycle_config, topo);
    if config.recovery {
        cluster.enable_reintegration(
            config.isolation_threshold,
            config.quarantine_rounds,
            config.probation_rounds,
        );
    }
    let mut rng = SimRng::seed_from(seed);
    let mut event_rng = rng.fork(0xE5);
    let channel = GilbertElliott::paper_ambient();
    let mut injector = FaultInjector::new(plan.clone());
    let mut trace = Trace::enabled(4096);

    let r_s = lifecycle_config.sensing_radius;
    let r_error = lifecycle_config.r_error;

    // Fault side-effects the driver tracks between rounds.
    let mut pending_reboots: Vec<(SimTime, NodeId)> = Vec::new();
    let mut flaky: Vec<u64> = vec![0; config.n_nodes];
    let mut burst_until: Option<SimTime> = None;
    let mut delay_until: Option<SimTime> = None;
    let mut headless_rounds: u64 = 0;
    let mut open_faults: Vec<u64> = Vec::new();
    let mut total_recovery_rounds: u64 = 0;
    let mut recovered_faults: u64 = 0;

    let mut correct = 0u64;
    for round_idx in 0..config.events {
        let now = SimTime::ZERO + config.round_interval * (round_idx + 1);

        // Reboots come back first (a node can crash again the same round).
        pending_reboots.retain(|&(at, node)| {
            if at <= now {
                cluster.reboot_node(node);
                flaky[node.index()] = config.flaky_rounds;
                trace.record(now, "reboot", format!("{node} back online"));
                false
            } else {
                true
            }
        });
        if burst_until.is_some_and(|t| t <= now) {
            channel.release();
            burst_until = None;
            trace.record(now, "channel", "burst over");
        }
        if delay_until.is_some_and(|t| t <= now) {
            delay_until = None;
            trace.record(now, "channel", "delay window over");
        }

        // Inject every fault due this round.
        for fault in injector.due(now) {
            trace.count("fault.injected");
            trace.record(now, "fault", fault.kind.label().to_string());
            open_faults.push(round_idx);
            match fault.kind {
                FaultKind::NodeCrash { node, reboot_after } => {
                    cluster.crash_node(node);
                    if let Some(after) = reboot_after {
                        pending_reboots.push((now + after, node));
                    }
                }
                FaultKind::ChCrash => {
                    let head = cluster.current_head(&mut rng);
                    cluster.crash_node(head);
                    if config.recovery {
                        // Shadow-CH failover: no headless rounds.
                        let new_head = cluster.fail_over(&mut rng);
                        trace.record(now, "failover", format!("{head} -> {new_head}"));
                    } else {
                        // Wait out the LEACH period; re-election happens
                        // when the outage ends.
                        headless_rounds = headless_rounds.max(config.ch_outage_rounds);
                    }
                }
                FaultKind::BurstLoss { duration } => {
                    channel.force_bad();
                    burst_until = Some(now + duration);
                }
                FaultKind::ReportDelay { duration, .. } => {
                    delay_until = Some(now + duration);
                }
                FaultKind::TrustTableLoss => {
                    cluster.lose_trust_table();
                    if config.recovery && cluster.resync_trust_from_handoff() {
                        trace.record(now, "resync", "trust restored from handoff");
                    }
                }
                FaultKind::CrashAt => {
                    // The whole engine process dies between rounds.
                    trace.count("crash.injected");
                    if config.recovery {
                        // Restored from the latest checkpoint
                        // (crate::checkpoint): trust, diagnosis state,
                        // and RNG streams all survive, so the round
                        // replays as if the crash never happened.
                        trace.count("resume.count");
                        trace.record(now, "resume", "restored from checkpoint");
                    } else {
                        // Cold restart: the trust table is gone and the
                        // cluster misses a round while the process
                        // comes back.
                        cluster.lose_trust_table();
                        headless_rounds = headless_rounds.max(1);
                    }
                }
            }
        }

        // Ground truth for this round.
        let event = cluster.topology().random_event_location(&mut event_rng);

        // A headless cluster (recovery off, CH crashed) decides nothing.
        if headless_rounds > 0 {
            headless_rounds -= 1;
            if headless_rounds == 0 {
                // Period rollover: elect a fresh head (not a failover —
                // the slow path the shadows exist to avoid).
                let new_head = cluster.fail_over(&mut rng);
                trace.record(now, "election", format!("late re-election of {new_head}"));
            }
            trace.record(now, "round", "missed: cluster headless");
            continue;
        }

        // Sensing: honest neighbors report the truth; freshly-rebooted
        // (flaky) nodes report garbage until they stabilise.
        let reports: Vec<LocatedReport> = cluster
            .topology()
            .event_neighbors(event, r_s)
            .into_iter()
            .map(|n| {
                let claim = if flaky[n.index()] > 0 {
                    Point::new(event.x + 4.0 * r_error, event.y + 4.0 * r_error)
                } else {
                    event
                };
                LocatedReport::new(n, claim)
            })
            .collect();
        for f in &mut flaky {
            *f = f.saturating_sub(1);
        }

        // Channel: ambient (or burst) loss, delay windows, retries.
        let ch_pos = Point::new(config.field / 2.0, config.field / 2.0);
        let mut delivered: Vec<LocatedReport> = Vec::new();
        for report in reports {
            let from = cluster.topology().position(report.reporter);
            if delay_until.is_some() {
                // Delayed past T_out. With recovery on, the CH's bounded
                // retransmission window picks the report up late.
                if config.recovery && config.max_retries > 0 {
                    trace.count("retry.count");
                    delivered.push(report);
                }
                continue;
            }
            if channel.delivers(from, ch_pos, &mut rng) {
                delivered.push(report);
                continue;
            }
            let mut ok = false;
            if config.recovery {
                for _ in 0..config.max_retries {
                    trace.count("retry.count");
                    if channel.delivers(from, ch_pos, &mut rng) {
                        ok = true;
                        break;
                    }
                }
            }
            if ok {
                delivered.push(report);
            }
        }

        let round = cluster.process_event_round(&delivered, false, &mut rng);
        let reintegrated = cluster.tick_trust_round();
        if !reintegrated.is_empty() {
            trace.count_by("quarantine.reintegrated", reintegrated.len() as u64);
            for n in &reintegrated {
                trace.record(now, "reintegrate", format!("{n} back to full standing"));
            }
        }

        let ok = round
            .ruling
            .final_conclusion
            .location()
            .is_some_and(|l| l.distance_to(event) <= r_error);
        if ok {
            correct += 1;
            for &fault_round in &open_faults {
                total_recovery_rounds += round_idx - fault_round;
                recovered_faults += 1;
            }
            open_faults.clear();
        }
    }

    // Faults never recovered from pay the full remaining run.
    for &fault_round in &open_faults {
        total_recovery_rounds += config.events - fault_round;
        recovered_faults += 1;
    }
    let failovers = cluster.failover_count();
    trace.count_by("failover.count", failovers);

    let outcome = Exp5Outcome {
        accuracy: correct as f64 / config.events as f64,
        mean_recovery_rounds: if recovered_faults == 0 {
            0.0
        } else {
            total_recovery_rounds as f64 / recovered_faults as f64
        },
        faults_injected: injector.injected(),
        failovers,
        retries: trace.counter("retry.count"),
        reintegrated: trace.counter("quarantine.reintegrated"),
    };
    ChaosRun { outcome, trace }
}

/// The fault-intensity sweep.
pub const INTENSITY_SWEEP: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Accuracy vs fault intensity, recovery on vs off.
#[must_use]
pub fn figure_chaos(trials: usize, base_seed: u64) -> FigureData {
    sweep_figure(
        trials,
        base_seed,
        "exp5_chaos",
        "Extension — accuracy under infrastructure faults, recovery on vs off",
        "accuracy",
        |run| run.outcome.accuracy,
    )
}

/// Time-to-recover vs fault intensity, recovery on vs off.
#[must_use]
pub fn figure_recovery_time(trials: usize, base_seed: u64) -> FigureData {
    sweep_figure(
        trials,
        base_seed,
        "exp5_recovery",
        "Extension — mean rounds to recover after a fault, recovery on vs off",
        "mean rounds to recover",
        |run| run.outcome.mean_recovery_rounds,
    )
}

fn sweep_figure(
    trials: usize,
    base_seed: u64,
    name: &str,
    title: &str,
    y_label: &str,
    metric: fn(&ChaosRun) -> f64,
) -> FigureData {
    let mut fig = FigureData::new(name, title, "fault intensity", y_label);
    for recovery in [true, false] {
        let config = Exp5Config::default_scale(recovery);
        let label = if recovery { "recovery on" } else { "recovery off" };
        let mut series = tibfit_sim::stats::Series::new(label);
        let points: Vec<(f64, f64)> = crate::harness::run_parallel(
            INTENSITY_SWEEP
                .iter()
                .flat_map(|&intensity| {
                    crate::harness::trial_seeds(base_seed ^ (intensity * 100.0) as u64, trials)
                        .into_iter()
                        .map(move |s| (intensity, s))
                })
                .collect(),
            move |(intensity, s)| {
                let plan = FaultPlan::random(intensity, s, config.horizon(), config.n_nodes)
                    .expect("sweep intensities are valid");
                let run = run_exp5(&config, &plan, s);
                (intensity, metric(&run))
            },
        );
        for (x, y) in points {
            series.record(x, y);
        }
        fig.series.push(series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(recovery: bool) -> Exp5Config {
        let mut c = Exp5Config::default_scale(recovery);
        c.events = 120;
        c
    }

    #[test]
    fn fault_free_plan_is_a_clean_baseline() {
        let config = quick_config(true);
        let run = run_exp5(&config, &FaultPlan::none(), 7);
        assert_eq!(run.outcome.faults_injected, 0);
        assert_eq!(run.outcome.failovers, 0);
        assert!(
            run.outcome.accuracy > 0.9,
            "fault-free accuracy {}",
            run.outcome.accuracy
        );
        assert_eq!(run.trace.counter("fault.injected"), 0);
    }

    #[test]
    fn identical_seed_and_plan_reproduce_the_trace_byte_for_byte() {
        let config = quick_config(true);
        let plan = FaultPlan::random(0.6, 11, config.horizon(), config.n_nodes).unwrap();
        let a = run_exp5(&config, &plan, 11);
        let b = run_exp5(&config, &plan, 11);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace.render(), b.trace.render());
    }

    #[test]
    fn different_seeds_diverge() {
        let config = quick_config(true);
        let plan = FaultPlan::random(0.6, 11, config.horizon(), config.n_nodes).unwrap();
        let a = run_exp5(&config, &plan, 11);
        let b = run_exp5(&config, &plan, 12);
        assert_ne!(a.trace.render(), b.trace.render());
    }

    #[test]
    fn recovery_counters_appear_in_trace() {
        let config = quick_config(true);
        let plan = FaultPlan::random(0.8, 21, config.horizon(), config.n_nodes).unwrap();
        let run = run_exp5(&config, &plan, 21);
        assert!(run.trace.counter("fault.injected") > 0);
        assert_eq!(
            run.trace.counter("fault.injected") as usize,
            run.outcome.faults_injected
        );
        assert!(run.trace.counter("retry.count") > 0, "no retries fired");
        let rendered = run.trace.render();
        assert!(rendered.contains("fault:"), "faults missing from trace");
    }

    #[test]
    fn recovery_beats_no_recovery_under_heavy_faults() {
        let on = quick_config(true);
        let off = quick_config(false);
        let mut acc_on = 0.0;
        let mut acc_off = 0.0;
        let trials = 3;
        for seed in crate::harness::trial_seeds(31, trials) {
            let plan = FaultPlan::random(0.8, seed, on.horizon(), on.n_nodes).unwrap();
            acc_on += run_exp5(&on, &plan, seed).outcome.accuracy;
            acc_off += run_exp5(&off, &plan, seed).outcome.accuracy;
        }
        assert!(
            acc_on > acc_off,
            "recovery on {acc_on} should beat off {acc_off}"
        );
    }

    #[test]
    fn ch_crash_failover_stays_within_5pct_of_fault_free() {
        // The acceptance bar: a CH crash handled by shadow failover
        // costs less than five accuracy points against a no-fault run.
        let config = quick_config(true);
        let baseline = run_exp5(&config, &FaultPlan::none(), 17);
        let crash_plan = FaultPlan::from_faults(vec![
            tibfit_faults::ScheduledFault {
                at: SimTime::from_ticks(3_000),
                kind: FaultKind::ChCrash,
            },
            tibfit_faults::ScheduledFault {
                at: SimTime::from_ticks(7_000),
                kind: FaultKind::ChCrash,
            },
        ])
        .unwrap();
        let crashed = run_exp5(&config, &crash_plan, 17);
        assert_eq!(crashed.outcome.failovers, 2);
        assert!(
            baseline.outcome.accuracy - crashed.outcome.accuracy < 0.05,
            "failover lost too much: {} vs {}",
            baseline.outcome.accuracy,
            crashed.outcome.accuracy
        );
    }

    #[test]
    fn crash_with_recovery_resumes_without_losing_accuracy() {
        let config = quick_config(true);
        let baseline = run_exp5(&config, &FaultPlan::none(), 19);
        let crash_plan = FaultPlan::from_faults(vec![
            tibfit_faults::ScheduledFault {
                at: SimTime::from_ticks(4_000),
                kind: FaultKind::CrashAt,
            },
            tibfit_faults::ScheduledFault {
                at: SimTime::from_ticks(9_000),
                kind: FaultKind::CrashAt,
            },
        ])
        .unwrap();
        let crashed = run_exp5(&config, &crash_plan, 19);
        assert_eq!(crashed.trace.counter("crash.injected"), 2);
        assert_eq!(crashed.trace.counter("resume.count"), 2);
        // Restore-from-checkpoint replays the round: a crash with
        // recovery on costs nothing measurable.
        assert!(
            baseline.outcome.accuracy - crashed.outcome.accuracy < 0.03,
            "checkpoint resume lost accuracy: {} vs {}",
            baseline.outcome.accuracy,
            crashed.outcome.accuracy
        );

        // Without recovery the same crashes cost the trust table and a
        // missed round each — resume never fires.
        let cold = run_exp5(&quick_config(false), &crash_plan, 19);
        assert_eq!(cold.trace.counter("crash.injected"), 2);
        assert_eq!(cold.trace.counter("resume.count"), 0);
    }

    #[test]
    fn figures_cover_the_sweep() {
        let fig = figure_chaos(1, 3);
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.len(), INTENSITY_SWEEP.len());
        }
    }
}
