//! Multi-cluster deployments.
//!
//! Table 2 of the paper lists "100 sensing nodes, 5 CH", although the
//! simulation text then treats the network as one logical cluster whose
//! head knows every position. This module implements the real 5-CH
//! arrangement: nodes affiliate with the nearest cluster head, each head
//! keeps its *own* trust table over its members and decides events from
//! its members' reports only, and the base station merges the per-cluster
//! conclusions (union of declared events, de-duplicated within
//! `r_error`).
//!
//! Events near cluster boundaries are the interesting case: each head
//! sees only a fragment of the event's neighborhood, so a fragment's vote
//! can fail where the whole neighborhood's would have succeeded — the
//! price of partitioned state. The tests quantify that price and check it
//! stays small for the paper's parameters.

use tibfit_adversary::behavior::{NodeBehavior, RoundContext};
use tibfit_core::engine::{Aggregator, TibfitEngine};
use tibfit_core::location::LocatedReport;
use tibfit_core::trust::TrustParams;
use tibfit_net::channel::ChannelModel;
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;

/// Configuration of a multi-cluster deployment.
#[derive(Debug, Clone, Copy)]
pub struct MultiClusterConfig {
    /// Sensing radius `r_s`.
    pub sensing_radius: f64,
    /// Localization tolerance `r_error`.
    pub r_error: f64,
    /// Trust parameters for every cluster head's table.
    pub trust: TrustParams,
}

impl MultiClusterConfig {
    /// Table-2 values.
    #[must_use]
    pub fn paper() -> Self {
        MultiClusterConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            trust: TrustParams::experiment2(),
        }
    }
}

/// The paper's five cluster-head sites on a square field: the center and
/// the four quadrant centers.
#[must_use]
pub fn five_ch_sites(field: f64) -> Vec<Point> {
    let q = field / 4.0;
    vec![
        Point::new(2.0 * q, 2.0 * q),
        Point::new(q, q),
        Point::new(3.0 * q, q),
        Point::new(q, 3.0 * q),
        Point::new(3.0 * q, 3.0 * q),
    ]
}

/// One cluster: its head position, member set, and local engine.
struct Cluster {
    head_position: Point,
    /// Global ids of the members, in local-index order.
    members: Vec<NodeId>,
    /// Sub-topology over the members (local ids `0..members.len()`).
    local_topo: Topology,
    engine: TibfitEngine,
}

/// Result of one event round across all clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundResult {
    /// Ground truth.
    pub event: Point,
    /// Event locations the base station accepted after merging.
    pub declared: Vec<Point>,
    /// Which clusters contributed a matching declaration.
    pub declaring_clusters: Vec<usize>,
}

impl MultiRoundResult {
    /// Whether the event was detected within `r_error`.
    #[must_use]
    pub fn detected_within(&self, r_error: f64) -> bool {
        self.declared
            .iter()
            .any(|d| d.distance_to(self.event) <= r_error)
    }
}

/// A network of several TIBFIT clusters under one base station.
pub struct MultiClusterSim {
    config: MultiClusterConfig,
    topo: Topology,
    clusters: Vec<Cluster>,
    /// Node → cluster index.
    affiliation: Vec<usize>,
    behaviors: Vec<Box<dyn NodeBehavior>>,
    channel: Box<dyn ChannelModel>,
    rng: SimRng,
    round: u64,
}

impl MultiClusterSim {
    /// Builds the deployment: every node affiliates with the nearest head
    /// (LEACH's strongest-signal rule for free-space radio).
    ///
    /// # Panics
    ///
    /// Panics if `ch_sites` is empty, `behaviors` doesn't match the
    /// topology, or any cluster ends up empty.
    #[must_use]
    pub fn new(
        config: MultiClusterConfig,
        topo: Topology,
        ch_sites: Vec<Point>,
        behaviors: Vec<Box<dyn NodeBehavior>>,
        channel: Box<dyn ChannelModel>,
        rng: SimRng,
    ) -> Self {
        assert!(!ch_sites.is_empty(), "need at least one cluster head");
        assert_eq!(behaviors.len(), topo.len(), "one behavior per node");
        let affiliation: Vec<usize> = topo
            .iter()
            .map(|(_, pos)| {
                ch_sites
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        pos.distance_to(**a)
                            .partial_cmp(&pos.distance_to(**b))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty sites")
            })
            .collect();

        let clusters: Vec<Cluster> = ch_sites
            .iter()
            .enumerate()
            .map(|(ci, &head_position)| {
                let members: Vec<NodeId> = topo
                    .node_ids()
                    .filter(|n| affiliation[n.index()] == ci)
                    .collect();
                assert!(
                    !members.is_empty(),
                    "cluster {ci} at {head_position} has no members"
                );
                let positions: Vec<Point> =
                    members.iter().map(|&n| topo.position(n)).collect();
                let local_topo =
                    Topology::from_positions(positions, topo.width(), topo.height());
                Cluster {
                    head_position,
                    engine: TibfitEngine::new(config.trust, members.len()),
                    members,
                    local_topo,
                }
            })
            .collect();

        MultiClusterSim {
            config,
            topo,
            clusters,
            affiliation,
            behaviors,
            channel,
            rng,
            round: 0,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster a node belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn cluster_of(&self, node: NodeId) -> usize {
        self.affiliation[node.index()]
    }

    /// The trust its own head currently assigns a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn trust_of(&self, node: NodeId) -> f64 {
        let ci = self.affiliation[node.index()];
        let cluster = &self.clusters[ci];
        let local = cluster
            .members
            .iter()
            .position(|&m| m == node)
            .expect("member of its own cluster");
        cluster
            .engine
            .trust_of(NodeId(local))
            .expect("TIBFIT keeps trust")
    }

    /// Runs one event round: nodes act, reports go to their own heads,
    /// each head decides from its fragment, the base station merges.
    pub fn run_event(&mut self, event: Point) -> MultiRoundResult {
        self.round += 1;
        let round = self.round;
        // Collect per-cluster report batches (local ids).
        let mut batches: Vec<Vec<LocatedReport>> =
            (0..self.clusters.len()).map(|_| Vec::new()).collect();
        for idx in 0..self.topo.len() {
            let node = NodeId(idx);
            let node_pos = self.topo.position(node);
            let is_neighbor =
                node_pos.distance_to(event) <= self.config.sensing_radius;
            let ctx = RoundContext {
                round,
                node,
                node_pos,
                event: Some(event),
                is_event_neighbor: is_neighbor,
            };
            let Some(claim) = self.behaviors[node.index()].located_action(&ctx, &mut self.rng)
            else {
                continue;
            };
            let ci = self.affiliation[node.index()];
            let head_pos = self.clusters[ci].head_position;
            if self.channel.delivers(node_pos, head_pos, &mut self.rng) {
                let local = self.clusters[ci]
                    .members
                    .iter()
                    .position(|&m| m == node)
                    .expect("member of its own cluster");
                batches[ci].push(LocatedReport::new(NodeId(local), claim));
            }
        }

        // Each head decides independently; judgements feed back to the
        // (globally indexed) behaviors.
        let mut declared: Vec<Point> = Vec::new();
        let mut declaring_clusters = Vec::new();
        for (ci, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let cluster = &mut self.clusters[ci];
            let result = cluster.engine.located_round(
                &cluster.local_topo,
                self.config.sensing_radius,
                self.config.r_error,
                batch,
            );
            for &(local, judgement) in &result.judgements {
                let global = cluster.members[local.index()];
                self.behaviors[global.index()].observe_judgement(judgement);
            }
            for loc in result.declared_locations() {
                declaring_clusters.push(ci);
                declared.push(loc);
            }
        }

        // Base-station merge: de-duplicate declarations within r_error.
        let mut merged: Vec<Point> = Vec::new();
        for d in declared {
            if let Some(existing) = merged
                .iter_mut()
                .find(|m| m.distance_to(d) <= self.config.r_error)
            {
                // Average agreeing declarations.
                *existing = Point::new((existing.x + d.x) / 2.0, (existing.y + d.y) / 2.0);
            } else {
                merged.push(d);
            }
        }
        MultiRoundResult {
            event,
            declared: merged,
            declaring_clusters,
        }
    }
}

impl std::fmt::Debug for MultiClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiClusterSim")
            .field("nodes", &self.topo.len())
            .field("clusters", &self.clusters.len())
            .field("round", &self.round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
    use tibfit_net::channel::BernoulliLoss;

    fn build(n_faulty: usize, seed: u64) -> MultiClusterSim {
        let topo = Topology::uniform_grid(100, 100.0, 100.0);
        let faulty = SimRng::seed_from(seed ^ 0xAA).choose_indices(100, n_faulty);
        let behaviors: Vec<Box<dyn NodeBehavior>> = (0..100)
            .map(|i| -> Box<dyn NodeBehavior> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, 1.6))
                }
            })
            .collect();
        MultiClusterSim::new(
            MultiClusterConfig::paper(),
            topo,
            five_ch_sites(100.0),
            behaviors,
            Box::new(BernoulliLoss::new(0.005)),
            SimRng::seed_from(seed),
        )
    }

    #[test]
    fn five_clusters_partition_all_nodes() {
        let sim = build(0, 1);
        assert_eq!(sim.cluster_count(), 5);
        let mut counts = [0usize; 5];
        for i in 0..100 {
            counts[sim.cluster_of(NodeId(i))] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 100);
        for (ci, c) in counts.iter().enumerate() {
            assert!(*c > 0, "cluster {ci} empty");
        }
    }

    #[test]
    fn affiliation_is_nearest_head() {
        let sim = build(0, 2);
        let sites = five_ch_sites(100.0);
        for (node, pos) in sim.topo.iter() {
            let assigned = sim.cluster_of(node);
            let d_assigned = pos.distance_to(sites[assigned]);
            for s in &sites {
                assert!(d_assigned <= pos.distance_to(*s) + 1e-9);
            }
        }
    }

    #[test]
    fn interior_events_detected() {
        let mut sim = build(0, 3);
        // An event deep inside a quadrant — one cluster owns most of the
        // neighborhood.
        let result = sim.run_event(Point::new(25.0, 25.0));
        assert!(result.detected_within(5.0));
    }

    #[test]
    fn boundary_events_recovered_by_merge() {
        let mut sim = build(0, 4);
        // Dead center of the field: the neighborhood is split across all
        // five clusters; the base-station union must still see it.
        let mut hits = 0;
        for dx in [-2.0, 0.0, 2.0] {
            let result = sim.run_event(Point::new(50.0 + dx, 50.0));
            hits += usize::from(result.detected_within(5.0));
        }
        assert!(hits >= 2, "boundary detection too weak: {hits}/3");
    }

    #[test]
    fn sweep_accuracy_close_to_single_cluster() {
        // The partition penalty at 30% faulty should be bounded: within
        // 15 points of the single-cluster driver on the same workload
        // scale.
        let mut sim = build(30, 5);
        let mut event_rng = SimRng::seed_from(55);
        let mut hits = 0usize;
        let n = 200;
        for _ in 0..n {
            let event = sim.topo.random_event_location(&mut event_rng);
            hits += usize::from(sim.run_event(event).detected_within(5.0));
        }
        let acc = hits as f64 / n as f64;
        assert!(acc > 0.8, "multi-cluster accuracy {acc}");
    }

    #[test]
    fn per_cluster_trust_diagnoses_local_liars() {
        let seed = 6;
        let mut sim = build(30, seed);
        let faulty = SimRng::seed_from(seed ^ 0xAA).choose_indices(100, 30);
        let mut event_rng = SimRng::seed_from(66);
        for _ in 0..300 {
            let event = sim.topo.random_event_location(&mut event_rng);
            sim.run_event(event);
        }
        let (mut f_sum, mut f_n, mut h_sum, mut h_n) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..100 {
            let t = sim.trust_of(NodeId(i));
            if faulty.contains(&i) {
                f_sum += t;
                f_n += 1.0;
            } else {
                h_sum += t;
                h_n += 1.0;
            }
        }
        assert!(
            f_sum / f_n < h_sum / h_n,
            "faulty mean {} !< honest mean {}",
            f_sum / f_n,
            h_sum / h_n
        );
    }

    #[test]
    fn run_is_deterministic() {
        let mut a = build(20, 9);
        let mut b = build(20, 9);
        for i in 0..20 {
            let event = Point::new(10.0 + 4.0 * i as f64, 50.0);
            assert_eq!(a.run_event(event), b.run_event(event));
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster head")]
    fn rejects_empty_sites() {
        let topo = Topology::uniform_grid(4, 10.0, 10.0);
        let behaviors: Vec<Box<dyn NodeBehavior>> = (0..4)
            .map(|_| -> Box<dyn NodeBehavior> { Box::new(CorrectNode::new(0.0, 0.0)) })
            .collect();
        let _ = MultiClusterSim::new(
            MultiClusterConfig::paper(),
            topo,
            Vec::new(),
            behaviors,
            Box::new(BernoulliLoss::new(0.0)),
            SimRng::seed_from(0),
        );
    }
}
