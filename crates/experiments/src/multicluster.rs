//! Multi-cluster deployments.
//!
//! Table 2 of the paper lists "100 sensing nodes, 5 CH", although the
//! simulation text then treats the network as one logical cluster whose
//! head knows every position. This module implements the real 5-CH
//! arrangement: nodes affiliate with the nearest cluster head, each head
//! keeps its *own* trust table over its members and decides events from
//! its members' reports only, and the base station merges the per-cluster
//! conclusions (union of declared events, de-duplicated within
//! `r_error`).
//!
//! Events near cluster boundaries are the interesting case: each head
//! sees only a fragment of the event's neighborhood, so a fragment's vote
//! can fail where the whole neighborhood's would have succeeded — the
//! price of partitioned state. The tests quantify that price and check it
//! stays small for the paper's parameters.
//!
//! ## Ownership and determinism
//!
//! Every cluster is a self-contained [`ClusterState`]: it owns its
//! members' behaviours, its channel instance, its trust table, and its
//! own RNG stream derived as `SimRng::stream(master_seed, cluster_index)`.
//! Nothing a cluster does consumes another cluster's stream, so the
//! per-round result is a pure function of `(master_seed, cluster
//! composition, event sequence)` — which is exactly what lets the sharded
//! engine in [`crate::sharded`] run clusters on worker threads and still
//! reproduce this sequential reference bit-for-bit. The differential
//! suite (`tests/differential_shards.rs`) pins that equivalence.
//!
//! With [`MultiClusterConfig::mobile`], nodes drift each round (Gaussian
//! step from the owning cluster's stream) and affiliation is re-evaluated
//! every `reelect_every` rounds: a node now nearest a different head is
//! handed off — fault counter, diagnosis state, and behaviour move with
//! it, so a liar cannot launder its record by crossing a border.

use tibfit_adversary::behavior::{BehaviorSnapshot, NodeBehavior, RoundContext};
use tibfit_core::engine::{Aggregator, TibfitEngine};
use tibfit_core::location::LocatedReport;
use tibfit_core::trust::{TrustParams, TrustRecord, TrustTable, TrustTableState};
use tibfit_net::channel::{ChannelModel, ChannelSnapshot};
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, SiteIndex, SiteLattice, Topology};
use tibfit_sim::rng::{RngState, SimRng};
use tibfit_sim::snapshot::SnapshotError;
use tibfit_sim::trace::{CounterId, Trace};

/// Configuration of a multi-cluster deployment.
#[derive(Debug, Clone, Copy)]
pub struct MultiClusterConfig {
    /// Sensing radius `r_s`.
    pub sensing_radius: f64,
    /// Localization tolerance `r_error`.
    pub r_error: f64,
    /// Trust parameters for every cluster head's table.
    pub trust: TrustParams,
    /// Per-round Gaussian drift step for node positions (0 = static
    /// deployment, the paper's default).
    pub drift_sigma: f64,
    /// Re-evaluate cluster affiliation every this many rounds, handing
    /// drifted nodes to their new nearest head (0 = never).
    pub reelect_every: u64,
}

impl MultiClusterConfig {
    /// Table-2 values (static deployment, no re-election).
    #[must_use]
    pub fn paper() -> Self {
        MultiClusterConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            trust: TrustParams::experiment2(),
            drift_sigma: 0.0,
            reelect_every: 0,
        }
    }

    /// Enables mobility: nodes drift `sigma` per round and affiliation is
    /// re-evaluated every `reelect_every` rounds.
    #[must_use]
    pub fn mobile(mut self, sigma: f64, reelect_every: u64) -> Self {
        self.drift_sigma = sigma;
        self.reelect_every = reelect_every;
        self
    }

    /// Checks the numeric fields.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: radii must be finite and
    /// strictly positive, drift must be finite and non-negative.
    pub fn validate(&self) -> Result<(), MultiClusterError> {
        if !(self.sensing_radius.is_finite() && self.sensing_radius > 0.0) {
            return Err(MultiClusterError::InvalidSensingRadius(self.sensing_radius));
        }
        if !(self.r_error.is_finite() && self.r_error > 0.0) {
            return Err(MultiClusterError::InvalidErrorRadius(self.r_error));
        }
        if !(self.drift_sigma.is_finite() && self.drift_sigma >= 0.0) {
            return Err(MultiClusterError::InvalidDrift(self.drift_sigma));
        }
        Ok(())
    }
}

/// Why a multi-cluster deployment could not be built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MultiClusterError {
    /// `ch_sites` was empty.
    NoClusterHeads,
    /// The behavior list does not match the topology.
    BehaviorCountMismatch {
        /// Behaviours supplied.
        behaviors: usize,
        /// Nodes deployed.
        nodes: usize,
    },
    /// A cluster-head site attracted no members.
    EmptyCluster {
        /// The memberless cluster's index.
        cluster: usize,
    },
    /// `sensing_radius` was NaN, infinite, or not strictly positive.
    InvalidSensingRadius(f64),
    /// `r_error` was NaN, infinite, or not strictly positive.
    InvalidErrorRadius(f64),
    /// `drift_sigma` was NaN, infinite, or negative.
    InvalidDrift(f64),
}

impl std::fmt::Display for MultiClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiClusterError::NoClusterHeads => write!(f, "need at least one cluster head"),
            MultiClusterError::BehaviorCountMismatch { behaviors, nodes } => write!(
                f,
                "one behavior per node: got {behaviors} behaviors for {nodes} nodes"
            ),
            MultiClusterError::EmptyCluster { cluster } => {
                write!(f, "cluster {cluster} has no members")
            }
            MultiClusterError::InvalidSensingRadius(x) => {
                write!(f, "sensing radius must be positive and finite, got {x}")
            }
            MultiClusterError::InvalidErrorRadius(x) => {
                write!(f, "r_error must be positive and finite, got {x}")
            }
            MultiClusterError::InvalidDrift(x) => {
                write!(f, "drift sigma must be non-negative and finite, got {x}")
            }
        }
    }
}

impl std::error::Error for MultiClusterError {}

/// The paper's five cluster-head sites on a square field: the center and
/// the four quadrant centers.
#[must_use]
pub fn five_ch_sites(field: f64) -> Vec<Point> {
    let q = field / 4.0;
    vec![
        Point::new(2.0 * q, 2.0 * q),
        Point::new(q, q),
        Point::new(3.0 * q, q),
        Point::new(q, 3.0 * q),
        Point::new(3.0 * q, 3.0 * q),
    ]
}

/// `k` cluster-head sites on the smallest square grid covering them —
/// the scale-sweep generalization of [`five_ch_sites`] used by exp6.
///
/// # Panics
///
/// Panics if `k == 0` or `field` is not strictly positive.
#[must_use]
pub fn grid_sites(k: usize, field: f64) -> Vec<Point> {
    assert!(k > 0, "need at least one site");
    assert!(field > 0.0, "field must be positive");
    let cols = (k as f64).sqrt().ceil() as usize;
    let rows = k.div_ceil(cols);
    let dx = field / cols as f64;
    let dy = field / rows as f64;
    let mut sites = Vec::with_capacity(k);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if sites.len() == k {
                break 'outer;
            }
            sites.push(Point::new((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dy));
        }
    }
    sites
}

/// A node changing clusters: its identity, current position, full trust
/// record, and behaviour move together to the destination cluster.
pub(crate) struct Handoff {
    pub(crate) node: NodeId,
    pub(crate) position: Point,
    pub(crate) record: TrustRecord,
    pub(crate) behavior: Box<dyn NodeBehavior + Send>,
    /// Destination cluster index.
    pub(crate) dst: usize,
}

impl std::fmt::Debug for Handoff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handoff")
            .field("node", &self.node)
            .field("position", &self.position)
            .field("dst", &self.dst)
            .finish_non_exhaustive()
    }
}

/// Names of the per-cluster trace counters, in registration order. This
/// doubles as the checkpoint schema for counter values: a
/// [`ClusterCapture`] stores one `u64` per entry, in this order.
pub(crate) const COUNTER_NAMES: [&str; 7] = [
    "reports.delivered",
    "reports.dropped",
    "rounds.decided",
    "events.declared",
    "handoffs.out",
    "handoffs.in",
    "trust.exp_evals",
];

/// Everything a cluster needs to be rebuilt bit-identically: membership,
/// geometry, behaviour snapshots, channel snapshot, RNG state, the full
/// trust-table state (including the cached-TI column, so the restored
/// engine's `exp_evals` evolution matches the original), and the trace
/// counter values.
///
/// Captures exist only at round boundaries, where no timers are in
/// flight and no reports are buffered — so no event-queue section is
/// needed here; the sharded engine asserts that invariant at save time.
#[derive(Debug, Clone)]
pub(crate) struct ClusterCapture {
    pub(crate) index: usize,
    pub(crate) head_position: Point,
    pub(crate) members: Vec<NodeId>,
    pub(crate) positions: Vec<Point>,
    pub(crate) behaviors: Vec<BehaviorSnapshot>,
    pub(crate) channel: ChannelSnapshot,
    pub(crate) rng: RngState,
    pub(crate) trust: TrustTableState,
    /// Values of the counters in [`COUNTER_NAMES`], same order.
    pub(crate) counters: [u64; COUNTER_NAMES.len()],
}

/// Engine-agnostic capture of a whole deployment at a round boundary.
/// Both [`MultiClusterSim`] and the sharded engine produce this, and
/// either can be rebuilt from it — which is what makes cross-engine
/// restore (snapshot sequential, resume sharded) work.
#[derive(Debug, Clone)]
pub(crate) struct SimCapture {
    pub(crate) config: MultiClusterConfig,
    pub(crate) sites: Vec<Point>,
    pub(crate) clusters: Vec<ClusterCapture>,
    pub(crate) n_nodes: usize,
    pub(crate) round: u64,
    pub(crate) field: (f64, f64),
}

/// One member's full state, as reassembled during a cluster rebuild.
struct MemberSlot {
    node: NodeId,
    position: Point,
    behavior: Box<dyn NodeBehavior + Send>,
    record: TrustRecord,
}

/// One cluster as a self-contained unit: head position, members (global
/// ids, ascending), their positions/behaviours, the head's engine, the
/// cluster's channel instance, its private RNG stream, and its trace.
///
/// Both the sequential [`MultiClusterSim`] and the sharded engine run
/// rounds through this type's methods, so any behavioural difference
/// between the two can only come from orchestration — which is exactly
/// what the differential suite isolates.
pub(crate) struct ClusterState {
    pub(crate) index: usize,
    head_position: Point,
    /// Global ids, ascending; local id = position in this vector.
    members: Vec<NodeId>,
    /// Current member positions (drift updates these), local-id order.
    positions: Vec<Point>,
    local_topo: Topology,
    engine: TibfitEngine,
    behaviors: Vec<Box<dyn NodeBehavior + Send>>,
    channel: Box<dyn ChannelModel + Send>,
    pub(crate) rng: SimRng,
    trace: Trace,
    c_delivered: CounterId,
    c_dropped: CounterId,
    c_decided: CounterId,
    c_declared: CounterId,
    c_handoff_out: CounterId,
    c_handoff_in: CounterId,
    c_exp_evals: CounterId,
    config: MultiClusterConfig,
    field_w: f64,
    field_h: f64,
}

impl ClusterState {
    #[allow(clippy::too_many_arguments)]
    fn new(
        index: usize,
        head_position: Point,
        members: Vec<NodeId>,
        positions: Vec<Point>,
        config: MultiClusterConfig,
        behaviors: Vec<Box<dyn NodeBehavior + Send>>,
        channel: Box<dyn ChannelModel + Send>,
        rng: SimRng,
        field_w: f64,
        field_h: f64,
    ) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
        let local_topo = Topology::from_positions(positions.clone(), field_w, field_h);
        let engine = TibfitEngine::new(config.trust, members.len());
        let mut trace = Trace::disabled();
        let c_delivered = trace.register_counter("reports.delivered");
        let c_dropped = trace.register_counter("reports.dropped");
        let c_decided = trace.register_counter("rounds.decided");
        let c_declared = trace.register_counter("events.declared");
        let c_handoff_out = trace.register_counter("handoffs.out");
        let c_handoff_in = trace.register_counter("handoffs.in");
        let c_exp_evals = trace.register_counter("trust.exp_evals");
        ClusterState {
            index,
            head_position,
            members,
            positions,
            local_topo,
            engine,
            behaviors,
            channel,
            rng,
            trace,
            c_delivered,
            c_dropped,
            c_decided,
            c_declared,
            c_handoff_out,
            c_handoff_in,
            c_exp_evals,
            config,
            field_w,
            field_h,
        }
    }

    pub(crate) fn members(&self) -> &[NodeId] {
        &self.members
    }

    pub(crate) fn head_position(&self) -> Point {
        self.head_position
    }

    pub(crate) fn position(&self, local: usize) -> Point {
        self.positions[local]
    }

    /// Raw trust counter of a local member (lossless, for snapshots).
    pub(crate) fn counter_of(&self, local: usize) -> f64 {
        self.engine.table().counter_of(NodeId(local))
    }

    /// Trust index of a local member.
    pub(crate) fn trust_of(&self, local: usize) -> f64 {
        self.engine
            .trust_of(NodeId(local))
            .expect("TIBFIT keeps trust")
    }

    /// Non-zero trace counters, sorted by name.
    pub(crate) fn counters(&self) -> Vec<(&'static str, u64)> {
        self.trace.counters()
    }

    /// Phase 1 of a round: every member acts on the event (consuming this
    /// cluster's stream in member order), and surviving reports reach the
    /// head through this cluster's channel. Returns local-id reports.
    pub(crate) fn sense(&mut self, round: u64, event: Point) -> Vec<LocatedReport> {
        let mut batch = Vec::new();
        self.sense_into(round, event, &mut batch);
        batch
    }

    /// As [`ClusterState::sense`], appending into a caller-owned buffer
    /// so the sharded engine can lease per-round scratch from its arena
    /// instead of allocating a fresh batch every round.
    pub(crate) fn sense_into(&mut self, round: u64, event: Point, batch: &mut Vec<LocatedReport>) {
        for local in 0..self.members.len() {
            let node_pos = self.positions[local];
            let is_neighbor = node_pos.distance_to(event) <= self.config.sensing_radius;
            let ctx = RoundContext {
                round,
                node: self.members[local],
                node_pos,
                event: Some(event),
                is_event_neighbor: is_neighbor,
            };
            let Some(claim) = self.behaviors[local].located_action(&ctx, &mut self.rng) else {
                continue;
            };
            if self.channel.delivers(node_pos, self.head_position, &mut self.rng) {
                self.trace.bump(self.c_delivered);
                batch.push(LocatedReport::new(NodeId(local), claim));
            } else {
                self.trace.bump(self.c_dropped);
            }
        }
    }

    /// Phase 2: the head decides from its fragment and judges its
    /// members; judgements feed straight back into the member behaviours
    /// this cluster owns. An empty batch decides nothing (silence about
    /// an event nobody reported is not evidence).
    pub(crate) fn decide(&mut self, batch: &[LocatedReport]) -> Vec<Point> {
        let mut declared = Vec::new();
        self.decide_into(batch, &mut declared);
        declared
    }

    /// As [`ClusterState::decide`], appending declared locations into a
    /// caller-owned buffer (arena scratch on the sharded hot path).
    pub(crate) fn decide_into(&mut self, batch: &[LocatedReport], declared: &mut Vec<Point>) {
        if batch.is_empty() {
            return;
        }
        self.trace.bump(self.c_decided);
        let exp_before = self.engine.table().exp_evals();
        let result = self.engine.located_round(
            &self.local_topo,
            self.config.sensing_radius,
            self.config.r_error,
            batch,
        );
        // Exponentials actually paid by this decision (trust-cache
        // refreshes): uncached, every weight read would cost one.
        self.trace
            .bump_by(self.c_exp_evals, self.engine.table().exp_evals() - exp_before);
        for &(local, judgement) in &result.judgements {
            self.behaviors[local.index()].observe_judgement(judgement);
        }
        let before = declared.len();
        declared.extend(
            result
                .decisions
                .iter()
                .filter(|d| d.event_declared)
                .map(|d| d.location),
        );
        self.trace
            .bump_by(self.c_declared, (declared.len() - before) as u64);
    }

    /// End-of-round mobility: each member takes a Gaussian step (clamped
    /// to the field) drawn from this cluster's stream, in member order.
    pub(crate) fn drift(&mut self) {
        if self.config.drift_sigma <= 0.0 {
            return;
        }
        for local in 0..self.members.len() {
            let p = self.positions[local];
            let dx = self.rng.normal(0.0, self.config.drift_sigma);
            let dy = self.rng.normal(0.0, self.config.drift_sigma);
            let moved = Point::new(
                (p.x + dx).clamp(0.0, self.field_w),
                (p.y + dy).clamp(0.0, self.field_h),
            );
            self.positions[local] = moved;
            self.local_topo.set_position(NodeId(local), moved);
        }
    }

    /// Re-election: members now nearest a *different* site leave, taking
    /// their trust record and behaviour with them. The cluster never
    /// gives up its last member (a head with no members is not a
    /// cluster), evaluated in member order so the retained node is
    /// deterministic.
    pub(crate) fn departures(&mut self, sites: &SiteIndex<'_>) -> Vec<Handoff> {
        let mut leaving = vec![false; self.members.len()];
        let mut remaining = self.members.len();
        for (leave, &position) in leaving.iter_mut().zip(&self.positions) {
            let dst = sites.nearest(position).expect("non-empty sites");
            if dst != self.index && remaining > 1 {
                *leave = true;
                remaining -= 1;
            }
        }
        if leaving.iter().all(|&l| !l) {
            return Vec::new();
        }
        let records: Vec<TrustRecord> = (0..self.members.len())
            .map(|l| self.engine.table().extract(NodeId(l)))
            .collect();
        let members = std::mem::take(&mut self.members);
        let positions = std::mem::take(&mut self.positions);
        let behaviors = std::mem::take(&mut self.behaviors);
        let mut kept = Vec::with_capacity(remaining);
        let mut out = Vec::new();
        for (local, ((node, position), behavior)) in
            members.into_iter().zip(positions).zip(behaviors).enumerate()
        {
            if leaving[local] {
                let dst = sites.nearest(position).expect("non-empty sites");
                out.push(Handoff {
                    node,
                    position,
                    record: records[local],
                    behavior,
                    dst,
                });
            } else {
                kept.push(MemberSlot {
                    node,
                    position,
                    behavior,
                    record: records[local],
                });
            }
        }
        self.trace.bump_by(self.c_handoff_out, out.len() as u64);
        self.rebuild(kept);
        out
    }

    /// Admits handed-off nodes. The rebuild sorts members by global id,
    /// so the final state is independent of arrival order — determinism
    /// by construction rather than by careful sequencing.
    pub(crate) fn admit(&mut self, mut arrivals: Vec<Handoff>) {
        self.admit_from(&mut arrivals);
    }

    /// As [`ClusterState::admit`], draining the caller's buffer in place
    /// so a shard-lifetime scratch vector can be reused across epochs.
    pub(crate) fn admit_from(&mut self, arrivals: &mut Vec<Handoff>) {
        if arrivals.is_empty() {
            return;
        }
        self.trace.bump_by(self.c_handoff_in, arrivals.len() as u64);
        let records: Vec<TrustRecord> = (0..self.members.len())
            .map(|l| self.engine.table().extract(NodeId(l)))
            .collect();
        let members = std::mem::take(&mut self.members);
        let positions = std::mem::take(&mut self.positions);
        let behaviors = std::mem::take(&mut self.behaviors);
        let mut kept: Vec<MemberSlot> = members
            .into_iter()
            .zip(positions)
            .zip(behaviors)
            .enumerate()
            .map(|(local, ((node, position), behavior))| MemberSlot {
                node,
                position,
                behavior,
                record: records[local],
            })
            .collect();
        for h in arrivals.drain(..) {
            debug_assert_eq!(h.dst, self.index, "handoff routed to wrong cluster");
            kept.push(MemberSlot {
                node: h.node,
                position: h.position,
                behavior: h.behavior,
                record: h.record,
            });
        }
        self.rebuild(kept);
    }

    /// Field dimensions this cluster clamps drift to.
    pub(crate) fn field(&self) -> (f64, f64) {
        (self.field_w, self.field_h)
    }

    /// Captures this cluster for a checkpoint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if any member behaviour or the
    /// channel has no snapshot form (e.g. level-2 colluders, whose
    /// shared coordinator cannot be serialized).
    pub(crate) fn capture(&self) -> Result<ClusterCapture, SnapshotError> {
        let behaviors = self
            .behaviors
            .iter()
            .map(|b| {
                b.snapshot()
                    .ok_or(SnapshotError::Unsupported("behavior kind cannot be checkpointed"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let channel = self
            .channel
            .snapshot()
            .ok_or(SnapshotError::Unsupported("channel kind cannot be checkpointed"))?;
        let mut counters = [0u64; COUNTER_NAMES.len()];
        for (slot, name) in counters.iter_mut().zip(COUNTER_NAMES) {
            *slot = self.trace.counter(name);
        }
        Ok(ClusterCapture {
            index: self.index,
            head_position: self.head_position,
            members: self.members.clone(),
            positions: self.positions.clone(),
            behaviors,
            channel,
            rng: self.rng.state(),
            trust: self.engine.table().export_state(),
            counters,
        })
    }

    /// Rebuilds a cluster from a capture, bit-identically.
    ///
    /// The engine is reconstructed via [`TrustTable::from_state`] (which
    /// restores the cached-TI column verbatim instead of recomputing it)
    /// so the restored cluster's `trust.exp_evals` trajectory continues
    /// exactly where the original's left off. Counters are replayed by
    /// name into a fresh trace.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Invalid`] on any internally inconsistent field —
    /// a corrupt blob must surface as an error, never a panic.
    pub(crate) fn from_capture(
        cap: ClusterCapture,
        config: MultiClusterConfig,
        field_w: f64,
        field_h: f64,
    ) -> Result<Self, SnapshotError> {
        let n = cap.members.len();
        if n == 0 {
            return Err(SnapshotError::Invalid("cluster has no members"));
        }
        if cap.positions.len() != n || cap.behaviors.len() != n || cap.trust.counters.len() != n {
            return Err(SnapshotError::Invalid("cluster vectors disagree in length"));
        }
        if !cap.members.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::Invalid("cluster members not strictly ascending"));
        }
        let finite = |p: &Point| p.x.is_finite() && p.y.is_finite();
        if !finite(&cap.head_position) || !cap.positions.iter().all(finite) {
            return Err(SnapshotError::Invalid("non-finite position"));
        }
        if cap.trust.lambda.to_bits() != config.trust.lambda.to_bits()
            || cap.trust.fault_rate.to_bits() != config.trust.fault_rate.to_bits()
            || cap.trust.arith != config.trust.arith
        {
            return Err(SnapshotError::Invalid("cluster trust params disagree with config"));
        }
        let behaviors = cap
            .behaviors
            .iter()
            .map(BehaviorSnapshot::restore)
            .collect::<Result<Vec<_>, _>>()
            .map_err(SnapshotError::Invalid)?;
        let channel = cap
            .channel
            .restore()
            .map_err(|_| SnapshotError::Invalid("channel snapshot out of range"))?;
        let rng = SimRng::from_state(cap.rng)
            .ok_or(SnapshotError::Invalid("rng state degenerate"))?;
        let table =
            TrustTable::from_state(&cap.trust).map_err(|e| SnapshotError::Invalid(e.message()))?;
        let mut state = ClusterState::new(
            cap.index,
            cap.head_position,
            cap.members,
            cap.positions,
            config,
            behaviors,
            channel,
            rng,
            field_w,
            field_h,
        );
        state.engine = TibfitEngine::from_table(table);
        for (name, value) in COUNTER_NAMES.into_iter().zip(cap.counters) {
            if value > 0 {
                state.trace.count_by(name, value);
            }
        }
        Ok(state)
    }

    /// Reconstructs members/topology/trust from a full slot list.
    fn rebuild(&mut self, mut slots: Vec<MemberSlot>) {
        slots.sort_by_key(|s| s.node);
        let mut members = Vec::with_capacity(slots.len());
        let mut positions = Vec::with_capacity(slots.len());
        let mut behaviors = Vec::with_capacity(slots.len());
        let mut engine = TibfitEngine::new(self.config.trust, slots.len());
        for (local, slot) in slots.into_iter().enumerate() {
            members.push(slot.node);
            positions.push(slot.position);
            behaviors.push(slot.behavior);
            engine.table_mut().install(NodeId(local), slot.record);
        }
        self.local_topo = Topology::from_positions(positions.clone(), self.field_w, self.field_h);
        self.members = members;
        self.positions = positions;
        self.behaviors = behaviors;
        self.engine = engine;
    }
}

/// Builds the per-cluster states shared by the sequential and sharded
/// engines: Voronoi affiliation over `ch_sites`, one [`ClusterState`] per
/// site with its own channel instance and RNG stream.
pub(crate) fn partition_clusters(
    config: MultiClusterConfig,
    topo: &Topology,
    ch_sites: &[Point],
    behaviors: Vec<Box<dyn NodeBehavior + Send>>,
    mut channels: impl FnMut(usize) -> Box<dyn ChannelModel + Send>,
    master_seed: u64,
) -> Result<Vec<ClusterState>, MultiClusterError> {
    config.validate()?;
    if ch_sites.is_empty() {
        return Err(MultiClusterError::NoClusterHeads);
    }
    if behaviors.len() != topo.len() {
        return Err(MultiClusterError::BehaviorCountMismatch {
            behaviors: behaviors.len(),
            nodes: topo.len(),
        });
    }
    let affiliation = topo.affiliation(ch_sites);
    // Tear the behavior vec apart by cluster without losing global order.
    let mut per_cluster_behaviors: Vec<Vec<(NodeId, Box<dyn NodeBehavior + Send>)>> =
        (0..ch_sites.len()).map(|_| Vec::new()).collect();
    for (idx, behavior) in behaviors.into_iter().enumerate() {
        per_cluster_behaviors[affiliation[idx]].push((NodeId(idx), behavior));
    }
    let mut clusters = Vec::with_capacity(ch_sites.len());
    for (ci, tagged) in per_cluster_behaviors.into_iter().enumerate() {
        if tagged.is_empty() {
            return Err(MultiClusterError::EmptyCluster { cluster: ci });
        }
        let mut members = Vec::with_capacity(tagged.len());
        let mut positions = Vec::with_capacity(tagged.len());
        let mut cluster_behaviors = Vec::with_capacity(tagged.len());
        for (node, behavior) in tagged {
            members.push(node);
            positions.push(topo.position(node));
            cluster_behaviors.push(behavior);
        }
        clusters.push(ClusterState::new(
            ci,
            ch_sites[ci],
            members,
            positions,
            config,
            cluster_behaviors,
            channels(ci),
            SimRng::stream(master_seed, ci as u64),
            topo.width(),
            topo.height(),
        ));
    }
    Ok(clusters)
}

/// Result of one event round across all clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundResult {
    /// Ground truth.
    pub event: Point,
    /// Event locations the base station accepted after merging.
    pub declared: Vec<Point>,
    /// Which clusters contributed a matching declaration.
    pub declaring_clusters: Vec<usize>,
}

impl MultiRoundResult {
    /// Whether the event was detected within `r_error`.
    #[must_use]
    pub fn detected_within(&self, r_error: f64) -> bool {
        self.declared
            .iter()
            .any(|d| d.distance_to(self.event) <= r_error)
    }
}

/// Merges per-cluster declarations at the base station: declarations
/// within `r_error` of an accepted one are averaged into it, others open
/// a new accepted location. Input order is cluster order, which both
/// engines produce identically.
pub(crate) fn merge_declarations(
    event: Point,
    declared: Vec<(usize, Point)>,
    r_error: f64,
) -> MultiRoundResult {
    let mut merged: Vec<Point> = Vec::new();
    let mut declaring_clusters = Vec::new();
    for (ci, d) in declared {
        declaring_clusters.push(ci);
        if let Some(existing) = merged.iter_mut().find(|m| m.distance_to(d) <= r_error) {
            *existing = Point::new((existing.x + d.x) / 2.0, (existing.y + d.y) / 2.0);
        } else {
            merged.push(d);
        }
    }
    MultiRoundResult {
        event,
        declared: merged,
        declaring_clusters,
    }
}

/// A network of several TIBFIT clusters under one base station —
/// the sequential reference engine.
pub struct MultiClusterSim {
    config: MultiClusterConfig,
    sites: Vec<Point>,
    /// Cached lattice recognition over `sites` (see [`SiteLattice`]):
    /// makes each re-election's nearest-site sweep O(nodes) instead of
    /// O(nodes × sites) on grid deployments. Derived state — never
    /// snapshotted, recomputed wherever `sites` is set.
    lattice: Option<SiteLattice>,
    clusters: Vec<ClusterState>,
    /// Node → cluster index (kept current across re-elections).
    affiliation: Vec<usize>,
    n_nodes: usize,
    round: u64,
}

impl MultiClusterSim {
    /// Builds the deployment: every node affiliates with the nearest head
    /// (LEACH's strongest-signal rule for free-space radio). `channels`
    /// is called once per cluster so each head owns an independent
    /// channel instance; each cluster's RNG is stream `cluster_index` of
    /// `master_seed`.
    ///
    /// # Panics
    ///
    /// Panics on any [`MultiClusterError`]; use
    /// [`MultiClusterSim::try_new`] to handle bad configurations as
    /// values.
    #[must_use]
    pub fn new(
        config: MultiClusterConfig,
        topo: Topology,
        ch_sites: Vec<Point>,
        behaviors: Vec<Box<dyn NodeBehavior + Send>>,
        channels: impl FnMut(usize) -> Box<dyn ChannelModel + Send>,
        master_seed: u64,
    ) -> Self {
        match MultiClusterSim::try_new(config, topo, ch_sites, behaviors, channels, master_seed) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiClusterError`] if the config's numeric fields are
    /// out of range, `ch_sites` is empty, the behavior count does not
    /// match the topology, or any cluster would start without members.
    pub fn try_new(
        config: MultiClusterConfig,
        topo: Topology,
        ch_sites: Vec<Point>,
        behaviors: Vec<Box<dyn NodeBehavior + Send>>,
        channels: impl FnMut(usize) -> Box<dyn ChannelModel + Send>,
        master_seed: u64,
    ) -> Result<Self, MultiClusterError> {
        let n_nodes = topo.len();
        let clusters =
            partition_clusters(config, &topo, &ch_sites, behaviors, channels, master_seed)?;
        let mut sim = MultiClusterSim {
            config,
            lattice: SiteLattice::detect(&ch_sites),
            sites: ch_sites,
            clusters,
            affiliation: Vec::new(),
            n_nodes,
            round: 0,
        };
        sim.refresh_affiliation();
        Ok(sim)
    }

    fn refresh_affiliation(&mut self) {
        self.affiliation = vec![usize::MAX; self.n_nodes];
        for cluster in &self.clusters {
            for &node in cluster.members() {
                self.affiliation[node.index()] = cluster.index;
            }
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total deployed nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Completed event rounds (the daemon's tenant cursor).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The deployment configuration the engine was built with.
    #[must_use]
    pub fn config(&self) -> &MultiClusterConfig {
        &self.config
    }

    /// The cluster a node currently belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn cluster_of(&self, node: NodeId) -> usize {
        self.affiliation[node.index()]
    }

    /// A node's current position (drift moves nodes).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn position_of(&self, node: NodeId) -> Point {
        let cluster = &self.clusters[self.affiliation[node.index()]];
        let local = cluster
            .members()
            .binary_search(&node)
            .expect("member of its own cluster");
        cluster.position(local)
    }

    /// The trust its own head currently assigns a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn trust_of(&self, node: NodeId) -> f64 {
        let cluster = &self.clusters[self.affiliation[node.index()]];
        let local = cluster
            .members()
            .binary_search(&node)
            .expect("member of its own cluster");
        cluster.trust_of(local)
    }

    /// Bit-exact snapshot of every node's raw trust counter, indexed by
    /// global node id. `f64::to_bits` so two engines can be compared for
    /// *identity*, not approximate equality.
    #[must_use]
    pub fn trust_snapshot(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.trust_snapshot_into(&mut out);
        out
    }

    /// [`Self::trust_snapshot`] into a caller-owned buffer, for hot
    /// paths (the daemon digests trust after every applied record) that
    /// must not allocate per call.
    pub fn trust_snapshot_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.n_nodes, 0u64);
        for cluster in &self.clusters {
            for (local, &node) in cluster.members().iter().enumerate() {
                out[node.index()] = cluster.counter_of(local).to_bits();
            }
        }
    }

    /// Bit-exact snapshot of every node's position.
    #[must_use]
    pub fn position_snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.position_snapshot_into(&mut out);
        out
    }

    /// [`Self::position_snapshot`] into a caller-owned buffer, for hot
    /// paths that must not allocate per call.
    pub fn position_snapshot_into(&self, out: &mut Vec<(u64, u64)>) {
        out.clear();
        out.resize(self.n_nodes, (0u64, 0u64));
        for cluster in &self.clusters {
            for (local, &node) in cluster.members().iter().enumerate() {
                let p = cluster.position(local);
                out[node.index()] = (p.x.to_bits(), p.y.to_bits());
            }
        }
    }

    /// All trace counters, prefixed per cluster (`c3.reports.delivered`),
    /// sorted — the trace half of the differential comparison.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for cluster in &self.clusters {
            for (name, value) in cluster.counters() {
                out.push((format!("c{}.{name}", cluster.index), value));
            }
        }
        out
    }

    /// Runs one event round: nodes act, reports go to their own heads,
    /// each head decides from its fragment, the base station merges;
    /// then (if configured) nodes drift and, on a re-election boundary,
    /// change clusters.
    pub fn run_event(&mut self, event: Point) -> MultiRoundResult {
        self.round += 1;
        let round = self.round;
        let mut declared: Vec<(usize, Point)> = Vec::new();
        for cluster in &mut self.clusters {
            let batch = cluster.sense(round, event);
            for loc in cluster.decide(&batch) {
                declared.push((cluster.index, loc));
            }
        }
        let result = merge_declarations(event, declared, self.config.r_error);

        for cluster in &mut self.clusters {
            cluster.drift();
        }
        if self.config.reelect_every > 0 && round.is_multiple_of(self.config.reelect_every) {
            // Collect in cluster order, deliver grouped by destination:
            // the same (src, seq) order the sharded engine's mailboxes
            // impose.
            let mut inbound: Vec<Vec<Handoff>> =
                (0..self.clusters.len()).map(|_| Vec::new()).collect();
            let sites = SiteIndex::with_lattice(&self.sites, self.lattice);
            for cluster in &mut self.clusters {
                for h in cluster.departures(&sites) {
                    let dst = h.dst;
                    inbound[dst].push(h);
                }
            }
            for (ci, arrivals) in inbound.into_iter().enumerate() {
                self.clusters[ci].admit(arrivals);
            }
            self.refresh_affiliation();
        }
        result
    }

    /// Decomposes the simulation into its per-cluster states (the sharded
    /// engine wraps each in a shard).
    pub(crate) fn into_clusters(self) -> (MultiClusterConfig, Vec<Point>, Vec<ClusterState>, u64) {
        (self.config, self.sites, self.clusters, self.round)
    }

    /// Captures the whole deployment for a checkpoint. The sequential
    /// engine holds no in-flight timers between rounds, so any point
    /// between two `run_event` calls is a valid capture point.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if any behaviour or channel cannot
    /// be snapshotted (see [`ClusterState::capture`]).
    pub(crate) fn capture(&self) -> Result<SimCapture, SnapshotError> {
        let field = self
            .clusters
            .first()
            .map(ClusterState::field)
            .ok_or(SnapshotError::Invalid("deployment has no clusters"))?;
        let clusters = self
            .clusters
            .iter()
            .map(ClusterState::capture)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SimCapture {
            config: self.config,
            sites: self.sites.clone(),
            clusters,
            n_nodes: self.n_nodes,
            round: self.round,
            field,
        })
    }

    /// Reassembles a simulation from restored cluster states. The
    /// affiliation map is derived, not stored, so it cannot go stale.
    pub(crate) fn from_parts(
        config: MultiClusterConfig,
        sites: Vec<Point>,
        clusters: Vec<ClusterState>,
        n_nodes: usize,
        round: u64,
    ) -> Self {
        let mut sim = MultiClusterSim {
            config,
            lattice: SiteLattice::detect(&sites),
            sites,
            clusters,
            affiliation: Vec::new(),
            n_nodes,
            round,
        };
        sim.refresh_affiliation();
        sim
    }
}

impl std::fmt::Debug for MultiClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiClusterSim")
            .field("nodes", &self.n_nodes)
            .field("clusters", &self.clusters.len())
            .field("round", &self.round)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
    use tibfit_net::channel::BernoulliLoss;

    fn build(n_faulty: usize, seed: u64) -> MultiClusterSim {
        build_mobile(n_faulty, seed, 0.0, 0)
    }

    fn build_mobile(
        n_faulty: usize,
        seed: u64,
        drift: f64,
        reelect_every: u64,
    ) -> MultiClusterSim {
        let topo = Topology::uniform_grid(100, 100.0, 100.0);
        let faulty = SimRng::seed_from(seed ^ 0xAA).choose_indices(100, n_faulty);
        let behaviors: Vec<Box<dyn NodeBehavior + Send>> = (0..100)
            .map(|i| -> Box<dyn NodeBehavior + Send> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, 1.6))
                }
            })
            .collect();
        MultiClusterSim::new(
            MultiClusterConfig::paper().mobile(drift, reelect_every),
            topo,
            five_ch_sites(100.0),
            behaviors,
            |_| Box::new(BernoulliLoss::new(0.005)),
            seed,
        )
    }

    #[test]
    fn five_clusters_partition_all_nodes() {
        let sim = build(0, 1);
        assert_eq!(sim.cluster_count(), 5);
        let mut counts = [0usize; 5];
        for i in 0..100 {
            counts[sim.cluster_of(NodeId(i))] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 100);
        for (ci, c) in counts.iter().enumerate() {
            assert!(*c > 0, "cluster {ci} empty");
        }
    }

    #[test]
    fn affiliation_is_nearest_head() {
        let sim = build(0, 2);
        let sites = five_ch_sites(100.0);
        for i in 0..100 {
            let node = NodeId(i);
            let pos = sim.position_of(node);
            let assigned = sim.cluster_of(node);
            let d_assigned = pos.distance_to(sites[assigned]);
            for s in &sites {
                assert!(d_assigned <= pos.distance_to(*s) + 1e-9);
            }
        }
    }

    #[test]
    fn interior_events_detected() {
        let mut sim = build(0, 3);
        // An event deep inside a quadrant — one cluster owns most of the
        // neighborhood.
        let result = sim.run_event(Point::new(25.0, 25.0));
        assert!(result.detected_within(5.0));
    }

    #[test]
    fn boundary_events_recovered_by_merge() {
        let mut sim = build(0, 4);
        // Dead center of the field: the neighborhood is split across all
        // five clusters; the base-station union must still see it.
        let mut hits = 0;
        for dx in [-2.0, 0.0, 2.0] {
            let result = sim.run_event(Point::new(50.0 + dx, 50.0));
            hits += usize::from(result.detected_within(5.0));
        }
        assert!(hits >= 2, "boundary detection too weak: {hits}/3");
    }

    #[test]
    fn sweep_accuracy_close_to_single_cluster() {
        // The partition penalty at 30% faulty should be bounded: within
        // 15 points of the single-cluster driver on the same workload
        // scale.
        let mut sim = build(30, 5);
        let mut event_rng = SimRng::seed_from(55);
        let mut hits = 0usize;
        let n = 200;
        for _ in 0..n {
            let event = Point::new(
                event_rng.uniform_range(0.0, 100.0),
                event_rng.uniform_range(0.0, 100.0),
            );
            hits += usize::from(sim.run_event(event).detected_within(5.0));
        }
        let acc = hits as f64 / n as f64;
        assert!(acc > 0.8, "multi-cluster accuracy {acc}");
    }

    #[test]
    fn per_cluster_trust_diagnoses_local_liars() {
        let seed = 6;
        let mut sim = build(30, seed);
        let faulty = SimRng::seed_from(seed ^ 0xAA).choose_indices(100, 30);
        let mut event_rng = SimRng::seed_from(66);
        for _ in 0..300 {
            let event = Point::new(
                event_rng.uniform_range(0.0, 100.0),
                event_rng.uniform_range(0.0, 100.0),
            );
            sim.run_event(event);
        }
        let (mut f_sum, mut f_n, mut h_sum, mut h_n) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..100 {
            let t = sim.trust_of(NodeId(i));
            if faulty.contains(&i) {
                f_sum += t;
                f_n += 1.0;
            } else {
                h_sum += t;
                h_n += 1.0;
            }
        }
        assert!(
            f_sum / f_n < h_sum / h_n,
            "faulty mean {} !< honest mean {}",
            f_sum / f_n,
            h_sum / h_n
        );
    }

    #[test]
    fn run_is_deterministic() {
        let mut a = build(20, 9);
        let mut b = build(20, 9);
        for i in 0..20 {
            let event = Point::new(10.0 + 4.0 * i as f64, 50.0);
            assert_eq!(a.run_event(event), b.run_event(event));
        }
        assert_eq!(a.trust_snapshot(), b.trust_snapshot());
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn mobile_run_is_deterministic() {
        let mut a = build_mobile(20, 10, 0.8, 5);
        let mut b = build_mobile(20, 10, 0.8, 5);
        for i in 0..30 {
            let event = Point::new(10.0 + 2.0 * i as f64, 40.0);
            assert_eq!(a.run_event(event), b.run_event(event));
        }
        assert_eq!(a.trust_snapshot(), b.trust_snapshot());
        assert_eq!(a.position_snapshot(), b.position_snapshot());
    }

    #[test]
    fn drift_moves_nodes_and_reelection_reassigns() {
        let mut sim = build_mobile(0, 11, 2.5, 4);
        let before = sim.position_snapshot();
        for i in 0..40 {
            sim.run_event(Point::new(50.0, 10.0 + 2.0 * i as f64));
        }
        let after = sim.position_snapshot();
        assert_ne!(before, after, "drift should move nodes");
        // Re-election keeps affiliation consistent with current geometry.
        let sites = five_ch_sites(100.0);
        let handoffs: u64 = sim
            .counters()
            .iter()
            .filter(|(name, _)| name.ends_with("handoffs.in"))
            .map(|&(_, v)| v)
            .sum();
        assert!(handoffs > 0, "40 rounds of drift should hand someone off");
        for i in 0..100 {
            let node = NodeId(i);
            let pos = sim.position_of(node);
            let assigned = sim.cluster_of(node);
            // After the last re-election the node may have drifted a few
            // more rounds, so allow the drift slack.
            let d_assigned = pos.distance_to(sites[assigned]);
            let d_best = sites
                .iter()
                .map(|s| pos.distance_to(*s))
                .fold(f64::INFINITY, f64::min);
            assert!(d_assigned <= d_best + 20.0, "node {i} stranded");
        }
    }

    #[test]
    fn handoff_preserves_trust_record() {
        // A liar that drifts across a border keeps its damaged counter.
        let mut sim = build_mobile(30, 12, 2.0, 2);
        let mut event_rng = SimRng::seed_from(77);
        let mut moved_with_history = 0;
        let mut before: Vec<(usize, f64)> =
            (0..100).map(|i| (sim.cluster_of(NodeId(i)), 0.0)).collect();
        for round in 0..60 {
            let event = Point::new(
                event_rng.uniform_range(0.0, 100.0),
                event_rng.uniform_range(0.0, 100.0),
            );
            sim.run_event(event);
            let snapshot = sim.trust_snapshot();
            for i in 0..100 {
                let now = sim.cluster_of(NodeId(i));
                let counter = f64::from_bits(snapshot[i]);
                if now != before[i].0 && before[i].1 > 0.0 {
                    // The node changed clusters carrying a non-zero
                    // counter: the new head must still see it.
                    assert!(
                        counter > 0.0,
                        "round {round}: node {i} lost its record in the handoff"
                    );
                    moved_with_history += 1;
                }
                before[i] = (now, counter);
            }
        }
        assert!(moved_with_history > 0, "no handoff carried history — test is vacuous");
    }

    #[test]
    fn counters_track_reports() {
        let mut sim = build(0, 13);
        for _ in 0..5 {
            sim.run_event(Point::new(50.0, 50.0));
        }
        let counters = sim.counters();
        let delivered: u64 = counters
            .iter()
            .filter(|(n, _)| n.ends_with("reports.delivered"))
            .map(|&(_, v)| v)
            .sum();
        assert!(delivered > 0, "honest nodes near the event must report");
        let decided: u64 = counters
            .iter()
            .filter(|(n, _)| n.ends_with("rounds.decided"))
            .map(|&(_, v)| v)
            .sum();
        assert!(decided > 0);
    }

    #[test]
    #[should_panic(expected = "at least one cluster head")]
    fn rejects_empty_sites() {
        let topo = Topology::uniform_grid(4, 10.0, 10.0);
        let behaviors: Vec<Box<dyn NodeBehavior + Send>> = (0..4)
            .map(|_| -> Box<dyn NodeBehavior + Send> { Box::new(CorrectNode::new(0.0, 0.0)) })
            .collect();
        let _ = MultiClusterSim::new(
            MultiClusterConfig::paper(),
            topo,
            Vec::new(),
            behaviors,
            |_| Box::new(BernoulliLoss::new(0.0)),
            0,
        );
    }

    #[test]
    fn try_new_rejects_each_bad_config() {
        let topo = Topology::uniform_grid(4, 10.0, 10.0);
        let mk_behaviors = |n: usize| -> Vec<Box<dyn NodeBehavior + Send>> {
            (0..n)
                .map(|_| -> Box<dyn NodeBehavior + Send> { Box::new(CorrectNode::new(0.0, 0.0)) })
                .collect()
        };
        let mk_channel = |_: usize| -> Box<dyn ChannelModel + Send> {
            Box::new(BernoulliLoss::new(0.0))
        };

        // Empty sites.
        assert_eq!(
            MultiClusterSim::try_new(
                MultiClusterConfig::paper(),
                topo.clone(),
                Vec::new(),
                mk_behaviors(4),
                mk_channel,
                0,
            )
            .err(),
            Some(MultiClusterError::NoClusterHeads)
        );

        // Behavior count mismatch.
        assert_eq!(
            MultiClusterSim::try_new(
                MultiClusterConfig::paper(),
                topo.clone(),
                vec![Point::new(5.0, 5.0)],
                mk_behaviors(3),
                mk_channel,
                0,
            )
            .err(),
            Some(MultiClusterError::BehaviorCountMismatch {
                behaviors: 3,
                nodes: 4
            })
        );

        // A site so far from every node that another site wins all of
        // them: the far cluster has no members.
        assert_eq!(
            MultiClusterSim::try_new(
                MultiClusterConfig::paper(),
                topo.clone(),
                vec![Point::new(5.0, 5.0), Point::new(10.0, 10.0)],
                mk_behaviors(4),
                mk_channel,
                0,
            )
            .err(),
            Some(MultiClusterError::EmptyCluster { cluster: 1 })
        );

        // Invalid numeric config fields.
        let mut bad = MultiClusterConfig::paper();
        bad.sensing_radius = 0.0;
        assert_eq!(
            bad.validate().err(),
            Some(MultiClusterError::InvalidSensingRadius(0.0))
        );
        let mut bad = MultiClusterConfig::paper();
        bad.r_error = f64::NAN;
        assert!(matches!(
            bad.validate().err(),
            Some(MultiClusterError::InvalidErrorRadius(x)) if x.is_nan()
        ));
        let bad = MultiClusterConfig::paper().mobile(-1.0, 4);
        assert_eq!(
            bad.validate().err(),
            Some(MultiClusterError::InvalidDrift(-1.0))
        );
        assert_eq!(
            MultiClusterSim::try_new(
                bad,
                topo,
                vec![Point::new(5.0, 5.0)],
                mk_behaviors(4),
                mk_channel,
                0,
            )
            .err(),
            Some(MultiClusterError::InvalidDrift(-1.0))
        );

        // Errors render.
        assert!(MultiClusterError::NoClusterHeads
            .to_string()
            .contains("cluster head"));
        assert!(MultiClusterError::EmptyCluster { cluster: 3 }
            .to_string()
            .contains("cluster 3"));
    }

    #[test]
    fn grid_sites_counts_and_bounds() {
        for k in [1, 5, 32, 128, 256] {
            let sites = grid_sites(k, 100.0);
            assert_eq!(sites.len(), k, "k={k}");
            for s in &sites {
                assert!((0.0..=100.0).contains(&s.x) && (0.0..=100.0).contains(&s.y));
            }
        }
    }
}
