//! Experiment 4 (extension): quantifying §3.4's shadow-cluster-head
//! protection.
//!
//! The paper argues qualitatively that two SCHs let the base station
//! tolerate one compromised cluster head per round, but reports no
//! numbers. This experiment sweeps the probability that the acting head
//! corrupts its conclusion and measures end-to-end event accuracy with
//! 0, 1, and 2 shadow heads — 0 shadows being the unprotected §3.1
//! system.
//!
//! Expected shape: with 2 shadows the accuracy curve is flat (every
//! corruption is outvoted 2-to-1); with 1 shadow the base station sees a
//! 1-1 tie and (by the §3.4 tie-break) keeps the CH, so accuracy decays
//! linearly with the corruption rate, exactly like 0 shadows.

use crate::report::FigureData;
use tibfit_core::lifecycle::{ClusterLifecycle, LifecycleConfig};
use tibfit_core::location::LocatedReport;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;
use tibfit_sim::stats::Series;

/// Parameters for one shadow-protection run.
#[derive(Debug, Clone, Copy)]
pub struct Exp4Config {
    /// Cluster size.
    pub n_nodes: usize,
    /// Field side.
    pub field: f64,
    /// Number of shadow cluster heads.
    pub shadow_count: usize,
    /// Events per run.
    pub events: u64,
}

impl Exp4Config {
    /// Defaults: a 25-node cluster, 200 events.
    #[must_use]
    pub fn default_scale(shadow_count: usize) -> Self {
        Exp4Config {
            n_nodes: 25,
            field: 50.0,
            shadow_count,
            events: 200,
        }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp4Outcome {
    /// Fraction of events whose final (base-station) conclusion was
    /// correct and within `r_error`.
    pub accuracy: f64,
    /// Fraction of corrupted conclusions that were caught and overruled.
    pub overrule_rate: f64,
}

/// Runs one shadow-protection simulation: every event round, the acting
/// head corrupts its conclusion with probability `ch_compromise_prob`.
#[must_use]
pub fn run_exp4(config: &Exp4Config, ch_compromise_prob: f64, seed: u64) -> Exp4Outcome {
    assert!(
        (0.0..=1.0).contains(&ch_compromise_prob),
        "probability required"
    );
    let topo = Topology::uniform_grid(config.n_nodes, config.field, config.field);
    let mut lifecycle_config = LifecycleConfig::paper();
    lifecycle_config.leach.shadow_count = config.shadow_count;
    let mut cluster = ClusterLifecycle::new(lifecycle_config, topo);
    let mut rng = SimRng::seed_from(seed);
    let mut event_rng = rng.fork(0xE4);

    let r_s = lifecycle_config.sensing_radius;
    let r_error = lifecycle_config.r_error;
    let mut correct = 0u64;
    let mut corrupted = 0u64;
    let mut overruled = 0u64;
    for _ in 0..config.events {
        let event = cluster.topology().random_event_location(&mut event_rng);
        let reports: Vec<LocatedReport> = cluster
            .topology()
            .event_neighbors(event, r_s)
            .into_iter()
            .map(|n| LocatedReport::new(n, event))
            .collect();
        if reports.is_empty() {
            // Nothing sensed the event (tiny corner neighborhoods); it
            // cannot be detected — count as a miss.
            continue;
        }
        let compromise = event_rng.chance(ch_compromise_prob);
        corrupted += u64::from(compromise);
        let round = cluster.process_event_round(&reports, compromise, &mut rng);
        overruled += u64::from(round.ruling.ch_overruled);
        let ok = round
            .ruling
            .final_conclusion
            .location()
            .is_some_and(|l| l.distance_to(event) <= r_error);
        correct += u64::from(ok);
    }
    Exp4Outcome {
        accuracy: correct as f64 / config.events as f64,
        overrule_rate: if corrupted == 0 {
            0.0
        } else {
            overruled as f64 / corrupted as f64
        },
    }
}

/// The compromise-probability sweep.
pub const PROB_SWEEP: [f64; 6] = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];

/// Builds the shadow-protection figure: accuracy vs. head-compromise
/// probability, one line per shadow count.
#[must_use]
pub fn figure_shadow(trials: usize, base_seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "exp4_shadow",
        "Extension — shadow-CH protection vs head compromise probability",
        "P(head corrupts conclusion)",
        "accuracy",
    );
    for shadow_count in [0usize, 1, 2] {
        let config = Exp4Config::default_scale(shadow_count);
        let mut series = Series::new(format!("{shadow_count} shadows"));
        let points: Vec<(f64, f64)> = crate::harness::run_parallel(
            PROB_SWEEP
                .iter()
                .flat_map(|&p| {
                    crate::harness::trial_seeds(base_seed ^ (p * 100.0) as u64, trials)
                        .into_iter()
                        .map(move |s| (p, s))
                })
                .collect(),
            |(p, s)| (p, run_exp4(&config, p, s).accuracy),
        );
        for (p, acc) in points {
            series.record(p, acc);
        }
        fig.series.push(series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_shadows_flatten_the_curve() {
        let honest = run_exp4(&Exp4Config::default_scale(2), 0.0, 7);
        let hostile = run_exp4(&Exp4Config::default_scale(2), 1.0, 7);
        assert!(honest.accuracy > 0.9, "baseline accuracy {}", honest.accuracy);
        assert!(
            (honest.accuracy - hostile.accuracy).abs() < 0.05,
            "2 shadows should mask every corruption: {} vs {}",
            honest.accuracy,
            hostile.accuracy
        );
        assert!((hostile.overrule_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_shadows_track_the_corruption_rate() {
        let out = run_exp4(&Exp4Config::default_scale(0), 0.5, 7);
        // Without shadows a corrupted conclusion is final: accuracy
        // approaches (1 - p) times the honest accuracy.
        assert!(out.accuracy < 0.65, "accuracy {}", out.accuracy);
        assert_eq!(out.overrule_rate, 0.0);
    }

    #[test]
    fn one_shadow_cannot_overrule() {
        // A 1-1 tie keeps the CH (the §3.4 tie-break), so one shadow is
        // no better than none.
        let one = run_exp4(&Exp4Config::default_scale(1), 0.75, 7);
        assert_eq!(one.overrule_rate, 0.0, "a single shadow never wins");
    }

    #[test]
    fn figure_has_three_lines_over_sweep() {
        let fig = figure_shadow(1, 3);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.len(), PROB_SWEEP.len());
        }
        // The 2-shadow line dominates the 0-shadow line at p = 0.75.
        let y2 = fig.series[2].y_at(0.75).unwrap();
        let y0 = fig.series[0].y_at(0.75).unwrap();
        assert!(y2 > y0 + 0.3, "2 shadows {y2} vs 0 shadows {y0}");
    }

    #[test]
    fn deterministic() {
        let config = Exp4Config::default_scale(2);
        assert_eq!(run_exp4(&config, 0.3, 11), run_exp4(&config, 0.3, 11));
    }
}
