//! Event-driven (DES) simulation of the cluster head, the faithful
//! reproduction of the paper's ns-2 mechanism.
//!
//! The round-based driver in [`crate::network`] abstracts the `T_out`
//! window (all of a round's reports are batched). This module runs the
//! *actual* §3.2/§3.3 protocol on the [`tibfit_sim::Engine`]:
//!
//! * the event generator schedules ground-truth events on the virtual
//!   clock;
//! * each sensing node's report is delayed by per-packet jitter (channel
//!   contention) before reaching the cluster head;
//! * the CH's [`ConcurrentCollector`] opens a symbolic circle with its
//!   own `T_out` timer on each first report, merges overlapping circles,
//!   and only when the timers expire does the clustering + trust vote run;
//! * judgements feed back to the (possibly adversarial) nodes.
//!
//! Because `T_out` is finite and jitter is real, reports can *straddle*
//! windows and concurrent events interleave naturally — the situations
//! §3.3 is about.

use tibfit_adversary::behavior::{NodeBehavior, RoundContext};
use tibfit_core::concurrent::ConcurrentCollector;
use tibfit_core::engine::Aggregator;
use tibfit_core::location::LocatedReport;
use tibfit_net::channel::ChannelModel;
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;
use tibfit_sim::trace::{CounterId, Trace};
use tibfit_sim::{Duration, Engine, SimTime};

/// Timing parameters of the DES run, in clock ticks.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// The CH's report-collection window `T_out`.
    pub t_out: Duration,
    /// Interval between generated events.
    pub event_interval: Duration,
    /// Maximum per-report network jitter (uniform in `[0, jitter)`).
    pub max_jitter: Duration,
    /// Sensing radius `r_s`.
    pub sensing_radius: f64,
    /// Localization tolerance `r_error`.
    pub r_error: f64,
    /// Position of the cluster head.
    pub ch_position: Point,
    /// Probability that a generated event is a concurrent *pair*.
    pub concurrent_probability: f64,
    /// Retransmission attempts after a channel loss (0 = fire and
    /// forget, the paper's base protocol).
    pub max_retries: u32,
    /// Backoff before the first retransmission; doubles per attempt.
    pub retry_backoff: Duration,
}

impl DesConfig {
    /// Paper-scale timing: events every 1000 ticks, `T_out` = 100 ticks,
    /// jitter up to 50 ticks, no retransmissions.
    #[must_use]
    pub fn paper_scale(field: f64) -> Self {
        DesConfig {
            t_out: Duration::from_ticks(100),
            event_interval: Duration::from_ticks(1000),
            max_jitter: Duration::from_ticks(50),
            sensing_radius: 20.0,
            r_error: 5.0,
            ch_position: Point::new(field / 2.0, field / 2.0),
            concurrent_probability: 0.0,
            max_retries: 0,
            retry_backoff: Duration::from_ticks(10),
        }
    }

    /// Enables bounded report retransmission: up to `max_retries`
    /// attempts with exponential backoff starting at `backoff`, never
    /// past the sensing time plus `T_out` (a report that cannot make its
    /// collection window is dropped, not retried forever).
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32, backoff: Duration) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff = backoff;
        self
    }
}

/// What flows through the DES queue.
#[derive(Debug, Clone)]
enum DesEvent {
    /// Ground truth: events occur at these locations now.
    Occurs(Vec<Point>),
    /// A report reaches the cluster head after its network delay.
    Arrives(LocatedReport),
    /// A lost report's retransmission timer fires.
    Retry {
        /// The report being retransmitted.
        report: LocatedReport,
        /// When the node first sensed the event (bounds the retries).
        origin: SimTime,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A collector deadline may have passed; poll it.
    WindowCheck,
}

/// Aggregate results of a DES run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesStats {
    /// Ground-truth events injected.
    pub events_injected: usize,
    /// Events whose location was declared within `r_error`.
    pub events_detected: usize,
    /// Declared events matching no ground truth (false positives).
    pub false_events: usize,
    /// Decision batches run (merged circle groups).
    pub decision_batches: usize,
    /// Total simulated time at completion.
    pub finished_at: SimTime,
}

impl DesStats {
    /// Detection accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.events_injected == 0 {
            1.0
        } else {
            self.events_detected as f64 / self.events_injected as f64
        }
    }
}

/// Interned trace-counter ids for the per-event hot path: registered
/// once at construction so each bump is an indexed add, not a map
/// lookup.
#[derive(Debug, Clone, Copy)]
struct DesCounters {
    events_injected: CounterId,
    reports_delivered: CounterId,
    retry_count: CounterId,
    decision_batches: CounterId,
}

impl DesCounters {
    fn register(trace: &mut Trace) -> Self {
        DesCounters {
            events_injected: trace.register_counter("events_injected"),
            reports_delivered: trace.register_counter("reports_delivered"),
            retry_count: trace.register_counter("retry.count"),
            decision_batches: trace.register_counter("decision_batches"),
        }
    }
}

/// The event-driven cluster simulation.
pub struct DesClusterSim {
    config: DesConfig,
    topo: Topology,
    behaviors: Vec<Box<dyn NodeBehavior>>,
    channel: Box<dyn ChannelModel>,
    aggregator: Box<dyn Aggregator>,
    rng: SimRng,
    engine: Engine<DesEvent>,
    collector: ConcurrentCollector,
    round: u64,
    /// Ground-truth events awaiting a matching declaration, with their
    /// injection time (for expiry).
    pending_truth: Vec<(Point, SimTime)>,
    stats: DesStats,
    trace: Trace,
    counters: DesCounters,
    /// Reused buffer for collector poll results (allocation-free
    /// dispatch; the collector recycles the inner buffers).
    groups_scratch: Vec<Vec<LocatedReport>>,
}

impl DesClusterSim {
    /// Wires up the DES simulation.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors.len()` differs from the topology size.
    #[must_use]
    pub fn new(
        config: DesConfig,
        topo: Topology,
        behaviors: Vec<Box<dyn NodeBehavior>>,
        channel: Box<dyn ChannelModel>,
        aggregator: Box<dyn Aggregator>,
        rng: SimRng,
    ) -> Self {
        assert_eq!(behaviors.len(), topo.len(), "one behavior per node");
        let mut trace = Trace::disabled();
        let counters = DesCounters::register(&mut trace);
        DesClusterSim {
            collector: ConcurrentCollector::new(config.r_error, config.t_out),
            config,
            topo,
            behaviors,
            channel,
            aggregator,
            rng,
            engine: Engine::new(),
            round: 0,
            pending_truth: Vec::new(),
            stats: DesStats {
                events_injected: 0,
                events_detected: 0,
                false_events: 0,
                decision_batches: 0,
                finished_at: SimTime::ZERO,
            },
            trace,
            counters,
            groups_scratch: Vec::new(),
        }
    }

    /// Enables structured tracing with the given event-buffer capacity.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Trace::enabled(capacity);
        // The fresh trace has empty slots; re-intern the hot-path ids.
        self.counters = DesCounters::register(&mut self.trace);
        self
    }

    /// The trace collected so far (counters work even when tracing is
    /// disabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs `n_events` generated events to completion (all windows
    /// drained) and returns the statistics.
    pub fn run(&mut self, n_events: u64) -> DesStats {
        // Schedule the ground-truth injections.
        let mut event_rng = self.rng.fork(0xDE5);
        for i in 0..n_events {
            let at = SimTime::ZERO + self.config.event_interval * (i + 1);
            let mut locations = vec![self.topo.random_event_location(&mut event_rng)];
            if event_rng.chance(self.config.concurrent_probability) {
                // A concurrent partner at least r_error away.
                loop {
                    let p = self.topo.random_event_location(&mut event_rng);
                    if p.distance_to(locations[0]) > self.config.r_error {
                        locations.push(p);
                        break;
                    }
                }
            }
            self.engine.schedule_at(at, DesEvent::Occurs(locations));
        }

        while let Some((now, event)) = self.engine.pop() {
            match event {
                DesEvent::Occurs(locations) => self.on_occurs(now, &locations),
                DesEvent::Arrives(report) => self.on_arrival(now, report),
                DesEvent::Retry {
                    report,
                    origin,
                    attempt,
                } => self.on_retry(now, report, origin, attempt),
                DesEvent::WindowCheck => self.on_window_check(now),
            }
        }
        // Drain anything still buffered (simulation end).
        let mut groups = std::mem::take(&mut self.groups_scratch);
        self.collector.flush_into(&mut groups);
        let now = self.engine.now();
        for group in &groups {
            self.decide(now, group);
        }
        self.groups_scratch = groups;
        self.stats.finished_at = self.engine.now();
        self.stats.clone()
    }

    fn on_occurs(&mut self, now: SimTime, locations: &[Point]) {
        self.trace
            .bump_by(self.counters.events_injected, locations.len() as u64);
        if self.trace.is_enabled() {
            for loc in locations {
                self.trace.record(now, "event", format!("ground truth at {loc}"));
            }
        }
        self.stats.events_injected += locations.len();
        for &loc in locations {
            self.pending_truth.push((loc, now));
        }
        self.round += 1;
        let round = self.round;
        // Node ids are dense 0..n; iterating by index keeps the event
        // loop free of the per-event id-list allocation.
        for idx in 0..self.topo.len() {
            let node = NodeId(idx);
            let node_pos = self.topo.position(node);
            let sensed = locations
                .iter()
                .copied()
                .filter(|e| node_pos.distance_to(*e) <= self.config.sensing_radius)
                .min_by(|a, b| {
                    node_pos
                        .distance_sq(*a)
                        .total_cmp(&node_pos.distance_sq(*b))
                });
            let ctx = RoundContext {
                round,
                node,
                node_pos,
                event: sensed.or_else(|| locations.first().copied()),
                is_event_neighbor: sensed.is_some(),
            };
            if let Some(claim) = self.behaviors[node.index()].located_action(&ctx, &mut self.rng)
            {
                let report = LocatedReport::new(node, claim);
                if self
                    .channel
                    .delivers(node_pos, self.config.ch_position, &mut self.rng)
                {
                    let jitter = Duration::from_ticks(
                        self.rng.uniform_usize(self.config.max_jitter.ticks().max(1) as usize)
                            as u64,
                    );
                    self.engine
                        .schedule_at(now + jitter, DesEvent::Arrives(report));
                } else {
                    self.schedule_retry(now, now, report, 1);
                }
            }
        }
    }

    /// Arms the next retransmission timer, if the budget and the `T_out`
    /// deadline allow one.
    fn schedule_retry(&mut self, now: SimTime, origin: SimTime, report: LocatedReport, attempt: u32) {
        if attempt > self.config.max_retries {
            return;
        }
        // Exponential backoff: backoff · 2^(attempt−1).
        let backoff = self.config.retry_backoff * (1u64 << (attempt - 1).min(16));
        let fire_at = now + backoff;
        // Bounded: a retransmission that cannot make the collection
        // window is pointless — the report is dropped instead.
        if fire_at > origin + self.config.t_out {
            if self.trace.is_enabled() {
                self.trace
                    .record(now, "retry", format!("{} gives up", report.reporter));
            }
            return;
        }
        self.engine.schedule_at(
            fire_at,
            DesEvent::Retry {
                report,
                origin,
                attempt,
            },
        );
    }

    fn on_retry(&mut self, now: SimTime, report: LocatedReport, origin: SimTime, attempt: u32) {
        self.trace.bump(self.counters.retry_count);
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                "retry",
                format!("{} retransmits (attempt {attempt})", report.reporter),
            );
        }
        let node_pos = self.topo.position(report.reporter);
        if self
            .channel
            .delivers(node_pos, self.config.ch_position, &mut self.rng)
        {
            let jitter = Duration::from_ticks(
                self.rng
                    .uniform_usize(self.config.max_jitter.ticks().max(1) as usize)
                    as u64,
            );
            self.engine
                .schedule_at(now + jitter, DesEvent::Arrives(report));
        } else {
            self.schedule_retry(now, origin, report, attempt + 1);
        }
    }

    fn on_arrival(&mut self, now: SimTime, report: LocatedReport) {
        self.trace.bump(self.counters.reports_delivered);
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                "report",
                format!("{} claims {}", report.reporter, report.location),
            );
        }
        self.collector.submit(now, report);
        if let Some(deadline) = self.collector.next_deadline() {
            // A fresh check at the earliest deadline; stale checks are
            // harmless (poll is idempotent).
            self.engine
                .schedule_at(deadline.max(now), DesEvent::WindowCheck);
        }
    }

    fn on_window_check(&mut self, now: SimTime) {
        let mut groups = std::mem::take(&mut self.groups_scratch);
        self.collector.poll_into(now, &mut groups);
        for group in &groups {
            self.decide(now, group);
        }
        self.groups_scratch = groups;
        // Re-arm strictly in the future: an expired circle still buffered
        // here is waiting on an overlapping partner's later deadline, and
        // re-arming at its own (past) deadline would spin forever.
        if let Some(deadline) = self.collector.next_deadline_after(now) {
            self.engine.schedule_at(deadline, DesEvent::WindowCheck);
        }
    }

    fn decide(&mut self, _now: SimTime, reports: &[LocatedReport]) {
        if reports.is_empty() {
            return;
        }
        self.stats.decision_batches += 1;
        self.trace.bump(self.counters.decision_batches);
        let round = self.aggregator.located_round(
            &self.topo,
            self.config.sensing_radius,
            self.config.r_error,
            reports,
        );
        for &(node, judgement) in &round.judgements {
            self.behaviors[node.index()].observe_judgement(judgement);
        }
        for declared in round.declared_locations() {
            // Match against the oldest unmatched ground truth in range.
            if let Some(idx) = self
                .pending_truth
                .iter()
                .position(|(truth, _)| truth.distance_to(declared) <= self.config.r_error)
            {
                self.pending_truth.swap_remove(idx);
                self.stats.events_detected += 1;
                if self.trace.is_enabled() {
                    self.trace
                        .record(_now, "decision", format!("event confirmed at {declared}"));
                }
            } else {
                self.stats.false_events += 1;
                if self.trace.is_enabled() {
                    self.trace
                        .record(_now, "decision", format!("FALSE event at {declared}"));
                }
            }
        }
    }

    /// The aggregator's trust estimate for a node, if it keeps one.
    #[must_use]
    pub fn trust_of(&self, node: NodeId) -> Option<f64> {
        self.aggregator.trust_of(node)
    }

    /// Total DES events dispatched so far (the bench harness's
    /// events/sec numerator).
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.engine.dispatched()
    }

    /// High-water mark of the pending-event queue over the run.
    #[must_use]
    pub fn peak_queue_depth(&self) -> usize {
        self.engine.peak_pending()
    }
}

impl std::fmt::Debug for DesClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesClusterSim")
            .field("nodes", &self.topo.len())
            .field("engine", &self.aggregator.name())
            .field("now", &self.engine.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
    use tibfit_core::engine::TibfitEngine;
    use tibfit_core::trust::TrustParams;
    use tibfit_net::channel::BernoulliLoss;
    use tibfit_net::topology::NodeId;

    fn build(n_faulty: usize, concurrent: f64, seed: u64) -> DesClusterSim {
        let topo = Topology::uniform_grid(100, 100.0, 100.0);
        // Spread the faulty subset randomly over the grid (a contiguous
        // id block would be a spatially clustered, locally-majority
        // compromise — a different and much harder scenario).
        let faulty = SimRng::seed_from(seed ^ 0xF0).choose_indices(100, n_faulty);
        let behaviors: Vec<Box<dyn NodeBehavior>> = (0..100)
            .map(|i| -> Box<dyn NodeBehavior> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, 1.6))
                }
            })
            .collect();
        let mut config = DesConfig::paper_scale(100.0);
        config.concurrent_probability = concurrent;
        DesClusterSim::new(
            config,
            topo,
            behaviors,
            Box::new(BernoulliLoss::new(0.005)),
            Box::new(TibfitEngine::new(TrustParams::experiment2(), 100)),
            SimRng::seed_from(seed),
        )
    }

    #[test]
    fn honest_network_detects_nearly_everything() {
        let mut sim = build(0, 0.0, 1);
        let stats = sim.run(100);
        assert_eq!(stats.events_injected, 100);
        assert!(
            stats.accuracy() > 0.95,
            "accuracy {} (detected {}/{})",
            stats.accuracy(),
            stats.events_detected,
            stats.events_injected
        );
        assert_eq!(stats.false_events, 0);
    }

    #[test]
    fn simulated_time_advances_with_schedule() {
        let mut sim = build(0, 0.0, 2);
        let stats = sim.run(10);
        // Ten events at 1000-tick intervals plus the final windows.
        assert!(stats.finished_at >= SimTime::from_ticks(10_000));
        assert!(stats.finished_at < SimTime::from_ticks(12_000));
    }

    #[test]
    fn concurrent_pairs_detected_via_circles() {
        let mut sim = build(0, 1.0, 3);
        let stats = sim.run(50);
        assert_eq!(stats.events_injected, 100, "every round injects a pair");
        assert!(
            stats.accuracy() > 0.9,
            "accuracy {} with concurrent events",
            stats.accuracy()
        );
    }

    #[test]
    fn faulty_minority_tolerated_and_diagnosed() {
        let seed = 4;
        let mut sim = build(30, 0.0, seed);
        let stats = sim.run(150);
        assert!(stats.accuracy() > 0.85, "accuracy {}", stats.accuracy());
        // Faulty nodes' trust should sit below honest nodes'. Recompute
        // the same faulty subset `build` drew.
        let faulty = SimRng::seed_from(seed ^ 0xF0).choose_indices(100, 30);
        let (mut f_sum, mut h_sum) = (0.0, 0.0);
        for i in 0..100 {
            let t = sim.trust_of(NodeId(i)).unwrap();
            if faulty.contains(&i) {
                f_sum += t;
            } else {
                h_sum += t;
            }
        }
        let faulty_mean = f_sum / 30.0;
        let honest_mean = h_sum / 70.0;
        assert!(
            faulty_mean < honest_mean,
            "faulty {faulty_mean} vs honest {honest_mean}"
        );
    }

    #[test]
    fn des_run_is_deterministic() {
        let a = build(20, 0.5, 9).run(60);
        let b = build(20, 0.5, 9).run(60);
        assert_eq!(a, b);
    }

    #[test]
    fn des_matches_round_based_driver_on_shape() {
        // The DES path and the batched round-based path should agree
        // closely on accuracy for the same scenario (they differ only in
        // timing artifacts).
        use crate::exp1::EngineKind;
        use crate::exp2::{run_exp2, Exp2Config, FaultLevel};
        let mut des_acc = 0.0;
        let trials = 3;
        for seed in crate::harness::trial_seeds(5, trials) {
            let mut sim = build(30, 0.0, seed);
            des_acc += sim.run(200).accuracy();
        }
        des_acc /= trials as f64;
        let mut batch_acc = 0.0;
        for seed in crate::harness::trial_seeds(5, trials) {
            let mut config = Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit);
            config.events = 200;
            batch_acc += run_exp2(&config, 30.0, seed).accuracy;
        }
        batch_acc /= trials as f64;
        assert!(
            (des_acc - batch_acc).abs() < 0.1,
            "DES {des_acc} vs batched {batch_acc}"
        );
    }

    #[test]
    fn trace_counters_track_stats() {
        let mut sim = build(0, 0.0, 8);
        let mut sim_traced = {
            let inner = build(0, 0.0, 8);
            inner.with_trace(64)
        };
        let plain = sim.run(20);
        let traced = sim_traced.run(20);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let trace = sim_traced.trace();
        assert_eq!(trace.counter("events_injected"), 20);
        assert_eq!(trace.counter("decision_batches") as usize, traced.decision_batches);
        assert!(trace.counter("reports_delivered") > 0);
        assert!(!trace.events_in("decision").is_empty());
    }

    #[test]
    fn retries_recover_reports_on_a_lossy_channel() {
        // A brutal 40%-loss channel: retransmission should deliver
        // measurably more reports than fire-and-forget.
        let build_lossy = |retries: u32| {
            let topo = Topology::uniform_grid(100, 100.0, 100.0);
            let behaviors: Vec<Box<dyn NodeBehavior>> =
                (0..100).map(|_| -> Box<dyn NodeBehavior> { Box::new(CorrectNode::new(0.0, 1.6)) }).collect();
            let config = DesConfig::paper_scale(100.0)
                .with_retries(retries, Duration::from_ticks(10));
            DesClusterSim::new(
                config,
                topo,
                behaviors,
                Box::new(BernoulliLoss::new(0.4)),
                Box::new(TibfitEngine::new(TrustParams::experiment2(), 100)),
                SimRng::seed_from(17),
            )
            .with_trace(16)
        };
        let mut plain = build_lossy(0);
        plain.run(50);
        let mut retrying = build_lossy(3);
        retrying.run(50);
        assert_eq!(plain.trace().counter("retry.count"), 0);
        assert!(retrying.trace().counter("retry.count") > 0);
        assert!(
            retrying.trace().counter("reports_delivered")
                > plain.trace().counter("reports_delivered"),
            "retries {} vs plain {}",
            retrying.trace().counter("reports_delivered"),
            plain.trace().counter("reports_delivered")
        );
    }

    #[test]
    fn retries_are_deterministic_and_bounded() {
        let run = || {
            let topo = Topology::uniform_grid(49, 70.0, 70.0);
            let behaviors: Vec<Box<dyn NodeBehavior>> =
                (0..49).map(|_| -> Box<dyn NodeBehavior> { Box::new(CorrectNode::new(0.0, 1.6)) }).collect();
            let config = DesConfig::paper_scale(70.0)
                .with_retries(5, Duration::from_ticks(15));
            let mut sim = DesClusterSim::new(
                config,
                topo,
                behaviors,
                Box::new(BernoulliLoss::new(0.3)),
                Box::new(TibfitEngine::new(TrustParams::experiment2(), 49)),
                SimRng::seed_from(23),
            )
            .with_trace(16);
            let stats = sim.run(40);
            (stats, sim.trace().counter("retry.count"))
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        // Bounded by the T_out deadline: with backoff 15·2^k the window
        // admits at most 3 attempts (15+30+60 > 100 ticks), so the count
        // can never approach retries × reports.
        assert!(ra > 0);
    }

    #[test]
    fn empty_run_reports_perfect_accuracy() {
        let mut sim = build(0, 0.0, 7);
        let stats = sim.run(0);
        assert_eq!(stats.events_injected, 0);
        assert_eq!(stats.accuracy(), 1.0);
    }
}
