//! Rendering of experiment results: aligned text tables (for the terminal
//! and EXPERIMENTS.md) and CSV files (for external plotting).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use tibfit_sim::stats::Series;

/// One figure or table's worth of data: a set of named series over a
/// common x-axis.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Stable identifier, e.g. `"fig2"` (used as the CSV file stem).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plot lines.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure container.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// The union of x positions across all series, ascending.
    #[must_use]
    pub fn x_positions(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points().into_iter().map(|(x, _)| x))
            .collect();
        // total_cmp: a stray NaN x must not panic mid-render; it sorts
        // last and shows up in the output instead of aborting a sweep.
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Renders an aligned, pipe-delimited table (valid GitHub markdown).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let mut header = format!("| {} ", self.x_label);
        let mut rule = String::from("|---");
        for s in &self.series {
            let _ = write!(header, "| {} ", s.name());
            rule.push_str("|---");
        }
        header.push('|');
        rule.push('|');
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for x in self.x_positions() {
            let mut row = format!("| {} ", format_x(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(row, "| {y:.4} ");
                    }
                    None => row.push_str("| — "),
                }
            }
            row.push('|');
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Renders CSV: header `x,<series...>`, one row per x position;
    /// missing cells are empty.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = std::iter::once(csv_quote(&self.x_label))
            .chain(self.series.iter().map(|s| csv_quote(s.name())))
            .collect();
        let _ = writeln!(out, "{}", header.join(","));
        for x in self.x_positions() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(s.y_at(x).map(|y| format!("{y}")).unwrap_or_default());
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV to `<dir>/<id>.csv`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the
    /// file.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl FigureData {
    /// Renders the figure as an ASCII chart (y over x, one glyph per
    /// series) so the shape is visible straight from the terminal.
    ///
    /// `width`/`height` are the plot area in characters.
    ///
    /// # Panics
    ///
    /// Panics if `width < 8` or `height < 4`.
    #[must_use]
    pub fn to_ascii_chart(&self, width: usize, height: usize) -> String {
        assert!(width >= 8 && height >= 4, "chart area too small");
        let xs = self.x_positions();
        if xs.is_empty() {
            return format!("### {} — {} (no data)\n", self.id, self.title);
        }
        let (x_min, x_max) = (xs[0], *xs.last().expect("non-empty"));
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for s in &self.series {
            for (_, y) in s.points() {
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_min -= 0.5;
            y_max += 0.5;
        }
        let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = glyphs[si % glyphs.len()];
            for (x, y) in s.points() {
                let cx = if x_max > x_min {
                    ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize
                } else {
                    0
                };
                let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = glyph;
            }
        }
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_max:8.2} |")
            } else if i == height - 1 {
                format!("{y_min:8.2} |")
            } else {
                "         |".to_string()
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "          {}\n          {:<w$.1}{:>r$.1}\n",
            "-".repeat(width),
            x_min,
            x_max,
            w = width / 2,
            r = width - width / 2,
        ));
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", glyphs[i % glyphs.len()], s.name()))
            .collect();
        out.push_str(&format!("          {}\n", legend.join("   ")));
        out
    }
}

/// Formats an x position with just enough precision to distinguish sweep
/// points (up to 3 decimals, trailing zeros trimmed).
fn format_x(x: f64) -> String {
    let s = format!("{x:.3}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

/// Minimal CSV quoting: wrap in quotes when the field contains a comma,
/// quote, or newline.
fn csv_quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureData {
        let mut fig = FigureData::new("figX", "Sample", "pct", "accuracy");
        let mut a = Series::new("TIBFIT");
        a.record(40.0, 0.95);
        a.record(50.0, 0.90);
        let mut b = Series::new("Baseline");
        b.record(40.0, 0.91);
        fig.series.push(a);
        fig.series.push(b);
        fig
    }

    #[test]
    fn x_positions_union_sorted() {
        let fig = sample_figure();
        assert_eq!(fig.x_positions(), vec![40.0, 50.0]);
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample_figure().to_markdown();
        assert!(md.contains("| pct | TIBFIT | Baseline |"));
        assert!(md.contains("0.9500"));
        assert!(md.contains("—"), "missing cell should render as dash");
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "pct,TIBFIT,Baseline");
        assert!(lines[1].starts_with("40,0.95,0.91"));
        assert!(lines[2].starts_with("50,0.9,"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn ascii_chart_renders_series_glyphs() {
        let chart = sample_figure().to_ascii_chart(40, 10);
        assert!(chart.contains('*'), "first series glyph");
        assert!(chart.contains('o'), "second series glyph");
        assert!(chart.contains("* TIBFIT"), "legend entry");
        assert!(chart.contains("o Baseline"), "legend entry");
    }

    #[test]
    fn ascii_chart_handles_flat_series() {
        let mut fig = FigureData::new("flat", "Flat", "x", "y");
        let mut s = Series::new("const");
        s.record(0.0, 1.0);
        s.record(10.0, 1.0);
        fig.series.push(s);
        let chart = fig.to_ascii_chart(20, 6);
        assert!(chart.contains('*'));
    }

    #[test]
    fn ascii_chart_empty_figure() {
        let fig = FigureData::new("empty", "Empty", "x", "y");
        assert!(fig.to_ascii_chart(20, 6).contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ascii_chart_rejects_tiny_area() {
        let _ = sample_figure().to_ascii_chart(4, 2);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("tibfit-report-test");
        let path = sample_figure().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("pct,"));
        std::fs::remove_file(path).ok();
    }
}
