//! Experiment 1 (paper §4.1): binary event detection under level-0
//! faults.
//!
//! Setup (Table 1): a cluster of 10 sensing nodes plus a cluster head;
//! every node is an event neighbor of every event; 100 events per
//! simulation; λ = 0.1 and `f_r` = the correct nodes' NER. Faulty nodes
//! are level-0 with a 50% missed-alarm rate and a configurable
//! false-alarm rate. The independent variable is the percentage of
//! faulty nodes (40–90%).
//!
//! Each event interval is simulated as a quiet inter-event round (in
//! which only false alarms can trigger a decision) followed by the real
//! event round; accuracy is the fraction of real events the cluster head
//! detects.

use crate::network::{ClusterSim, ClusterSimConfig};
use crate::report::FigureData;
use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
use tibfit_core::engine::{Aggregator, BaselineEngine, TibfitEngine};
use tibfit_core::trust::TrustParams;
use tibfit_net::channel::Perfect;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;
use tibfit_sim::stats::Series;

/// Which decision engine a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Trust-index weighted voting.
    Tibfit,
    /// Stateless majority voting.
    Baseline,
}

impl EngineKind {
    /// Display name matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Tibfit => "TIBFIT",
            EngineKind::Baseline => "Baseline",
        }
    }
}

/// Table-1 parameters for one Experiment-1 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp1Config {
    /// Cluster size (paper: 10 sensing nodes).
    pub n_nodes: usize,
    /// Real events per simulation (paper: 100).
    pub events: u64,
    /// Trust decay constant λ (paper: 0.1).
    pub lambda: f64,
    /// Correct nodes' natural error rate (paper: 0, 1, or 5%).
    pub correct_ner: f64,
    /// Faulty nodes' missed-alarm probability (paper: 50%).
    pub faulty_missed_alarm: f64,
    /// Faulty nodes' false-alarm probability (paper: 0, 10, or 75%).
    pub faulty_false_alarm: f64,
    /// Which engine decides.
    pub engine: EngineKind,
}

impl Exp1Config {
    /// The Figure-2 setting: missed alarms only, TIBFIT.
    #[must_use]
    pub fn paper_fig2(correct_ner: f64) -> Self {
        Exp1Config {
            n_nodes: 10,
            events: 100,
            lambda: 0.1,
            correct_ner,
            faulty_missed_alarm: 0.5,
            faulty_false_alarm: 0.0,
            engine: EngineKind::Tibfit,
        }
    }

    /// The Figure-3 setting: 1% NER, configurable false alarms, TIBFIT.
    #[must_use]
    pub fn paper_fig3(faulty_false_alarm: f64) -> Self {
        Exp1Config {
            n_nodes: 10,
            events: 100,
            lambda: 0.1,
            correct_ner: 0.01,
            faulty_missed_alarm: 0.5,
            faulty_false_alarm,
            engine: EngineKind::Tibfit,
        }
    }

    fn trust_params(&self) -> TrustParams {
        // Table 1: fault rate f_r = NER. λ must be positive; a 0% NER is
        // representable (f_r = 0).
        TrustParams::new(self.lambda, self.correct_ner)
    }
}

/// Outcome of one Experiment-1 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp1Outcome {
    /// Fraction of real events detected.
    pub accuracy: f64,
    /// Fraction of inter-event rounds in which a spurious event was
    /// declared.
    pub false_positive_rate: f64,
    /// Faulty nodes the engine had diagnosed/isolated by the end.
    pub isolated: usize,
}

/// Runs one Experiment-1 simulation with `pct_faulty`% of the cluster
/// compromised.
///
/// # Panics
///
/// Panics if `pct_faulty` is outside `[0, 100]`.
#[must_use]
pub fn run_exp1(config: &Exp1Config, pct_faulty: f64, seed: u64) -> Exp1Outcome {
    assert!(
        (0.0..=100.0).contains(&pct_faulty),
        "pct_faulty must be a percentage"
    );
    let n = config.n_nodes;
    let n_faulty = (pct_faulty / 100.0 * n as f64).round() as usize;

    let mut rng = SimRng::seed_from(seed);
    // Random placement of the faulty subset.
    let faulty_set = rng.choose_indices(n, n_faulty);

    let topo = Topology::single_cluster(n, 5.0);
    let ch_position = Point::new(topo.width() / 2.0, topo.height() / 2.0);
    let behaviors: Vec<Box<dyn NodeBehavior>> = (0..n)
        .map(|i| -> Box<dyn NodeBehavior> {
            if faulty_set.contains(&i) {
                Box::new(Level0Node::new(Level0Config {
                    missed_alarm: config.faulty_missed_alarm,
                    false_alarm: config.faulty_false_alarm,
                    loc_sigma: 0.0,
                    drop_prob: 0.0,
                }))
            } else {
                Box::new(CorrectNode::new(config.correct_ner, 0.0))
            }
        })
        .collect();

    let engine: Box<dyn Aggregator> = match config.engine {
        EngineKind::Tibfit => Box::new(TibfitEngine::new(config.trust_params(), n)),
        EngineKind::Baseline => Box::new(BaselineEngine::new()),
    };

    let mut sim = ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: 20.0,
            r_error: 5.0,
            ch_position,
        },
        topo,
        behaviors,
        Box::new(Perfect),
        engine,
        rng,
    );

    let mut detected = 0u64;
    let mut false_positives = 0u64;
    for _ in 0..config.events {
        // The quiet inter-event interval: false alarms may fire here.
        let quiet = sim.run_binary_round(false);
        if quiet.event_declared {
            false_positives += 1;
        }
        // The real event.
        let event = sim.run_binary_round(true);
        if event.event_declared {
            detected += 1;
        }
    }
    Exp1Outcome {
        accuracy: detected as f64 / config.events as f64,
        false_positive_rate: false_positives as f64 / config.events as f64,
        isolated: sim.isolated_nodes().len(),
    }
}

/// The faulty-percentage sweep used by Figures 2 and 3.
pub const PCT_SWEEP: [f64; 6] = [40.0, 50.0, 60.0, 70.0, 80.0, 90.0];

/// Builds a swept, trial-averaged series for one configuration.
#[must_use]
pub fn sweep_series(config: &Exp1Config, label: &str, trials: usize, base_seed: u64) -> Series {
    let mut series = Series::new(label);
    let points: Vec<(f64, f64)> = crate::harness::run_parallel(
        PCT_SWEEP
            .iter()
            .flat_map(|&pct| {
                crate::harness::trial_seeds(base_seed ^ (pct as u64), trials)
                    .into_iter()
                    .map(move |seed| (pct, seed))
            })
            .collect(),
        |(pct, seed)| (pct, run_exp1(config, pct, seed).accuracy),
    );
    for (pct, acc) in points {
        series.record(pct, acc);
    }
    series
}

/// Sweeps several labelled configurations through one flattened
/// [`crate::harness::run_parallel`] call: every (series, sweep point,
/// trial) cell is independent, so batching hands the worker pool the
/// whole figure at once instead of one series at a time. Per-series
/// point order is identical to calling [`sweep_series`] per config, so
/// figure output stays byte-identical.
#[must_use]
pub fn sweep_series_batch(
    configs: &[(Exp1Config, String)],
    trials: usize,
    base_seed: u64,
) -> Vec<Series> {
    let items: Vec<(usize, f64, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            PCT_SWEEP.iter().flat_map(move |&pct| {
                crate::harness::trial_seeds(base_seed ^ (pct as u64), trials)
                    .into_iter()
                    .map(move |seed| (si, pct, seed))
            })
        })
        .collect();
    let points = crate::harness::run_parallel(items, |(si, pct, seed)| {
        (si, pct, run_exp1(&configs[si].0, pct, seed).accuracy)
    });
    let mut out: Vec<Series> = configs.iter().map(|(_, label)| Series::new(label)).collect();
    for (si, pct, acc) in points {
        out[si].record(pct, acc);
    }
    out
}

/// Figure 2: binary-event accuracy vs. percentage faulty, missed alarms
/// only, for correct-node NER ∈ {0, 1, 5}%.
#[must_use]
pub fn figure2(trials: usize, base_seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "fig2",
        "Experiment 1 — binary events, 50% missed alarms (TIBFIT)",
        "% faulty nodes",
        "accuracy",
    );
    let configs: Vec<(Exp1Config, String)> = [0.0, 0.01, 0.05]
        .iter()
        .map(|&ner| (Exp1Config::paper_fig2(ner), format!("NER {:.0}%", ner * 100.0)))
        .collect();
    fig.series = sweep_series_batch(&configs, trials, base_seed);
    fig
}

/// Figure 3: accuracy with both missed alarms (50%) and false alarms
/// (0, 10, 75%), correct nodes at 1% NER.
#[must_use]
pub fn figure3(trials: usize, base_seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "fig3",
        "Experiment 1 — 50% missed alarms + false alarms (TIBFIT, NER 1%)",
        "% faulty nodes",
        "accuracy",
    );
    let configs: Vec<(Exp1Config, String)> = [0.0, 0.10, 0.75]
        .iter()
        .map(|&fa| (Exp1Config::paper_fig3(fa), format!("FA {:.0}%", fa * 100.0)))
        .collect();
    fig.series = sweep_series_batch(&configs, trials, base_seed);
    fig
}

/// Renders Table 1 (the experiment's parameter sheet) as markdown.
#[must_use]
pub fn table1() -> String {
    let rows = [
        ("Type of Event", "Binary Event Model".to_string()),
        (
            "Independent Variable",
            "Percentage Faulty Nodes: 40%-90%".to_string(),
        ),
        ("Correct Nodes NER", "0, 1, and 5%".to_string()),
        (
            "Faulty Nodes",
            "Level 0: Missed Alarm 50%, False alarm 0, 10, and 75%".to_string(),
        ),
        ("Size of network", "10 sensing nodes, 1 CH".to_string()),
        ("Number of Event neighbors", "10".to_string()),
        ("Events per simulation", "100".to_string()),
        ("lambda", "0.1".to_string()),
        ("Fault rate (f_r)", "Same as NER".to_string()),
    ];
    let mut out = String::from("### Table 1 — Parameters for Experiment 1\n\n");
    out.push_str("| Parameter | Value |\n|---|---|\n");
    for (k, v) in rows {
        out.push_str(&format!("| {k} | {v} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: &Exp1Config, pct: f64) -> Exp1Outcome {
        run_exp1(config, pct, 1234)
    }

    #[test]
    fn all_correct_cluster_is_perfect() {
        let config = Exp1Config::paper_fig2(0.0);
        let out = quick(&config, 0.0);
        assert_eq!(out.accuracy, 1.0);
        assert_eq!(out.false_positive_rate, 0.0);
    }

    #[test]
    fn tibfit_maintains_accuracy_at_70_percent() {
        // The paper's headline Figure-2 claim: >85% accuracy at 70%
        // compromised.
        let config = Exp1Config::paper_fig2(0.0);
        let out = quick(&config, 70.0);
        assert!(out.accuracy > 0.85, "accuracy {}", out.accuracy);
    }

    #[test]
    fn accuracy_degrades_by_90_percent_faulty() {
        let config = Exp1Config::paper_fig2(0.01);
        let high = quick(&config, 40.0).accuracy;
        let low = quick(&config, 90.0).accuracy;
        assert!(low < high, "40%: {high}, 90%: {low}");
    }

    #[test]
    fn tibfit_beats_baseline_at_high_compromise() {
        let mut t_acc = 0.0;
        let mut b_acc = 0.0;
        let trials = 5;
        for (i, seed) in crate::harness::trial_seeds(9, trials).into_iter().enumerate() {
            let _ = i;
            let tibfit = Exp1Config::paper_fig2(0.01);
            let baseline = Exp1Config {
                engine: EngineKind::Baseline,
                ..tibfit
            };
            t_acc += run_exp1(&tibfit, 70.0, seed).accuracy;
            b_acc += run_exp1(&baseline, 70.0, seed).accuracy;
        }
        t_acc /= trials as f64;
        b_acc /= trials as f64;
        assert!(
            t_acc > b_acc,
            "TIBFIT {t_acc} should beat baseline {b_acc} at 70% faulty"
        );
    }

    #[test]
    fn false_alarms_accelerate_diagnosis() {
        // With false alarms, faulty nodes lose trust faster; below the
        // collapse point accuracy with FA=75% should be at least as good
        // as with FA=0% (the paper's Figure-3 observation).
        let trials = 5;
        let mut acc_fa0 = 0.0;
        let mut acc_fa75 = 0.0;
        for seed in crate::harness::trial_seeds(21, trials) {
            acc_fa0 += run_exp1(&Exp1Config::paper_fig3(0.0), 60.0, seed).accuracy;
            acc_fa75 += run_exp1(&Exp1Config::paper_fig3(0.75), 60.0, seed).accuracy;
        }
        assert!(
            acc_fa75 >= acc_fa0 - 0.05 * trials as f64,
            "FA-75 {acc_fa75} vs FA-0 {acc_fa0}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let config = Exp1Config::paper_fig3(0.10);
        assert_eq!(run_exp1(&config, 60.0, 7), run_exp1(&config, 60.0, 7));
    }

    #[test]
    fn sweep_series_covers_all_points() {
        let config = Exp1Config::paper_fig2(0.0);
        let s = sweep_series(&config, "t", 2, 5);
        assert_eq!(s.len(), PCT_SWEEP.len());
    }

    #[test]
    fn batched_sweep_matches_per_series_sweep() {
        let configs: Vec<(Exp1Config, String)> = vec![
            (Exp1Config::paper_fig2(0.0), "a".into()),
            (Exp1Config::paper_fig3(0.10), "b".into()),
        ];
        let batched = sweep_series_batch(&configs, 2, 5);
        for ((config, label), got) in configs.iter().zip(&batched) {
            let solo = sweep_series(config, label, 2, 5);
            assert_eq!(solo.points(), got.points(), "{label}");
        }
    }

    #[test]
    fn table1_mentions_all_parameters() {
        let t = table1();
        for key in ["Binary Event Model", "40%-90%", "lambda", "0.1", "100"] {
            assert!(t.contains(key), "missing {key}");
        }
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn rejects_bad_percentage() {
        let _ = run_exp1(&Exp1Config::paper_fig2(0.0), 150.0, 0);
    }
}
