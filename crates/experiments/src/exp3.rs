//! Experiment 3 (paper §4.3): decay of the network.
//!
//! The network starts with 5% of its nodes compromised (level 0) and a
//! further 5% is compromised every 50 events until 75% of the network is
//! faulty. Accuracy is reported per 50-event window, which yields the
//! Figure-8/9 accuracy-over-time curves. TIBFIT rides out the decay —
//! nodes compromised early have already lost their trust by the time the
//! faulty set becomes a majority — while the baseline collapses.

use crate::exp1::EngineKind;
use crate::exp2::{Exp2Config, FaultLevel};
use crate::network::{ClusterSim, ClusterSimConfig};
use crate::report::FigureData;
use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CorrectNode, DecaySchedule, Level0Config, Level0Node};
use tibfit_core::engine::{Aggregator, BaselineEngine, TibfitEngine};
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::{NodeId, Topology};
use tibfit_sim::rng::SimRng;
use tibfit_sim::stats::Series;

/// How a node fails when the decay schedule claims it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecayKind {
    /// Compromised by the adversary: becomes a level-0 liar (the paper's
    /// Experiment-3 setting).
    #[default]
    Compromise,
    /// Battery death (the paper's other §3.1 motivation, "batteries of
    /// the nodes dying out with time"): the node goes permanently silent
    /// — a pure missed-alarm failure.
    BatteryDeath,
}

/// Parameters for one Experiment-3 run: the Table-2 network plus a decay
/// schedule.
#[derive(Debug, Clone, Copy)]
pub struct Exp3Config {
    /// The underlying network/error parameters (level is forced to
    /// [`FaultLevel::Level0`] per the paper).
    pub base: Exp2Config,
    /// Initial compromised fraction (paper: 5%).
    pub initial_fraction: f64,
    /// Added compromised fraction per step (paper: 5%).
    pub step_fraction: f64,
    /// Events between steps (paper: 50) — also the accuracy window.
    pub events_per_step: u64,
    /// Final compromised fraction (paper: 75%).
    pub max_fraction: f64,
    /// Extra events to run after saturation.
    pub tail_events: u64,
    /// What happens to a node claimed by the schedule.
    pub decay_kind: DecayKind,
}

impl Exp3Config {
    /// The paper's schedule on a Table-2 network with the given σ pair
    /// and engine.
    #[must_use]
    pub fn paper(correct_sigma: f64, faulty_sigma: f64, engine: EngineKind) -> Self {
        Exp3Config {
            base: Exp2Config::paper(correct_sigma, faulty_sigma, FaultLevel::Level0, engine),
            initial_fraction: 0.05,
            step_fraction: 0.05,
            events_per_step: 50,
            max_fraction: 0.75,
            tail_events: 50,
            decay_kind: DecayKind::Compromise,
        }
    }

    fn schedule(&self) -> DecaySchedule {
        DecaySchedule::new(
            self.base.n_nodes,
            self.initial_fraction,
            self.step_fraction,
            self.events_per_step,
            self.max_fraction,
        )
    }
}

/// One accuracy window from a decay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayWindow {
    /// Index of the first event in the window.
    pub start_event: u64,
    /// Compromised fraction in effect during the window.
    pub compromised_fraction: f64,
    /// Detection accuracy over the window.
    pub accuracy: f64,
}

/// Runs one decay simulation, returning one accuracy point per
/// `events_per_step` window.
#[must_use]
pub fn run_exp3(config: &Exp3Config, seed: u64) -> Vec<DecayWindow> {
    let n = config.base.n_nodes;
    let schedule = config.schedule();
    let total_events = schedule.total_events(config.tail_events);

    let mut rng = SimRng::seed_from(seed);
    // The (randomized) order in which nodes fall to the adversary.
    let compromise_order: Vec<usize> = rng.choose_indices(n, n);

    let topo = Topology::uniform_grid(n, config.base.field, config.base.field);
    let behaviors: Vec<Box<dyn NodeBehavior>> = (0..n)
        .map(|_| -> Box<dyn NodeBehavior> {
            Box::new(CorrectNode::new(0.0, config.base.correct_sigma))
        })
        .collect();
    let engine: Box<dyn Aggregator> = match config.base.engine {
        EngineKind::Tibfit => Box::new(TibfitEngine::new(
            tibfit_core::trust::TrustParams::new(config.base.lambda, config.base.fault_rate),
            n,
        )),
        EngineKind::Baseline => Box::new(BaselineEngine::new()),
    };
    let mut event_rng = rng.fork(0xE3);
    let mut sim = ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: config.base.sensing_radius,
            r_error: config.base.r_error,
            ch_position: Point::new(config.base.field / 2.0, config.base.field / 2.0),
        },
        topo,
        behaviors,
        Box::new(BernoulliLoss::new(config.base.channel_loss)),
        engine,
        rng,
    );

    let lie = Level0Config::experiment2(config.base.faulty_sigma);
    // A dead battery is a permanent missed alarm.
    let dead = Level0Config {
        missed_alarm: 1.0,
        false_alarm: 0.0,
        loc_sigma: 0.0,
        drop_prob: 0.0,
    };
    let mut compromised = 0usize;
    let mut windows = Vec::new();
    let mut window_hits = 0u64;
    let mut window_start = 0u64;

    for event_idx in 0..total_events {
        // Advance the compromise schedule.
        let target = schedule.compromised_at(event_idx);
        while compromised < target {
            let node = compromise_order[compromised];
            let failure = match config.decay_kind {
                DecayKind::Compromise => lie,
                DecayKind::BatteryDeath => dead,
            };
            sim.set_behavior(NodeId(node), Box::new(Level0Node::new(failure)));
            compromised += 1;
        }

        let event = sim.topology().random_event_location(&mut event_rng);
        let result = sim.run_located_round(&[event]);
        window_hits += result.detected_within(config.base.r_error) as u64;

        if (event_idx + 1) % config.events_per_step == 0 || event_idx + 1 == total_events {
            let window_len = event_idx + 1 - window_start;
            windows.push(DecayWindow {
                start_event: window_start,
                compromised_fraction: compromised as f64 / n as f64,
                accuracy: window_hits as f64 / window_len as f64,
            });
            window_hits = 0;
            window_start = event_idx + 1;
        }
    }
    windows
}

/// Builds a trial-averaged accuracy-over-time series for one
/// configuration.
#[must_use]
pub fn decay_series(config: &Exp3Config, trials: usize, base_seed: u64) -> Series {
    let legend = format!(
        "{}-{} {}",
        config.base.correct_sigma,
        config.base.faulty_sigma,
        config.base.engine.label()
    );
    let mut series = Series::new(legend);
    let runs: Vec<Vec<DecayWindow>> = crate::harness::run_parallel(
        crate::harness::trial_seeds(base_seed, trials),
        |seed| run_exp3(config, seed),
    );
    for windows in runs {
        for w in windows {
            series.record(w.start_event as f64, w.accuracy);
        }
    }
    series
}

/// Sweeps several configurations through one flattened
/// [`crate::harness::run_parallel`] call (see `exp1::sweep_series_batch`
/// for the rationale). Per-series record order matches [`decay_series`]
/// — seed-major, then window order — so figure output stays
/// byte-identical.
#[must_use]
pub fn decay_series_batch(configs: &[Exp3Config], trials: usize, base_seed: u64) -> Vec<Series> {
    let items: Vec<(usize, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            crate::harness::trial_seeds(base_seed, trials)
                .into_iter()
                .map(move |seed| (si, seed))
        })
        .collect();
    let runs = crate::harness::run_parallel(items, |(si, seed)| (si, run_exp3(&configs[si], seed)));
    let mut out: Vec<Series> = configs
        .iter()
        .map(|config| {
            Series::new(format!(
                "{}-{} {}",
                config.base.correct_sigma,
                config.base.faulty_sigma,
                config.base.engine.label()
            ))
        })
        .collect();
    for (si, windows) in runs {
        for w in windows {
            out[si].record(w.start_event as f64, w.accuracy);
        }
    }
    out
}

fn decay_figure(id: &str, title: &str, faulty_sigma: f64, trials: usize, base_seed: u64) -> FigureData {
    let mut fig = FigureData::new(id, title, "events elapsed", "windowed accuracy");
    let configs: Vec<Exp3Config> = [1.6, 2.0]
        .into_iter()
        .flat_map(|correct_sigma| {
            [EngineKind::Tibfit, EngineKind::Baseline]
                .into_iter()
                .map(move |engine| Exp3Config::paper(correct_sigma, faulty_sigma, engine))
        })
        .collect();
    fig.series = decay_series_batch(&configs, trials, base_seed);
    fig
}

/// Figure 8: linear decay with faulty σ = 4.25 (both correct σ values,
/// both engines).
#[must_use]
pub fn figure8(trials: usize, base_seed: u64) -> FigureData {
    decay_figure(
        "fig8",
        "Experiment 3 — Linear increase in faulty nodes (faulty σ = 4.25)",
        4.25,
        trials,
        base_seed,
    )
}

/// Figure 9: linear decay with faulty σ = 6.0.
#[must_use]
pub fn figure9(trials: usize, base_seed: u64) -> FigureData {
    decay_figure(
        "fig9",
        "Experiment 3 — Linear increase in faulty nodes (faulty σ = 6.0)",
        6.0,
        trials,
        base_seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(mut c: Exp3Config) -> Exp3Config {
        // Shrink the schedule for unit tests: 20 events per step up to
        // 60% — still several windows.
        c.events_per_step = 20;
        c.max_fraction = 0.60;
        c.tail_events = 20;
        c
    }

    #[test]
    fn batched_decay_matches_per_series_decay() {
        let configs = vec![
            fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit)),
            fast(Exp3Config::paper(1.6, 4.25, EngineKind::Baseline)),
        ];
        let batched = decay_series_batch(&configs, 2, 7);
        assert_eq!(batched.len(), configs.len());
        for (config, got) in configs.iter().zip(&batched) {
            let solo = decay_series(config, 2, 7);
            assert_eq!(solo.points(), got.points());
        }
    }

    #[test]
    fn windows_cover_schedule() {
        let config = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit));
        let windows = run_exp3(&config, 11);
        // (0.60-0.05)/0.05 = 11 steps × 20 events + 20 tail = 240 events
        // → 12 windows.
        assert_eq!(windows.len(), 12);
        assert_eq!(windows[0].start_event, 0);
        assert!((windows[0].compromised_fraction - 0.05).abs() < 1e-9);
        let last = windows.last().unwrap();
        assert!((last.compromised_fraction - 0.60).abs() < 1e-9);
    }

    #[test]
    fn compromise_fraction_monotone() {
        let config = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit));
        let windows = run_exp3(&config, 3);
        let mut prev = 0.0;
        for w in &windows {
            assert!(w.compromised_fraction >= prev);
            prev = w.compromised_fraction;
        }
    }

    #[test]
    fn early_windows_are_accurate() {
        let config = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit));
        let windows = run_exp3(&config, 5);
        assert!(
            windows[0].accuracy > 0.85,
            "5% compromised should be easy: {}",
            windows[0].accuracy
        );
    }

    #[test]
    fn tibfit_outlasts_baseline() {
        // Average the late windows (≥50% compromised) over a few seeds.
        let trials = 3;
        let mut t_late = 0.0;
        let mut b_late = 0.0;
        let mut count = 0.0;
        for seed in crate::harness::trial_seeds(13, trials) {
            let tw = run_exp3(&fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit)), seed);
            let bw = run_exp3(&fast(Exp3Config::paper(1.6, 4.25, EngineKind::Baseline)), seed);
            for (t, b) in tw.iter().zip(&bw) {
                if t.compromised_fraction >= 0.5 {
                    t_late += t.accuracy;
                    b_late += b.accuracy;
                    count += 1.0;
                }
            }
        }
        t_late /= count;
        b_late /= count;
        assert!(
            t_late >= b_late,
            "late-stage TIBFIT {t_late} should beat baseline {b_late}"
        );
    }

    #[test]
    fn decay_series_aggregates_trials() {
        let config = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit));
        let s = decay_series(&config, 2, 7);
        assert_eq!(s.len(), 12, "one x position per window");
    }

    #[test]
    fn run_is_deterministic() {
        let config = fast(Exp3Config::paper(2.0, 6.0, EngineKind::Tibfit));
        assert_eq!(run_exp3(&config, 9), run_exp3(&config, 9));
    }

    #[test]
    fn battery_death_is_survivable_for_tibfit() {
        // Dead nodes only miss; their trust decays and the survivors'
        // reports keep winning even with 60% of the network dark. (The
        // fast test schedule gives each freshly-dead cohort only 20
        // events to be diagnosed, so the bar is below the paper-scale
        // figure.)
        let mut config = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Tibfit));
        config.decay_kind = DecayKind::BatteryDeath;
        let windows = run_exp3(&config, 23);
        let last = windows.last().unwrap();
        assert!((last.compromised_fraction - 0.60).abs() < 1e-9);
        assert!(
            last.accuracy > 0.6,
            "accuracy with 60% dead batteries: {}",
            last.accuracy
        );
    }

    #[test]
    fn silence_hurts_the_baseline_more_than_lies() {
        // A counter-intuitive but real effect: under stateless majority
        // voting, dead (silent) nodes vote "no event" every round, while
        // level-0 liars still deliver 75% of their (noisy) reports and
        // often end up supporting the true event. So battery death is
        // *worse* for the baseline than compromise.
        let seed = 23;
        let mut death = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Baseline));
        death.decay_kind = DecayKind::BatteryDeath;
        let compromise = fast(Exp3Config::paper(1.6, 4.25, EngineKind::Baseline));
        let late = |config: &Exp3Config| -> f64 {
            let w: Vec<f64> = run_exp3(config, seed)
                .iter()
                .filter(|w| w.compromised_fraction >= 0.5)
                .map(|w| w.accuracy)
                .collect();
            w.iter().sum::<f64>() / w.len() as f64
        };
        let d_late = late(&death);
        let c_late = late(&compromise);
        assert!(
            d_late < c_late,
            "death {d_late} should be worse than compromise {c_late} for the baseline"
        );
    }

    #[test]
    fn tibfit_beats_baseline_under_battery_death() {
        // TIBFIT handles silence the same way it handles lies: the dead
        // nodes' trust decays and the survivors outvote them.
        let seed = 29;
        let mk = |engine: EngineKind| {
            let mut c = fast(Exp3Config::paper(1.6, 4.25, engine));
            c.decay_kind = DecayKind::BatteryDeath;
            c
        };
        let late = |config: &Exp3Config| -> f64 {
            let w: Vec<f64> = run_exp3(config, seed)
                .iter()
                .filter(|w| w.compromised_fraction >= 0.5)
                .map(|w| w.accuracy)
                .collect();
            w.iter().sum::<f64>() / w.len() as f64
        };
        let t = late(&mk(EngineKind::Tibfit));
        let b = late(&mk(EngineKind::Baseline));
        assert!(t > b, "TIBFIT {t} vs baseline {b} under battery death");
    }
}
