//! Checkpoint/restore for the multi-cluster engines.
//!
//! A checkpoint captures a deployment at a round boundary — the only
//! instant where no timers are in flight and no reports are buffered —
//! and serializes it into the versioned, CRC-framed container from
//! [`tibfit_sim::snapshot`]. The format is *engine-agnostic*: the same
//! blob restores into the sequential [`MultiClusterSim`] or the sharded
//! [`ShardedMultiCluster`] at any thread count, and both engines save
//! byte-identical blobs at the same logical round. That is what makes
//! kill-anywhere/resume-bit-identical work: the crash harness in
//! `tests/crash_resume.rs` snapshots under one engine, resumes under
//! either, and the completed run's declarations, trust trajectories,
//! counters, and CSVs match the uninterrupted run byte for byte.
//!
//! ## Layout (container version 1)
//!
//! ```text
//! section 1 (deployment): round, n_nodes, cluster_count,
//!     sensing_radius, r_error, λ, f_r, drift_sigma, reelect_every,
//!     field_w, field_h, sites
//! section 2 × cluster_count (one per cluster, ascending index):
//!     index, head, members, positions, behaviors, channel, rng,
//!     trust table (counters, cached TI, status, policy, metrics),
//!     trace counters
//! ```
//!
//! Every decoded field is validated (lengths agree, probabilities in
//! range, cached TI bit-equal to `e^(−λ·v)`, membership a partition of
//! the node set), so a corrupt or truncated blob — *any* corrupt blob —
//! surfaces as a typed [`SnapshotError`], never a panic. The fuzz tests
//! in `tests/snapshot_fuzz.rs` pin that contract with seeded bit-flips
//! and truncations.

use std::io::Write as _;
use std::path::Path;

use tibfit_core::trust::{NodeStatus, TrustArith, TrustParams, TrustTableState};
use tibfit_net::channel::ChannelSnapshot;
use tibfit_net::geometry::Point;
use tibfit_net::topology::NodeId;
use tibfit_adversary::behavior::BehaviorSnapshot;
use tibfit_adversary::Level0Config;
use tibfit_sim::rng::RngState;
use tibfit_sim::snapshot::{
    SectionBuf, SectionReader, SnapshotError, SnapshotReader, SnapshotWriter,
};

use crate::multicluster::{
    ClusterCapture, ClusterState, MultiClusterConfig, MultiClusterSim, SimCapture, COUNTER_NAMES,
};
use crate::sharded::{ShardedError, ShardedMultiCluster};

/// Section tag: deployment-wide header.
const TAG_DEPLOYMENT: u8 = 1;
/// Section tag: one cluster.
const TAG_CLUSTER: u8 = 2;

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The blob was malformed, corrupt, or version-skewed.
    Snapshot(SnapshotError),
    /// The decoded deployment was rejected by an engine constructor
    /// (e.g. a zero worker-thread count on the sharded path).
    Engine(ShardedError),
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Snapshot(e) => write!(f, "checkpoint rejected: {e}"),
            CheckpointError::Engine(e) => write!(f, "restored deployment rejected: {e}"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Snapshot(e) => Some(e),
            CheckpointError::Engine(e) => Some(e),
            CheckpointError::Io(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

impl From<ShardedError> for CheckpointError {
    fn from(e: ShardedError) -> Self {
        CheckpointError::Engine(e)
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes the sequential engine's current state.
///
/// # Errors
///
/// [`SnapshotError::Unsupported`] if any behaviour or channel in the
/// deployment has no snapshot form (e.g. level-2 colluders).
pub fn save_sequential(sim: &MultiClusterSim) -> Result<Vec<u8>, SnapshotError> {
    Ok(encode(&sim.capture()?))
}

/// Serializes the sharded engine's current state, at the epoch barrier.
///
/// At the same logical round this produces bytes identical to
/// [`save_sequential`] on the equivalent sequential simulation.
///
/// # Errors
///
/// [`SnapshotError::Unsupported`] if a shard has timers in flight or a
/// behaviour/channel has no snapshot form.
pub fn save_sharded(sim: &ShardedMultiCluster) -> Result<Vec<u8>, SnapshotError> {
    Ok(encode(&sim.capture()?))
}

/// Restores a blob into the sequential engine.
///
/// # Errors
///
/// [`CheckpointError::Snapshot`] for any malformed, corrupt, or
/// internally inconsistent blob.
pub fn restore_sequential(bytes: &[u8]) -> Result<MultiClusterSim, CheckpointError> {
    let cap = decode(bytes)?;
    let clusters = build_clusters(&cap)?;
    Ok(MultiClusterSim::from_parts(
        cap.config,
        cap.sites,
        clusters,
        cap.n_nodes,
        cap.round,
    ))
}

/// Restores a blob into the sharded engine over `threads` workers. The
/// blob need not have been saved by the sharded engine — cross-engine
/// restore is the point of the shared format.
///
/// # Errors
///
/// [`CheckpointError::Snapshot`] for a bad blob,
/// [`CheckpointError::Engine`] for a zero thread count.
pub fn restore_sharded(bytes: &[u8], threads: usize) -> Result<ShardedMultiCluster, CheckpointError> {
    let cap = decode(bytes)?;
    let clusters = build_clusters(&cap)?;
    Ok(ShardedMultiCluster::from_clusters(
        cap.config,
        cap.sites,
        clusters,
        cap.n_nodes,
        cap.round,
        threads,
    )?)
}

/// Writes a checkpoint atomically: the bytes land in `path.tmp` first
/// and are renamed over `path`, so a crash mid-write can never leave a
/// half-written blob where a resume would look for one.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure.
pub fn write_checkpoint(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    // The first checkpoint of a sweep can land before anything else has
    // created the --out directory.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a checkpoint file.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    Ok(std::fs::read(path)?)
}

fn put_point(s: &mut SectionBuf, p: Point) {
    s.put_f64(p.x);
    s.put_f64(p.y);
}

fn take_point(s: &mut SectionReader<'_>) -> Result<Point, SnapshotError> {
    let x = s.take_f64()?;
    let y = s.take_f64()?;
    Ok(Point::new(x, y))
}

fn put_level0(s: &mut SectionBuf, c: &Level0Config) {
    s.put_f64(c.missed_alarm);
    s.put_f64(c.false_alarm);
    s.put_f64(c.loc_sigma);
    s.put_f64(c.drop_prob);
}

fn take_level0(s: &mut SectionReader<'_>) -> Result<Level0Config, SnapshotError> {
    Ok(Level0Config {
        missed_alarm: s.take_f64()?,
        false_alarm: s.take_f64()?,
        loc_sigma: s.take_f64()?,
        drop_prob: s.take_f64()?,
    })
}

fn put_behavior(s: &mut SectionBuf, b: &BehaviorSnapshot) {
    match b {
        BehaviorSnapshot::Correct { ner, loc_sigma } => {
            s.put_u8(0);
            s.put_f64(*ner);
            s.put_f64(*loc_sigma);
        }
        BehaviorSnapshot::Level0 { config } => {
            s.put_u8(1);
            put_level0(s, config);
        }
        BehaviorSnapshot::Level1 {
            lie_config,
            honest_sigma,
            params,
            thresholds,
            lying,
            estimate_v,
        } => {
            s.put_u8(2);
            put_level0(s, lie_config);
            s.put_f64(*honest_sigma);
            s.put_f64(params.lambda);
            s.put_f64(params.fault_rate);
            match thresholds {
                Some((lo, hi)) => {
                    s.put_bool(true);
                    s.put_f64(*lo);
                    s.put_f64(*hi);
                }
                None => s.put_bool(false),
            }
            s.put_bool(*lying);
            s.put_f64(*estimate_v);
        }
    }
}

fn take_behavior(s: &mut SectionReader<'_>) -> Result<BehaviorSnapshot, SnapshotError> {
    match s.take_u8()? {
        0 => Ok(BehaviorSnapshot::Correct {
            ner: s.take_f64()?,
            loc_sigma: s.take_f64()?,
        }),
        1 => Ok(BehaviorSnapshot::Level0 {
            config: take_level0(s)?,
        }),
        2 => {
            let lie_config = take_level0(s)?;
            let honest_sigma = s.take_f64()?;
            let lambda = s.take_f64()?;
            let fault_rate = s.take_f64()?;
            let params = TrustParams::try_new(lambda, fault_rate)
                .map_err(|_| SnapshotError::Invalid("level-1 mirror params out of range"))?;
            let thresholds = if s.take_bool()? {
                Some((s.take_f64()?, s.take_f64()?))
            } else {
                None
            };
            Ok(BehaviorSnapshot::Level1 {
                lie_config,
                honest_sigma,
                params,
                thresholds,
                lying: s.take_bool()?,
                estimate_v: s.take_f64()?,
            })
        }
        _ => Err(SnapshotError::Invalid("unknown behavior tag")),
    }
}

fn put_channel(s: &mut SectionBuf, c: &ChannelSnapshot) {
    match c {
        ChannelSnapshot::Perfect => s.put_u8(0),
        ChannelSnapshot::Bernoulli { loss_probability } => {
            s.put_u8(1);
            s.put_f64(*loss_probability);
        }
        ChannelSnapshot::Distance {
            reliable_range,
            max_range,
        } => {
            s.put_u8(2);
            s.put_f64(*reliable_range);
            s.put_f64(*max_range);
        }
        ChannelSnapshot::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            bad,
            forced,
        } => {
            s.put_u8(3);
            s.put_f64(*p_gb);
            s.put_f64(*p_bg);
            s.put_f64(*loss_good);
            s.put_f64(*loss_bad);
            s.put_bool(*bad);
            s.put_bool(*forced);
        }
    }
}

fn take_channel(s: &mut SectionReader<'_>) -> Result<ChannelSnapshot, SnapshotError> {
    match s.take_u8()? {
        0 => Ok(ChannelSnapshot::Perfect),
        1 => Ok(ChannelSnapshot::Bernoulli {
            loss_probability: s.take_f64()?,
        }),
        2 => Ok(ChannelSnapshot::Distance {
            reliable_range: s.take_f64()?,
            max_range: s.take_f64()?,
        }),
        3 => Ok(ChannelSnapshot::GilbertElliott {
            p_gb: s.take_f64()?,
            p_bg: s.take_f64()?,
            loss_good: s.take_f64()?,
            loss_bad: s.take_f64()?,
            bad: s.take_bool()?,
            forced: s.take_bool()?,
        }),
        _ => Err(SnapshotError::Invalid("unknown channel tag")),
    }
}

fn put_status(s: &mut SectionBuf, st: NodeStatus) {
    match st {
        NodeStatus::Active => s.put_u8(0),
        NodeStatus::Quarantined { remaining } => {
            s.put_u8(1);
            s.put_u64(remaining);
        }
        NodeStatus::Probation { remaining } => {
            s.put_u8(2);
            s.put_u64(remaining);
        }
    }
}

fn take_status(s: &mut SectionReader<'_>) -> Result<NodeStatus, SnapshotError> {
    match s.take_u8()? {
        0 => Ok(NodeStatus::Active),
        1 => Ok(NodeStatus::Quarantined {
            remaining: s.take_u64()?,
        }),
        2 => Ok(NodeStatus::Probation {
            remaining: s.take_u64()?,
        }),
        _ => Err(SnapshotError::Invalid("unknown node-status tag")),
    }
}

fn encode_cluster(s: &mut SectionBuf, cap: &ClusterCapture) {
    s.put_usize(cap.index);
    put_point(s, cap.head_position);
    s.put_usize(cap.members.len());
    for m in &cap.members {
        s.put_usize(m.index());
    }
    for p in &cap.positions {
        put_point(s, *p);
    }
    for b in &cap.behaviors {
        put_behavior(s, b);
    }
    put_channel(s, &cap.channel);
    for w in cap.rng.s {
        s.put_u64(w);
    }
    s.put_opt_f64(cap.rng.gauss_spare);
    // Trust table. λ/f_r are deployment-wide (section 1), not repeated.
    for v in &cap.trust.counters {
        s.put_f64(*v);
    }
    for ti in &cap.trust.cached_ti {
        s.put_f64(*ti);
    }
    for st in &cap.trust.status {
        put_status(s, *st);
    }
    s.put_opt_f64(cap.trust.isolation_threshold);
    match cap.trust.reintegration {
        Some((q, p)) => {
            s.put_bool(true);
            s.put_u64(q);
            s.put_u64(p);
        }
        None => s.put_bool(false),
    }
    s.put_u64(cap.trust.exp_evals);
    s.put_u64(cap.trust.ti_reads);
    for c in cap.counters {
        s.put_u64(c);
    }
}

fn decode_cluster(
    s: &mut SectionReader<'_>,
    trust_params: TrustParams,
) -> Result<ClusterCapture, SnapshotError> {
    let index = s.take_usize()?;
    let head_position = take_point(s)?;
    let n = s.take_count(8)?;
    if n == 0 {
        return Err(SnapshotError::Invalid("cluster has no members"));
    }
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(NodeId(s.take_usize()?));
    }
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(take_point(s)?);
    }
    let mut behaviors = Vec::with_capacity(n);
    for _ in 0..n {
        behaviors.push(take_behavior(s)?);
    }
    let channel = take_channel(s)?;
    let mut words = [0u64; 4];
    for w in &mut words {
        *w = s.take_u64()?;
    }
    let rng = RngState {
        s: words,
        gauss_spare: s.take_opt_f64()?,
    };
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push(s.take_f64()?);
    }
    let mut cached_ti = Vec::with_capacity(n);
    for _ in 0..n {
        cached_ti.push(s.take_f64()?);
    }
    let mut status = Vec::with_capacity(n);
    for _ in 0..n {
        status.push(take_status(s)?);
    }
    let isolation_threshold = s.take_opt_f64()?;
    let reintegration = if s.take_bool()? {
        Some((s.take_u64()?, s.take_u64()?))
    } else {
        None
    };
    let exp_evals = s.take_u64()?;
    let ti_reads = s.take_u64()?;
    let trust = TrustTableState {
        lambda: trust_params.lambda,
        fault_rate: trust_params.fault_rate,
        arith: trust_params.arith,
        counters,
        cached_ti,
        status,
        isolation_threshold,
        reintegration,
        exp_evals,
        ti_reads,
    };
    let mut trace = [0u64; COUNTER_NAMES.len()];
    for c in &mut trace {
        *c = s.take_u64()?;
    }
    Ok(ClusterCapture {
        index,
        head_position,
        members,
        positions,
        behaviors,
        channel,
        rng,
        trust,
        counters: trace,
    })
}

fn encode(cap: &SimCapture) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.section(TAG_DEPLOYMENT, |s| {
        s.put_u64(cap.round);
        s.put_usize(cap.n_nodes);
        s.put_usize(cap.clusters.len());
        s.put_f64(cap.config.sensing_radius);
        s.put_f64(cap.config.r_error);
        s.put_f64(cap.config.trust.lambda);
        s.put_f64(cap.config.trust.fault_rate);
        s.put_u8(match cap.config.trust.arith {
            TrustArith::Float64 => 0,
            TrustArith::FixedQ16 => 1,
        });
        s.put_f64(cap.config.drift_sigma);
        s.put_u64(cap.config.reelect_every);
        s.put_f64(cap.field.0);
        s.put_f64(cap.field.1);
        s.put_usize(cap.sites.len());
        for site in &cap.sites {
            put_point(s, *site);
        }
    });
    for cluster in &cap.clusters {
        w.section(TAG_CLUSTER, |s| encode_cluster(s, cluster));
    }
    w.finish()
}

fn decode(bytes: &[u8]) -> Result<SimCapture, SnapshotError> {
    let mut r = SnapshotReader::new(bytes)?;
    let mut s = r.section(TAG_DEPLOYMENT)?;
    let round = s.take_u64()?;
    let n_nodes = s.take_usize()?;
    let cluster_count = s.take_usize()?;
    let sensing_radius = s.take_f64()?;
    let r_error = s.take_f64()?;
    let lambda = s.take_f64()?;
    let fault_rate = s.take_f64()?;
    let arith = match s.take_u8()? {
        0 => TrustArith::Float64,
        1 => TrustArith::FixedQ16,
        _ => return Err(SnapshotError::Invalid("unknown trust arithmetic backend")),
    };
    let drift_sigma = s.take_f64()?;
    let reelect_every = s.take_u64()?;
    let field_w = s.take_f64()?;
    let field_h = s.take_f64()?;
    let n_sites = s.take_count(16)?;
    let mut sites = Vec::with_capacity(n_sites);
    for _ in 0..n_sites {
        sites.push(take_point(&mut s)?);
    }
    s.end()?;

    let trust = match arith {
        TrustArith::Float64 => TrustParams::try_new(lambda, fault_rate),
        TrustArith::FixedQ16 => TrustParams::try_new_fixed(lambda, fault_rate),
    }
    .map_err(|_| SnapshotError::Invalid("trust params out of range"))?;
    let config = MultiClusterConfig {
        sensing_radius,
        r_error,
        trust,
        drift_sigma,
        reelect_every,
    };
    config
        .validate()
        .map_err(|_| SnapshotError::Invalid("deployment config out of range"))?;
    if !(field_w.is_finite() && field_w > 0.0 && field_h.is_finite() && field_h > 0.0) {
        return Err(SnapshotError::Invalid("field dimensions out of range"));
    }
    if cluster_count == 0 || n_nodes == 0 {
        return Err(SnapshotError::Invalid("empty deployment"));
    }
    if sites.len() != cluster_count {
        return Err(SnapshotError::Invalid("site count disagrees with cluster count"));
    }
    if sites
        .iter()
        .any(|p| !(p.x.is_finite() && p.y.is_finite()))
    {
        return Err(SnapshotError::Invalid("non-finite site"));
    }

    let mut clusters = Vec::with_capacity(cluster_count);
    for i in 0..cluster_count {
        let mut s = r.section(TAG_CLUSTER)?;
        let cap = decode_cluster(&mut s, trust)?;
        s.end()?;
        if cap.index != i {
            return Err(SnapshotError::Invalid("cluster sections out of order"));
        }
        clusters.push(cap);
    }
    r.finish()?;

    // Membership must partition the node set: every id exactly once.
    let mut seen = vec![false; n_nodes];
    for cluster in &clusters {
        for m in &cluster.members {
            let slot = seen
                .get_mut(m.index())
                .ok_or(SnapshotError::Invalid("member id out of range"))?;
            if *slot {
                return Err(SnapshotError::Invalid("node in two clusters"));
            }
            *slot = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err(SnapshotError::Invalid("node in no cluster"));
    }

    Ok(SimCapture {
        config,
        sites,
        clusters,
        n_nodes,
        round,
        field: (field_w, field_h),
    })
}

fn build_clusters(cap: &SimCapture) -> Result<Vec<ClusterState>, SnapshotError> {
    cap.clusters
        .iter()
        .map(|c| ClusterState::from_capture(c.clone(), cap.config, cap.field.0, cap.field.1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicluster::five_ch_sites;
    use tibfit_adversary::behavior::NodeBehavior;
    use tibfit_adversary::{CorrectNode, Level0Config, Level0Node};
    use tibfit_net::channel::{BernoulliLoss, ChannelModel};
    use tibfit_net::topology::Topology;
    use tibfit_sim::rng::SimRng;

    fn build(seed: u64) -> MultiClusterSim {
        let topo = Topology::uniform_grid(64, 80.0, 80.0);
        let faulty = SimRng::seed_from(seed ^ 0xAA).choose_indices(64, 16);
        let behaviors: Vec<Box<dyn NodeBehavior + Send>> = (0..64)
            .map(|i| -> Box<dyn NodeBehavior + Send> {
                if faulty.contains(&i) {
                    Box::new(Level0Node::new(Level0Config::experiment2(4.25)))
                } else {
                    Box::new(CorrectNode::new(0.0, 1.6))
                }
            })
            .collect();
        MultiClusterSim::new(
            MultiClusterConfig::paper().mobile(0.6, 3),
            topo,
            five_ch_sites(80.0),
            behaviors,
            |_| Box::new(BernoulliLoss::new(0.005)) as Box<dyn ChannelModel + Send>,
            seed,
        )
    }

    fn run_rounds(sim: &mut MultiClusterSim, from: u64, count: u64) {
        let mut rng = SimRng::seed_from(0xE7E7);
        // Skip to the right point in the shared event stream.
        for _ in 0..from {
            let _ = (rng.uniform_range(0.0, 80.0), rng.uniform_range(0.0, 80.0));
        }
        for _ in 0..count {
            let event = Point::new(rng.uniform_range(0.0, 80.0), rng.uniform_range(0.0, 80.0));
            sim.run_event(event);
        }
    }

    #[test]
    fn save_restore_save_is_byte_identical() {
        let mut sim = build(21);
        run_rounds(&mut sim, 0, 7);
        let blob = save_sequential(&sim).unwrap();
        let restored = restore_sequential(&blob).unwrap();
        let blob2 = save_sequential(&restored).unwrap();
        assert_eq!(blob, blob2, "save → restore → save must be a fixed point");
    }

    #[test]
    fn sequential_and_sharded_save_identical_bytes() {
        let mut sim = build(22);
        run_rounds(&mut sim, 0, 6);
        let blob_seq = save_sequential(&sim).unwrap();
        let sharded = ShardedMultiCluster::from_sequential(sim, 2).unwrap();
        let blob_par = save_sharded(&sharded).unwrap();
        assert_eq!(blob_seq, blob_par, "both engines share one snapshot format");
    }

    #[test]
    fn restored_run_matches_uninterrupted_run() {
        let mut full = build(23);
        run_rounds(&mut full, 0, 12);

        let mut half = build(23);
        run_rounds(&mut half, 0, 5);
        let blob = save_sequential(&half).unwrap();
        let mut resumed = restore_sequential(&blob).unwrap();
        run_rounds(&mut resumed, 5, 7);

        assert_eq!(full.trust_snapshot(), resumed.trust_snapshot());
        assert_eq!(full.position_snapshot(), resumed.position_snapshot());
        assert_eq!(full.counters(), resumed.counters());
    }

    #[test]
    fn cross_engine_restore_matches() {
        let mut seq = build(24);
        run_rounds(&mut seq, 0, 5);
        let blob = save_sequential(&seq).unwrap();
        let par = restore_sharded(&blob, 4).unwrap();
        assert_eq!(seq.trust_snapshot(), par.trust_snapshot());
        assert_eq!(seq.counters(), par.counters());
    }

    #[test]
    fn corrupt_blobs_are_rejected_not_panicked() {
        let mut sim = build(25);
        run_rounds(&mut sim, 0, 4);
        let blob = save_sequential(&sim).unwrap();

        // Truncations at a few structural offsets.
        for cut in [0, 3, 6, 20, blob.len() / 2, blob.len() - 1] {
            assert!(
                restore_sequential(&blob[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // A flipped bit anywhere fails CRC or field validation.
        for offset in [0, 4, 8, 40, blob.len() / 2, blob.len() - 2] {
            let mut bad = blob.clone();
            bad[offset] ^= 0x10;
            assert!(
                restore_sequential(&bad).is_err(),
                "bit flip at {offset} accepted"
            );
        }
        // Zero threads is an engine error, not a panic.
        assert!(matches!(
            restore_sharded(&blob, 0),
            Err(CheckpointError::Engine(_))
        ));
    }

    #[test]
    fn checkpoint_files_roundtrip_atomically() {
        let mut sim = build(26);
        run_rounds(&mut sim, 0, 3);
        let blob = save_sequential(&sim).unwrap();
        let dir = std::env::temp_dir().join("tibfit-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.tbsn");
        write_checkpoint(&path, &blob).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), blob);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must be renamed away"
        );
        std::fs::remove_file(&path).unwrap();
        // Missing file surfaces as Io, not a panic.
        assert!(matches!(
            read_checkpoint(&path),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn errors_display() {
        let e = CheckpointError::Snapshot(SnapshotError::BadMagic);
        assert!(e.to_string().contains("magic"));
        let e = CheckpointError::Io(std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("disk gone"));
    }
}
