//! # tibfit-experiments
//!
//! The experiment harness that reproduces every table and figure of the
//! TIBFIT paper's evaluation (§4) and analysis (§5):
//!
//! | Paper artifact | Module / function |
//! |---|---|
//! | Table 1 (Exp-1 parameters) | [`exp1::Exp1Config::paper_fig2`] / [`exp1::Exp1Config::paper_fig3`] |
//! | Figure 2 (binary, missed alarms) | [`exp1::figure2`] |
//! | Figure 3 (binary, missed + false alarms) | [`exp1::figure3`] |
//! | Table 2 (Exp-2 parameters) | [`exp2::Exp2Config::paper`] |
//! | Figure 4 (location, level 0) | [`exp2::figure4`] |
//! | Figure 5 (location, level 1) | [`exp2::figure5`] |
//! | Figure 6 (location, level 2) | [`exp2::figure6`] |
//! | Figure 7 (single vs concurrent) | [`exp2::figure7`] |
//! | Figures 8–9 (network decay) | [`exp3::figure8`] / [`exp3::figure9`] |
//! | Figure 10 (baseline analysis) | re-exported from [`tibfit_analysis::fig10`] |
//! | Figure 11 (tolerable corruption rate) | re-exported from [`tibfit_analysis::fig11`] |
//!
//! [`network`] holds the simulated cluster that drives the protocol stack
//! end-to-end (topology → behaviors → channel → cluster-head engine →
//! trust feedback); [`harness`] runs multi-trial sweeps; [`report`]
//! renders series as aligned tables and CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod checkpoint;
pub mod des;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4_shadow;
pub mod exp5_chaos;
pub mod exp6_scale;
pub mod harness;
pub mod multicluster;
pub mod network;
pub mod replay;
pub mod report;
pub mod sharded;

pub use network::{BinaryRoundResult, ClusterSim, ClusterSimConfig, LocatedRoundResult, Role};
