//! Experiment 2 (paper §4.2): event detection with location
//! determination.
//!
//! Setup (Table 2): 100 nodes uniform on a 100×100 grid, single logical
//! cluster whose head knows all positions, sensing radius 20,
//! `r_error` = 5, λ = 0.25, `f_r` = 0.1. Correct nodes localize with
//! per-axis Gaussian error σ ∈ {1.6, 2.0}; faulty nodes with
//! σ ∈ {4.25, 6.0} and drop 25% of their packets. Faulty nodes are
//! level 0 (naive), level 1 (smart independent, hysteresis 0.5/0.8), or
//! level 2 (smart colluding). The independent variable is the percentage
//! compromised (10–58%); accuracy is the fraction of events the CH
//! declares within `r_error` of the true location.

use std::cell::RefCell;
use std::rc::Rc;

use crate::exp1::EngineKind;
use crate::network::{ClusterSim, ClusterSimConfig};
use crate::report::FigureData;
use tibfit_adversary::behavior::NodeBehavior;
use tibfit_adversary::{CollusionCoordinator, CorrectNode, Level0Config, Level0Node, Level1Node, Level2Node};
use tibfit_core::engine::{Aggregator, BaselineEngine, TibfitEngine};
use tibfit_core::trust::TrustParams;
use tibfit_net::channel::BernoulliLoss;
use tibfit_net::geometry::Point;
use tibfit_net::topology::Topology;
use tibfit_sim::rng::SimRng;
use tibfit_sim::stats::Series;

/// The adversary sophistication level under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLevel {
    /// Naive random liars.
    Level0,
    /// Smart independent liars (trust-aware hysteresis).
    Level1,
    /// Smart colluding liars (shared lie or shared silence).
    Level2,
}

impl FaultLevel {
    /// Legend label ("Lvl 0" etc.).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultLevel::Level0 => "Lvl 0",
            FaultLevel::Level1 => "Lvl 1",
            FaultLevel::Level2 => "Lvl 2",
        }
    }
}

/// Table-2 parameters for one Experiment-2 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp2Config {
    /// Network size (paper: 100).
    pub n_nodes: usize,
    /// Field side length (paper: 100×100).
    pub field: f64,
    /// Sensing radius `r_s` (paper: 20).
    pub sensing_radius: f64,
    /// Localization tolerance `r_error` (paper: 5).
    pub r_error: f64,
    /// Events per simulation (the paper doesn't state it; 300 lets trust
    /// settle while keeping runs fast — see DESIGN.md §5).
    pub events: u64,
    /// Trust decay constant (paper: 0.25).
    pub lambda: f64,
    /// Trust fault rate `f_r` (paper: 0.1, decoupled from NER to absorb
    /// channel losses).
    pub fault_rate: f64,
    /// Correct nodes' per-axis location error σ (paper: 1.6 or 2.0).
    pub correct_sigma: f64,
    /// Faulty nodes' per-axis location error σ (paper: 4.25 or 6.0).
    pub faulty_sigma: f64,
    /// Ambient wireless loss for every transmission (paper: "<1%").
    pub channel_loss: f64,
    /// The adversary level.
    pub level: FaultLevel,
    /// Which engine decides.
    pub engine: EngineKind,
    /// When `true`, each round injects two concurrent events (Figure 7).
    pub concurrent_events: bool,
}

impl Exp2Config {
    /// The paper's Table-2 defaults with a chosen σ pair, level, and
    /// engine.
    #[must_use]
    pub fn paper(
        correct_sigma: f64,
        faulty_sigma: f64,
        level: FaultLevel,
        engine: EngineKind,
    ) -> Self {
        Exp2Config {
            n_nodes: 100,
            field: 100.0,
            sensing_radius: 20.0,
            r_error: 5.0,
            events: 300,
            lambda: 0.25,
            fault_rate: 0.1,
            correct_sigma,
            faulty_sigma,
            channel_loss: 0.005,
            level,
            engine,
            concurrent_events: false,
        }
    }

    fn trust_params(&self) -> TrustParams {
        TrustParams::new(self.lambda, self.fault_rate)
    }

    /// Legend string in the paper's format:
    /// `"Lvl M W-Z [TIBFIT|Baseline]"`.
    #[must_use]
    pub fn legend(&self) -> String {
        format!(
            "{} {}-{} {}",
            self.level.label(),
            self.correct_sigma,
            self.faulty_sigma,
            self.engine.label()
        )
    }
}

/// Outcome of one Experiment-2 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp2Outcome {
    /// Fraction of true events detected within `r_error`.
    pub accuracy: f64,
    /// Mean spurious event declarations per round.
    pub false_positives_per_round: f64,
    /// Nodes diagnosed/isolated by the end (TIBFIT only).
    pub isolated: usize,
}

/// Builds the behavior stack for a run.
fn build_behaviors(
    config: &Exp2Config,
    faulty_set: &[usize],
    seed: u64,
) -> Vec<Box<dyn NodeBehavior>> {
    let params = config.trust_params();
    let lie = Level0Config::experiment2(config.faulty_sigma);
    // Smart adversaries only restrain themselves when a trust system can
    // diagnose them; against the stateless baseline they lie relentlessly.
    let restrained = config.engine == EngineKind::Tibfit;
    // One shared coordinator per run for the level-2 gang.
    let coordinator: Rc<RefCell<CollusionCoordinator>> = Rc::new(RefCell::new(if restrained {
        CollusionCoordinator::with_paper_thresholds(seed ^ 0xC0DE, config.faulty_sigma, params)
    } else {
        CollusionCoordinator::relentless(seed ^ 0xC0DE, config.faulty_sigma, params)
    }));
    let mut first_colluder = true;
    (0..config.n_nodes)
        .map(|i| -> Box<dyn NodeBehavior> {
            if faulty_set.contains(&i) {
                match config.level {
                    FaultLevel::Level0 => Box::new(Level0Node::new(lie)),
                    FaultLevel::Level1 if restrained => {
                        Box::new(Level1Node::with_paper_thresholds(
                            lie,
                            config.correct_sigma,
                            params,
                        ))
                    }
                    FaultLevel::Level1 => Box::new(Level1Node::relentless(
                        lie,
                        config.correct_sigma,
                        params,
                    )),
                    FaultLevel::Level2 => {
                        let representative = first_colluder;
                        first_colluder = false;
                        Box::new(Level2Node::new(
                            Rc::clone(&coordinator),
                            config.correct_sigma,
                            representative,
                        ))
                    }
                }
            } else {
                Box::new(CorrectNode::new(0.0, config.correct_sigma))
            }
        })
        .collect()
}

/// Runs one Experiment-2 simulation with `pct_faulty`% of the network
/// compromised.
///
/// # Panics
///
/// Panics if `pct_faulty` is outside `[0, 100]`.
#[must_use]
pub fn run_exp2(config: &Exp2Config, pct_faulty: f64, seed: u64) -> Exp2Outcome {
    assert!(
        (0.0..=100.0).contains(&pct_faulty),
        "pct_faulty must be a percentage"
    );
    let n = config.n_nodes;
    let n_faulty = (pct_faulty / 100.0 * n as f64).round() as usize;

    let mut rng = SimRng::seed_from(seed);
    let faulty_set = rng.choose_indices(n, n_faulty);
    let behaviors = build_behaviors(config, &faulty_set, seed);

    let topo = Topology::uniform_grid(n, config.field, config.field);
    let engine: Box<dyn Aggregator> = match config.engine {
        EngineKind::Tibfit => Box::new(TibfitEngine::new(config.trust_params(), n)),
        EngineKind::Baseline => Box::new(BaselineEngine::new()),
    };

    let mut event_rng = rng.fork(0xEE);
    let mut sim = ClusterSim::new(
        ClusterSimConfig {
            sensing_radius: config.sensing_radius,
            r_error: config.r_error,
            ch_position: Point::new(config.field / 2.0, config.field / 2.0),
        },
        topo,
        behaviors,
        Box::new(BernoulliLoss::new(config.channel_loss)),
        engine,
        rng,
    );

    let mut total_events = 0usize;
    let mut detected = 0usize;
    let mut false_positives = 0usize;
    let mut rounds = 0usize;
    for _ in 0..config.events {
        let events = if config.concurrent_events {
            // Two simultaneous events, never within r_error of each other
            // (paper §4.2 / Figure 7).
            let a = sim.topology().random_event_location(&mut event_rng);
            let b = loop {
                let c = sim.topology().random_event_location(&mut event_rng);
                if c.distance_to(a) > config.r_error {
                    break c;
                }
            };
            vec![a, b]
        } else {
            vec![sim.topology().random_event_location(&mut event_rng)]
        };
        let result = sim.run_located_round(&events);
        total_events += events.len();
        detected += result.detected_within(config.r_error);
        false_positives += result.false_positives(config.r_error);
        rounds += 1;
    }
    Exp2Outcome {
        accuracy: detected as f64 / total_events as f64,
        false_positives_per_round: false_positives as f64 / rounds as f64,
        isolated: sim.isolated_nodes().len(),
    }
}

/// The faulty-percentage sweep used by Figures 4–6 (paper: 10%–58%).
pub const PCT_SWEEP: [f64; 6] = [10.0, 20.0, 30.0, 40.0, 50.0, 58.0];

/// Builds a swept, trial-averaged series for one configuration.
#[must_use]
pub fn sweep_series(config: &Exp2Config, trials: usize, base_seed: u64) -> Series {
    let mut series = Series::new(config.legend());
    let points: Vec<(f64, f64)> = crate::harness::run_parallel(
        PCT_SWEEP
            .iter()
            .flat_map(|&pct| {
                crate::harness::trial_seeds(base_seed ^ (pct as u64), trials)
                    .into_iter()
                    .map(move |seed| (pct, seed))
            })
            .collect(),
        |(pct, seed)| (pct, run_exp2(config, pct, seed).accuracy),
    );
    for (pct, acc) in points {
        series.record(pct, acc);
    }
    series
}

/// The σ pairs the paper plots: (correct, faulty).
pub const SIGMA_PAIRS: [(f64, f64); 2] = [(1.6, 4.25), (2.0, 6.0)];

/// Sweeps several configurations through one flattened
/// [`crate::harness::run_parallel`] call (see `exp1::sweep_series_batch`
/// for the rationale). Per-series point order matches [`sweep_series`],
/// so figure output stays byte-identical.
#[must_use]
pub fn sweep_series_batch(configs: &[Exp2Config], trials: usize, base_seed: u64) -> Vec<Series> {
    let items: Vec<(usize, f64, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            PCT_SWEEP.iter().flat_map(move |&pct| {
                crate::harness::trial_seeds(base_seed ^ (pct as u64), trials)
                    .into_iter()
                    .map(move |seed| (si, pct, seed))
            })
        })
        .collect();
    let points = crate::harness::run_parallel(items, |(si, pct, seed)| {
        (si, pct, run_exp2(&configs[si], pct, seed).accuracy)
    });
    let mut out: Vec<Series> = configs.iter().map(|c| Series::new(c.legend())).collect();
    for (si, pct, acc) in points {
        out[si].record(pct, acc);
    }
    out
}

fn level_figure(id: &str, title: &str, level: FaultLevel, trials: usize, base_seed: u64) -> FigureData {
    let mut fig = FigureData::new(id, title, "% faulty nodes", "accuracy");
    let configs: Vec<Exp2Config> = SIGMA_PAIRS
        .iter()
        .flat_map(|&(cs, fs)| {
            [EngineKind::Tibfit, EngineKind::Baseline]
                .into_iter()
                .map(move |engine| Exp2Config::paper(cs, fs, level, engine))
        })
        .collect();
    fig.series = sweep_series_batch(&configs, trials, base_seed);
    fig
}

/// Figure 4: location model, level-0 faulty nodes, TIBFIT vs baseline.
#[must_use]
pub fn figure4(trials: usize, base_seed: u64) -> FigureData {
    level_figure(
        "fig4",
        "Experiment 2 — Level 0 faulty nodes",
        FaultLevel::Level0,
        trials,
        base_seed,
    )
}

/// Figure 5: location model, level-1 (smart independent) faulty nodes.
#[must_use]
pub fn figure5(trials: usize, base_seed: u64) -> FigureData {
    level_figure(
        "fig5",
        "Experiment 2 — Level 1 faulty nodes",
        FaultLevel::Level1,
        trials,
        base_seed,
    )
}

/// Figure 6: location model, level-2 (colluding) faulty nodes.
#[must_use]
pub fn figure6(trials: usize, base_seed: u64) -> FigureData {
    level_figure(
        "fig6",
        "Experiment 2 — Level 2 faulty nodes",
        FaultLevel::Level2,
        trials,
        base_seed,
    )
}

/// Figure 7: single vs concurrent events, level 0, TIBFIT.
#[must_use]
pub fn figure7(trials: usize, base_seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "fig7",
        "Experiment 2 — Single and Concurrent Events (TIBFIT, Lvl 0)",
        "% faulty nodes",
        "accuracy",
    );
    let configs: Vec<Exp2Config> = [false, true]
        .into_iter()
        .map(|concurrent| {
            let mut config = Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit);
            config.concurrent_events = concurrent;
            config
        })
        .collect();
    for (series, concurrent) in sweep_series_batch(&configs, trials, base_seed).into_iter().zip([false, true]) {
        // Rename to the figure's legend.
        let label = if concurrent { "Concurrent events" } else { "Single events" };
        let mut renamed = Series::new(label);
        for (x, y) in series.points() {
            renamed.record(x, y);
        }
        fig.series.push(renamed);
    }
    fig
}

/// Renders Table 2 (the experiment's parameter sheet) as markdown.
#[must_use]
pub fn table2() -> String {
    let rows = [
        (
            "Type of Event",
            "Location Determination; concurrent or single events",
        ),
        ("Independent variable", "Percentage faulty nodes, 10%-58%"),
        (
            "Error rate for correct nodes",
            "Location report std. deviation 1.6 or 2.0",
        ),
        (
            "Error rate for faulty nodes (levels 0,1,2)",
            "Location report std. dev. 4.25 or 6.0, drop packets 25% of the time",
        ),
        ("Size of network", "100 sensing nodes"),
        ("Number of event neighbors", "Variable on location"),
        ("lambda", "0.25"),
        (
            "Fault rate (f_r)",
            "0.1 (different from NER to compensate for channel losses)",
        ),
    ];
    let mut out = String::from("### Table 2 — Parameters for Experiment 2\n\n");
    out.push_str("| Parameter | Value |\n|---|---|\n");
    for (k, v) in rows {
        out.push_str(&format!("| {k} | {v} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(mut config: Exp2Config) -> Exp2Config {
        config.events = 120;
        config
    }

    #[test]
    fn honest_network_is_accurate() {
        let config = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit));
        let out = run_exp2(&config, 0.0, 42);
        assert!(out.accuracy > 0.9, "accuracy {}", out.accuracy);
    }

    #[test]
    fn level0_tibfit_beats_baseline_past_40_percent() {
        let trials = 3;
        let mut t = 0.0;
        let mut b = 0.0;
        for seed in crate::harness::trial_seeds(3, trials) {
            let tc = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit));
            let bc = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Baseline));
            t += run_exp2(&tc, 50.0, seed).accuracy;
            b += run_exp2(&bc, 50.0, seed).accuracy;
        }
        assert!(t >= b, "TIBFIT {t} vs baseline {b} at 50% faulty");
    }

    #[test]
    fn level2_hurts_more_than_level0() {
        let trials = 3;
        let mut l0 = 0.0;
        let mut l2 = 0.0;
        for seed in crate::harness::trial_seeds(5, trials) {
            let c0 = fast(Exp2Config::paper(2.0, 6.0, FaultLevel::Level0, EngineKind::Tibfit));
            let c2 = fast(Exp2Config::paper(2.0, 6.0, FaultLevel::Level2, EngineKind::Tibfit));
            l0 += run_exp2(&c0, 50.0, seed).accuracy;
            l2 += run_exp2(&c2, 50.0, seed).accuracy;
        }
        assert!(
            l2 <= l0 + 0.05 * trials as f64,
            "level2 ({l2}) should not beat level0 ({l0})"
        );
    }

    #[test]
    fn concurrent_events_similar_to_single() {
        // Figure 7's claim: concurrency does not significantly change
        // accuracy.
        let seed = 77;
        let single = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit));
        let mut conc = single;
        conc.concurrent_events = true;
        let a = run_exp2(&single, 30.0, seed).accuracy;
        let b = run_exp2(&conc, 30.0, seed).accuracy;
        assert!((a - b).abs() < 0.15, "single {a} vs concurrent {b}");
    }

    #[test]
    fn batched_sweep_matches_per_series_sweep() {
        let configs = vec![
            fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit)),
            fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Baseline)),
        ];
        let batched = sweep_series_batch(&configs, 1, 11);
        assert_eq!(batched.len(), configs.len());
        for (config, got) in configs.iter().zip(&batched) {
            let solo = sweep_series(config, 1, 11);
            assert_eq!(solo.points(), got.points(), "{}", config.legend());
        }
    }

    #[test]
    fn legend_format_matches_paper() {
        let config = Exp2Config::paper(1.6, 4.25, FaultLevel::Level1, EngineKind::Baseline);
        assert_eq!(config.legend(), "Lvl 1 1.6-4.25 Baseline");
    }

    #[test]
    fn run_is_deterministic() {
        let config = fast(Exp2Config::paper(1.6, 4.25, FaultLevel::Level1, EngineKind::Tibfit));
        assert_eq!(run_exp2(&config, 30.0, 5), run_exp2(&config, 30.0, 5));
    }

    #[test]
    fn table2_mentions_key_parameters() {
        let t = table2();
        for key in ["10%-58%", "1.6 or 2.0", "4.25 or 6.0", "0.25", "100 sensing nodes"] {
            assert!(t.contains(key), "missing {key}");
        }
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn rejects_bad_percentage() {
        let _ = run_exp2(
            &Exp2Config::paper(1.6, 4.25, FaultLevel::Level0, EngineKind::Tibfit),
            -1.0,
            0,
        );
    }
}
